//! The stream manager: the deployment (threaded) configuration.
//!
//! "The central component of Gigascope is a stream manager which tracks
//! the query nodes that can be activated. Query nodes ... are processes.
//! When they are started, they register themselves with the registry of
//! the stream manager. When a user application or query node needs to
//! subscribe to the output of a query, it submits the query name to the
//! registry and receives a query handle in return." (paper §3)
//!
//! Here query nodes are threads and the shared-memory channels are the
//! bounded, shed-aware queues of [`crate::transport`]. LFTAs run inline
//! in the capture thread, exactly as the paper links them into the run
//! time system; each HFTA runs on its own thread. This is the
//! configuration the deployment-throughput experiment (E2) measures; the
//! deterministic single-threaded engine is [`crate::engine`].
//!
//! Fan-in without `select`: every node owns ONE bounded ready-queue; each
//! upstream producer holds a clone of its sender and tags messages with
//! the destination port, so a node just blocks on `recv()` and
//! multiplexes by tag. End-of-stream is an explicit `Close(port)` message
//! (disconnect only fires when *all* senders drop, which a shared queue
//! can't use per-port). Per-producer FIFO order is preserved — shedding
//! removes items but never reorders survivors — which is all the
//! merge/join watermark logic requires.
//!
//! Transport is batched: producers accumulate up to
//! [`Gigascope::batch_size`] items per [`Batcher`] and ship them as one
//! queue message, amortizing the mutex/condvar cost of the bounded
//! channel over the whole run. Punctuation, heartbeats, and stream close
//! flush partial batches immediately, so ordering progress is never
//! delayed behind a filling batch (see DESIGN.md on batched transport).
//!
//! Self-monitoring (paper §4): every LFTA, operator, edge batcher, and
//! queue registers its counters with a [`StatsRegistry`]; on each
//! heartbeat round the capture thread snapshots the registry and emits
//! the rows on the built-in `GS_STATS` stream, so ordinary GSQL queries
//! observe the system's own behavior — including what overload shedding
//! ([`Gigascope::shedding`]) drops when a consumer stalls.

use crate::health::{FaultReason, HealthBoard, NodeFault, RunHealth};
use crate::transport::{self, Admission, Channel};
use crate::watchdog::{Watchdog, WatchdogStats};
use crate::{Error, Gigascope};
use bytes::Bytes;
use gs_packet::CapPacket;
use gs_runtime::batch::{ColBuilder, ColumnBatch};
use gs_runtime::ops::build::{build_hfta, build_lfta, BuildCtx};
use gs_runtime::ops::prefilter::{PrefilterCache, SharedPrefilter};
use gs_runtime::punct::{HeartbeatMode, Punct};
use gs_runtime::snapshot::{SnapError, SnapReader, SnapWriter};
use gs_runtime::stats::{Counter, StatRow, StatSource, StatsRegistry};
use gs_runtime::tuple::{StreamItem, Tuple};
use gs_runtime::value::Value;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;

/// Ready-queue capacity per query node ("communication through shared
/// memory"); a bounded ring like the paper's buffers.
pub const CHANNEL_CAPACITY: usize = 8_192;

/// A tagged message on a node's shared ready-queue.
enum Msg {
    /// A run of items for one input port (never empty). Batching amortizes
    /// the per-message queue cost — mutex, condvar wakeup, cache traffic —
    /// over [`Gigascope::batch_size`] items instead of paying it per tuple.
    Batch(usize, Vec<StreamItem>),
    /// A columnar (SoA) batch for one input port with its at-most-one
    /// trailing punctuation rider — the batcher flushes on every
    /// punctuation, so a shipped batch never holds more than one, always
    /// last. Semantically identical to the [`Msg::Batch`] of its
    /// materialized rows; only shipped when [`Gigascope::columnar`] is on
    /// and `batch_size > 1`.
    Cols(usize, ColumnBatch, Option<Punct>),
    /// The producer feeding this port is done; no more items will come.
    Close(usize),
    /// The producer feeding this port faulted. The port is closed (no
    /// more items will come, like [`Msg::Close`]) and the receiver's
    /// whole query chain is quarantined, attributing the failure to the
    /// named origin node.
    Fault(usize, NodeFault),
}

/// One consumer endpoint: the consumer's shared queue plus the input
/// port this producer feeds, tagged with the producing stream's
/// processing depth (its level in the query chain) so
/// least-processed-first shedding knows what the messages are worth.
#[derive(Clone)]
struct PortSender {
    tx: transport::Sender<Msg>,
    port: usize,
    depth: u32,
}

impl PortSender {
    fn send_batch(&self, items: Vec<StreamItem>) {
        debug_assert!(!items.is_empty());
        let weight = items.len() as u64;
        self.tx.send(self.depth, weight, Msg::Batch(self.port, items));
    }

    fn send_cols(&self, cb: ColumnBatch, punct: Option<Punct>) {
        // Weight matches the row path: tuple count plus the rider.
        let weight = cb.n_rows() as u64 + u64::from(punct.is_some());
        self.tx.send(self.depth, weight, Msg::Cols(self.port, cb, punct));
    }

    fn close(&self) {
        // Close markers ride past capacity and policy: shedding one
        // would leave the consumer waiting forever on an open port.
        self.tx.send_control(Msg::Close(self.port));
    }

    fn fault(&self, f: NodeFault) {
        // Fault markers are control traffic for the same reason Close
        // is: dropping one would leave the consumer waiting forever.
        self.tx.send_control(Msg::Fault(self.port, f));
    }
}

/// Counters of one producer edge (the [`Batcher`] in front of a stream's
/// consumers), reported as `edge:<stream>` stats rows. The flush-cause
/// tags say *why* batches shipped: by filling up (`flush_size`), by an
/// ordering token that must not wait (`flush_punct`), by a heartbeat
/// liveness bound (`flush_heartbeat`), or by end-of-stream
/// (`flush_close`).
#[derive(Debug, Default)]
struct EdgeStats {
    batches: Counter,
    items: Counter,
    flush_size: Counter,
    flush_punct: Counter,
    flush_heartbeat: Counter,
    flush_close: Counter,
    /// Flushes that found no consumer endpoint: the buffered items were
    /// discarded, not shipped. They still count toward `items` so the
    /// loss is visible in `GS_STATS` instead of silently vanishing.
    flush_noconsumer: Counter,
}

impl StatSource for EdgeStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("batches", self.batches.get()),
            ("items", self.items.get()),
            ("flush_size", self.flush_size.get()),
            ("flush_punct", self.flush_punct.get()),
            ("flush_heartbeat", self.flush_heartbeat.get()),
            ("flush_close", self.flush_close.get()),
            ("flush_noconsumer", self.flush_noconsumer.get()),
        ]
    }
}

/// Why a batch left the buffer (see [`EdgeStats`]).
#[derive(Clone, Copy)]
enum FlushCause {
    Size,
    Punct,
    Heartbeat,
    Close,
}

/// Per-producer output buffer: accumulates items and ships them to every
/// consumer of the stream as one [`Msg::Batch`].
///
/// Flush policy (each bounds a different kind of latency):
/// - **size** — the batch reaches its capacity;
/// - **punctuation** — an ordering-update token arrived; flushing
///   immediately means downstream watermark progress (merge release, agg
///   window close) is never delayed behind a partially-filled batch;
/// - **close** — the stream ends; whatever is buffered goes out before the
///   `Close` marker.
///
/// Fan-out clones at batch granularity: the last consumer takes the
/// buffered `Vec`, each extra consumer costs one `Vec` clone — not one
/// clone per item per consumer.
struct Batcher {
    buf: Vec<StreamItem>,
    /// Columnar accumulation: `Some` when this edge ships SoA batches
    /// ([`Gigascope::columnar`] with `batch_size > 1`). Row items are
    /// transposed in as they arrive; already-columnar output passes
    /// through zero-copy. `buf` stays empty in this mode.
    col: Option<ColBuilder>,
    cap: usize,
    stats: Arc<EdgeStats>,
}

impl Batcher {
    fn new(cap: usize, columnar: bool) -> Batcher {
        let cap = cap.max(1);
        Batcher {
            buf: Vec::with_capacity(if columnar { 0 } else { cap }),
            col: columnar.then(ColBuilder::new),
            cap,
            stats: Arc::new(EdgeStats::default()),
        }
    }

    /// Absorb produced items, flushing on the size and punctuation rules.
    /// With `cap == 1` every item flushes by itself, reproducing
    /// item-at-a-time transport exactly.
    fn extend(&mut self, items: impl Iterator<Item = StreamItem>, senders: &[PortSender]) {
        if self.col.is_some() {
            for item in items {
                match item {
                    StreamItem::Tuple(t) => {
                        let b = self.col.as_mut().expect("columnar mode");
                        b.push_tuple(&t);
                        if b.len() >= self.cap {
                            self.flush_cols_as(senders, FlushCause::Size, None);
                        }
                    }
                    // The punctuation ships as the batch's trailing rider,
                    // preserving the flush-on-punct latency rule.
                    StreamItem::Punct(p) => {
                        self.flush_cols_as(senders, FlushCause::Punct, Some(p));
                    }
                }
            }
            return;
        }
        for item in items {
            let is_punct = matches!(item, StreamItem::Punct(_));
            self.buf.push(item);
            if is_punct {
                self.flush_as(senders, FlushCause::Punct);
            } else if self.buf.len() >= self.cap {
                self.flush_as(senders, FlushCause::Size);
            }
        }
    }

    /// Columnar mode: append one live row of another batch (the routed
    /// scatter path), flushing on size.
    fn push_row_from(&mut self, src: &ColumnBatch, row: usize, senders: &[PortSender]) {
        let b = self.col.as_mut().expect("columnar mode");
        b.push_row(src, row);
        if b.len() >= self.cap {
            self.flush_cols_as(senders, FlushCause::Size, None);
        }
    }

    /// Columnar mode: flush whatever the builder holds as one
    /// [`Msg::Cols`] with `punct` as its trailing rider. An empty batch
    /// still ships when it carries a rider — ordering tokens are never
    /// dropped.
    fn flush_cols_as(
        &mut self,
        senders: &[PortSender],
        cause: FlushCause,
        punct: Option<Punct>,
    ) {
        let cb = self.col.as_mut().expect("columnar mode").finish();
        self.ship_cols(cb, punct, senders, cause);
    }

    /// Ship an already-columnar batch downstream (zero-copy on the last
    /// consumer). Callers must flush any builder content first so
    /// per-producer FIFO order holds.
    fn ship_cols(
        &mut self,
        cb: ColumnBatch,
        punct: Option<Punct>,
        senders: &[PortSender],
        cause: FlushCause,
    ) {
        if cb.is_empty() && punct.is_none() {
            return;
        }
        let n = cb.n_rows() as u64 + u64::from(punct.is_some());
        if senders.is_empty() {
            self.stats.items.add(n);
            self.stats.flush_noconsumer.inc();
            return;
        }
        self.stats.batches.inc();
        self.stats.items.add(n);
        match cause {
            FlushCause::Size => self.stats.flush_size.inc(),
            FlushCause::Punct => self.stats.flush_punct.inc(),
            FlushCause::Heartbeat => self.stats.flush_heartbeat.inc(),
            FlushCause::Close => self.stats.flush_close.inc(),
        }
        for (i, tx) in senders.iter().enumerate() {
            if i + 1 == senders.len() {
                tx.send_cols(cb, punct);
                break;
            }
            tx.send_cols(cb.clone(), punct.clone());
        }
    }

    fn flush_as(&mut self, senders: &[PortSender], cause: FlushCause) {
        if self.buf.is_empty() {
            return;
        }
        if senders.is_empty() {
            // Nobody subscribed to or consumes this stream: the items
            // are dropped here, but the edge accounts them (`items` +
            // `flush_noconsumer`) so the loss shows up in GS_STATS.
            self.stats.items.add(self.buf.len() as u64);
            self.stats.flush_noconsumer.inc();
            self.buf.clear();
            return;
        }
        self.stats.batches.inc();
        self.stats.items.add(self.buf.len() as u64);
        match cause {
            FlushCause::Size => self.stats.flush_size.inc(),
            FlushCause::Punct => self.stats.flush_punct.inc(),
            FlushCause::Heartbeat => self.stats.flush_heartbeat.inc(),
            FlushCause::Close => self.stats.flush_close.inc(),
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.cap));
        for (i, tx) in senders.iter().enumerate() {
            if i + 1 == senders.len() {
                tx.send_batch(batch);
                break;
            }
            tx.send_batch(batch.clone());
        }
    }

    /// Ship a partial batch on a heartbeat: a liveness signal, so
    /// downstream latency is bounded by the heartbeat interval.
    fn flush_heartbeat(&mut self, senders: &[PortSender]) {
        if self.col.is_some() {
            self.flush_cols_as(senders, FlushCause::Heartbeat, None);
        } else {
            self.flush_as(senders, FlushCause::Heartbeat);
        }
    }

    /// Flush the tail and close every consumer port.
    fn close(&mut self, senders: &[PortSender]) {
        if self.col.is_some() {
            self.flush_cols_as(senders, FlushCause::Close, None);
        } else {
            self.flush_as(senders, FlushCause::Close);
        }
        for tx in senders {
            tx.close();
        }
    }

    /// Discard buffered content without shipping (quarantine path).
    fn clear(&mut self) {
        self.buf.clear();
        if let Some(b) = &mut self.col {
            let _ = b.finish();
        }
    }
}

/// Partitioning router edge: splits one produced stream across the K
/// partition instances of a rewritten HFTA. Tuples are hashed on the
/// group key and buffered in a per-partition [`Batcher`] (registered as
/// `edge:<partition>:in`), so routed transport batches exactly like any
/// other edge; punctuation — and [`close`](RouterEdge::close) — is
/// broadcast to every partition, since each shard's watermark must keep
/// advancing for the reunifying merge to release output.
struct RouterEdge {
    router: gs_runtime::ops::router::KeyRouter,
    /// One `(input batcher, queue endpoint)` per partition, in order.
    parts: Vec<(Batcher, PortSender)>,
    /// Reused per-row partition buffer for the columnar scatter.
    scratch: Vec<u32>,
}

impl RouterEdge {
    fn push(&mut self, item: StreamItem) {
        match &item {
            StreamItem::Tuple(t) => {
                let k = self.router.route(t);
                let (b, s) = &mut self.parts[k];
                b.extend(std::iter::once(item), std::slice::from_ref(s));
            }
            StreamItem::Punct(_) => {
                for (b, s) in &mut self.parts {
                    b.extend(std::iter::once(item.clone()), std::slice::from_ref(s));
                }
            }
        }
    }

    /// Columnar scatter: partitions for every live row are computed in
    /// one vectorized pass straight off the columns, then each row is
    /// copied (typed) into its partition's builder. The punctuation
    /// rider broadcasts to every partition, flushing each — the same
    /// watermark-progress rule as the row path.
    fn push_cols(&mut self, cb: &ColumnBatch, punct: Option<Punct>) {
        self.scratch.clear();
        let mut parts = std::mem::take(&mut self.scratch);
        self.router.route_batch(cb, &mut parts);
        for (row, &k) in parts.iter().enumerate() {
            let (b, s) = &mut self.parts[k as usize];
            b.push_row_from(cb, row, std::slice::from_ref(s));
        }
        self.scratch = parts;
        if let Some(p) = punct {
            for (b, s) in &mut self.parts {
                b.flush_cols_as(std::slice::from_ref(s), FlushCause::Punct, Some(p.clone()));
            }
        }
    }

    fn flush_heartbeat(&mut self) {
        for (b, s) in &mut self.parts {
            b.flush_heartbeat(std::slice::from_ref(s));
        }
    }

    fn close(&mut self) {
        for (b, s) in &mut self.parts {
            b.close(std::slice::from_ref(s));
        }
    }

    fn fault(&mut self, f: &NodeFault) {
        for (b, s) in &mut self.parts {
            b.clear();
            s.fault(f.clone());
        }
    }
}

/// Everything one producer's output feeds: the plain fan-out batcher for
/// ordinary consumers plus any partitioning routers installed on the
/// stream. Items only enter the plain batcher when it has somewhere to
/// ship them — a router-only stream must not account its entire output
/// as `flush_noconsumer` drops.
struct OutputEdge {
    batcher: Batcher,
    senders: Vec<PortSender>,
    routers: Vec<RouterEdge>,
}

impl OutputEdge {
    fn extend(&mut self, items: impl Iterator<Item = StreamItem>) {
        let OutputEdge { batcher, senders, routers } = self;
        if routers.is_empty() {
            batcher.extend(items, senders);
            return;
        }
        for item in items {
            let n = routers.len();
            for r in &mut routers[..n - 1] {
                r.push(item.clone());
            }
            if senders.is_empty() {
                routers[n - 1].push(item);
            } else {
                routers[n - 1].push(item.clone());
                batcher.extend(std::iter::once(item), senders);
            }
        }
    }

    /// Absorb a batch that is still columnar at the top of a node's
    /// chain: routers scatter it by vectorized key hash; ordinary
    /// consumers receive it zero-copy after any transposed row content
    /// flushes (FIFO order). Mirrors [`extend`](OutputEdge::extend)'s
    /// rule that a router-only stream never touches the plain batcher.
    fn extend_cols(&mut self, cb: ColumnBatch, punct: Option<Punct>) {
        let OutputEdge { batcher, senders, routers } = self;
        for r in routers.iter_mut() {
            r.push_cols(&cb, punct.clone());
        }
        if senders.is_empty() && !routers.is_empty() {
            return;
        }
        batcher.flush_cols_as(senders, FlushCause::Size, None);
        batcher.ship_cols(cb, punct, senders, FlushCause::Size);
    }

    fn flush_heartbeat(&mut self) {
        self.batcher.flush_heartbeat(&self.senders);
        for r in &mut self.routers {
            r.flush_heartbeat();
        }
    }

    fn close(&mut self) {
        self.batcher.close(&self.senders);
        for r in &mut self.routers {
            r.close();
        }
    }

    /// Quarantine this producer's output: discard whatever sits in the
    /// batch buffers (a faulted node's partial output may be mid-fault
    /// garbage) and replace the Close handshake with an in-band fault
    /// marker on every consumer port and every routed partition.
    fn fault(&mut self, f: &NodeFault) {
        self.batcher.clear();
        for tx in &self.senders {
            tx.fault(f.clone());
        }
        for r in &mut self.routers {
            r.fault(f);
        }
    }
}

/// Result of a threaded run.
#[derive(Debug, Default)]
pub struct ThreadedOutput {
    /// Collected tuples per subscribed stream.
    pub streams: HashMap<String, Vec<Tuple>>,
    /// Packets consumed by the capture loop.
    pub packets: u64,
    /// Final stats-registry snapshot, taken after every node drained:
    /// `lfta:*`, `hfta:*`, `edge:*`, and `queue:*` counters.
    pub counters: Vec<StatRow>,
    /// Which queries ran clean and which were quarantined (panicked
    /// operator, upstream fault, watchdog-forced close) — a faulted
    /// query fails alone; its siblings' outputs are unaffected.
    pub health: RunHealth,
    /// Sealed operator-state snapshots captured at end of input when
    /// [`ThreadedOptions::capture`] was set, keyed `hfta:<stream>` /
    /// `lfta:<stream>`. Faulted nodes record nothing — their state is
    /// mid-panic garbage, and restoring it would resurrect the fault.
    pub snapshots: HashMap<String, Vec<u8>>,
}

impl ThreadedOutput {
    /// Tuples of one subscribed stream (empty if absent).
    pub fn stream(&self, name: &str) -> &[Tuple] {
        self.streams.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Convenience lookup of one final counter value.
    pub fn counter(&self, node: &str, counter: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.node == node && r.counter == counter)
            .map(|r| r.value)
    }
}

/// A live subscription observer: called from the subscribed stream's
/// collector thread with each drained batch of tuples, in stream order,
/// while the run is still in flight. The `gsqd` daemon's frame fan-out
/// rides on these; the tuples are also collected into
/// [`ThreadedOutput::streams`] as usual.
pub type SubscriptionTap = Arc<dyn Fn(&[Tuple]) + Send + Sync>;

/// Knobs for [`run_threaded_opts`] beyond the defaults of
/// [`run_threaded`].
#[derive(Clone, Default)]
pub struct ThreadedOptions {
    /// Subscribed streams whose collector threads hold off draining until
    /// the node graph has finished — a deterministic stand-in for a
    /// stalled consumer application. With [`Gigascope::shedding`] set the
    /// queue sheds instead of wedging the capture loop; without it this
    /// deadlocks exactly as a real stalled consumer would, so only use
    /// stalls with shedding enabled.
    pub stall: Vec<String>,
    /// Live observers per subscribed stream: `(stream name, tap)`. The
    /// stream must also appear in the run's subscription list; batches
    /// reach the tap from the stream's own collector drainer as they
    /// arrive, so the concatenation of tap calls equals the collected
    /// stream, in order.
    pub taps: Vec<(String, SubscriptionTap)>,
    /// Deployed queries to leave out of this run entirely (no LFTAs, no
    /// HFTA node, no producer for their streams). The daemon's lifecycle
    /// supervisor parks quarantined queries here while they sit out
    /// their restart backoff; consumers of an excluded query's streams
    /// simply see empty inputs.
    pub exclude: Vec<String>,
    /// Capture operator state instead of flushing it: at end of input
    /// every node skips its `finish_input`/`finish` flush (open windows
    /// stay open), serializes its state through
    /// [`gs_runtime::snapshot`], and the sealed bytes ride out on
    /// [`ThreadedOutput::snapshots`]. The capture point is a consistent
    /// cut — every edge has drained before any node serializes — so a
    /// follow-up run restoring the map continues exactly where this one
    /// stopped.
    pub capture: bool,
    /// Sealed snapshots (a previous run's [`ThreadedOutput::snapshots`])
    /// to restore before processing. Keys that match no built node are
    /// ignored; nodes with no entry start empty; a torn/corrupt/
    /// mismatched entry is rejected whole — the node is rebuilt pristine
    /// (empty windows) and the rejection is reported on
    /// [`RunHealth::notes`], never a crash, never partial state.
    pub restore: Option<Arc<HashMap<String, Vec<u8>>>>,
}

impl std::fmt::Debug for ThreadedOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedOptions")
            .field("stall", &self.stall)
            .field("taps", &self.taps.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("exclude", &self.exclude)
            .field("capture", &self.capture)
            .field("restore", &self.restore.as_ref().map(|m| m.len()))
            .finish()
    }
}

/// Open a sealed snapshot and run `f` over its payload, requiring full
/// consumption: integrity (magic, version, checksum) is verified before
/// `f` sees a byte, and trailing garbage after a structurally valid
/// payload is rejected like any other protocol error.
fn open_snapshot(
    bytes: &[u8],
    f: impl FnOnce(&mut SnapReader<'_>) -> Result<(), SnapError>,
) -> Result<(), SnapError> {
    let mut r = SnapReader::open(bytes)?;
    f(&mut r)?;
    r.finish()
}

/// Run all deployed queries over `packets` with one thread per HFTA.
///
/// Packets must be time-ordered; subscriptions are collected in the
/// calling thread after all nodes drain.
pub fn run_threaded<I>(
    gs: &Gigascope,
    packets: I,
    subscriptions: &[&str],
) -> Result<ThreadedOutput, Error>
where
    I: Iterator<Item = CapPacket>,
{
    run_threaded_opts(gs, packets, subscriptions, ThreadedOptions::default())
}

/// [`run_threaded`] with explicit [`ThreadedOptions`].
pub fn run_threaded_opts<I>(
    gs: &Gigascope,
    packets: I,
    subscriptions: &[&str],
    opts: ThreadedOptions,
) -> Result<ThreadedOutput, Error>
where
    I: Iterator<Item = CapPacket>,
{
    // ---- Wire the graph -------------------------------------------------
    struct NodeSpec {
        node: gs_runtime::ops::build::HftaNode,
        out_name: String,
        /// Index into `router_groups` when this node is a partition
        /// instance fed by a hash router rather than the shared
        /// producer fan-out.
        routed: Option<usize>,
    }
    /// One rewritten HFTA's routing plan, collected while building nodes
    /// and turned into a [`RouterEdge`] once the partition queues exist.
    struct RouterGroup {
        input: String,
        progs: Vec<gs_runtime::expr::Program>,
        /// `(partition stream name, its queue endpoint)`, in order.
        members: Vec<(String, PortSender)>,
    }
    /// Build one HFTA node and, when a prior run's sealed snapshot is on
    /// offer, restore it — at build time, before any thread spawns, so a
    /// rejected snapshot (torn, corrupt, wrong shape) can fall back to a
    /// pristine rebuild from the plan instead of trusting a half-applied
    /// decode. The rejection lands in `notes` for the health report.
    fn build_restored(
        plan: &gs_gsql::plan::Plan,
        ctx: &BuildCtx<'_>,
        name: &str,
        restore: Option<&HashMap<String, Vec<u8>>>,
        notes: &mut Vec<(String, String)>,
    ) -> Result<gs_runtime::ops::build::HftaNode, Error> {
        let mut node = build_hfta(plan, ctx)?;
        if let Some(bytes) = restore.and_then(|m| m.get(&format!("hfta:{name}"))) {
            if let Err(e) = open_snapshot(bytes, |r| node.restore_state(r)) {
                node = build_hfta(plan, ctx)?;
                notes.push((
                    name.to_string(),
                    format!("snapshot rejected ({e}); resuming from empty windows"),
                ));
            }
        }
        Ok(node)
    }
    let restore_map = opts.restore.as_deref();
    let mut restore_notes: Vec<(String, String)> = Vec::new();
    let mut lftas = Vec::new();
    let mut nodes: Vec<NodeSpec> = Vec::new();
    let mut router_groups: Vec<RouterGroup> = Vec::new();
    for dq in gs.queries() {
        if opts.exclude.iter().any(|e| e == &dq.name) {
            continue;
        }
        let params = gs.params_for(&dq.name);
        params.validate(&dq.params).map_err(Error::Runtime)?;
        let ctx = BuildCtx {
            catalog: gs.catalog(),
            params: &params,
            registry: gs.registry(),
            resolver: gs.resolver(),
            lfta_table_size: gs.lfta_table_size,
        };
        for spec in &dq.lftas {
            let mut lfta = build_lfta(spec, &ctx)?;
            if let Some(bytes) = restore_map.and_then(|m| m.get(&format!("lfta:{}", lfta.name))) {
                if let Err(e) = open_snapshot(bytes, |r| lfta.restore_state(r)) {
                    let name = lfta.name.clone();
                    lfta = build_lfta(spec, &ctx)?;
                    restore_notes.push((
                        name,
                        format!("lfta snapshot rejected ({e}); resuming from empty state"),
                    ));
                }
            }
            let iface_id = crate::engine::lfta_iface_id(gs, spec)?;
            lftas.push((lfta, iface_id));
        }
        if let Some(hplan) = &dq.hfta {
            if let Some(part) = gs.parallel_rewrite(dq) {
                // K partition instances fed by a hash-of-group-key
                // router, reunified by an ordinary merge node that
                // consumes the partition streams through the regular
                // producer fan-out.
                let mut progs = Vec::with_capacity(part.hash_exprs.len());
                for e in &part.hash_exprs {
                    progs.push(ctx.prog(e).map_err(Error::Runtime)?);
                }
                let gidx = router_groups.len();
                router_groups.push(RouterGroup {
                    input: part.input.clone(),
                    progs,
                    members: Vec::new(),
                });
                for (pname, pplan) in &part.partitions {
                    nodes.push(NodeSpec {
                        node: build_restored(pplan, &ctx, pname, restore_map, &mut restore_notes)?,
                        out_name: pname.clone(),
                        routed: Some(gidx),
                    });
                }
                nodes.push(NodeSpec {
                    node: build_restored(
                        &part.merge,
                        &ctx,
                        &dq.name,
                        restore_map,
                        &mut restore_notes,
                    )?,
                    out_name: dq.name.clone(),
                    routed: None,
                });
            } else {
                nodes.push(NodeSpec {
                    node: build_restored(hplan, &ctx, &dq.name, restore_map, &mut restore_notes)?,
                    out_name: dq.name.clone(),
                    routed: None,
                });
            }
        }
    }

    // Processing depth per stream, for least-processed-first shedding:
    // LFTA outputs are level 0 (barely processed), each node's output is
    // one past its deepest input. Streams with no known producer (the
    // built-in GS_STATS monitoring stream) count as level 0.
    let mut levels: HashMap<String, u32> = HashMap::new();
    for (lfta, _) in &lftas {
        levels.insert(lfta.name.clone(), 0);
    }
    for spec in &nodes {
        let lvl = 1 + spec
            .node
            .inputs
            .iter()
            .map(|i| levels.get(i).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        levels.insert(spec.out_name.clone(), lvl);
    }
    let depth_of = |stream: &str| levels.get(stream).copied().unwrap_or(0);

    let (capacity, admission) = match gs.shedding {
        Some(cfg) => (cfg.capacity, Admission::Shed(cfg.policy)),
        None => (CHANNEL_CAPACITY, Admission::Block),
    };
    let stats_enabled = gs.stats_enabled;
    let registry = Arc::new(StatsRegistry::new());

    // Fault-isolation plumbing: the shared health board every
    // containment decision lands on, and the queues the watchdog
    // supervises. The `faults` and `watchdog` stat nodes only register
    // when the corresponding feature is configured, so a default run's
    // GS_STATS row set (and the stats-overhead gate) is unchanged.
    let board = Arc::new(HealthBoard::new());
    for (name, msg) in restore_notes.drain(..) {
        board.note(&name, msg);
    }
    if gs.faults.is_some() || gs.watchdog.is_some() {
        registry.register("faults".to_string(), board.stats.clone());
    }
    let watchdog_stats = Arc::new(WatchdogStats::default());
    if gs.watchdog.is_some() {
        registry.register("watchdog".to_string(), watchdog_stats.clone());
    }
    let mut watch_targets: Vec<(String, Arc<Channel<Msg>>)> = Vec::new();

    // Consumer endpoints per stream name (fan-out to every consumer).
    let mut producers: HashMap<String, Vec<PortSender>> = HashMap::new();
    // One shared ready-queue per node; every input port sends into it.
    let mut node_inputs: Vec<(transport::Receiver<Msg>, usize)> = Vec::new();
    for spec in &nodes {
        let (tx, rx, chan) = transport::channel(capacity, admission);
        registry.register(format!("queue:{}", spec.out_name), chan.clone());
        watch_targets.push((spec.out_name.clone(), chan));
        if let Some(g) = spec.routed {
            // A partition instance: its single input port is fed by the
            // group's router, not the shared producer fan-out (which
            // would duplicate every tuple into every shard).
            let input = &spec.node.inputs[0];
            router_groups[g]
                .members
                .push((spec.out_name.clone(), PortSender { tx, port: 0, depth: depth_of(input) }));
        } else {
            for (port, input) in spec.node.inputs.iter().enumerate() {
                producers
                    .entry(input.clone())
                    .or_default()
                    .push(PortSender { tx: tx.clone(), port, depth: depth_of(input) });
            }
        }
        node_inputs.push((rx, spec.node.inputs.len()));
    }
    // Subscription collectors (single-port queues). Each gets its own
    // drainer thread: a subscribed stream can emit far more than
    // CHANNEL_CAPACITY tuples while the capture loop is still feeding
    // packets, and a full collector queue would back-pressure the node
    // graph into a deadlock if nothing consumed it until after capture.
    let stall_gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut collectors: Vec<(String, thread::JoinHandle<Vec<Tuple>>)> = Vec::new();
    for name in subscriptions {
        let (tx, rx, chan) = transport::channel::<Msg>(capacity, admission);
        registry.register(format!("queue:sub:{name}"), chan.clone());
        watch_targets.push(((*name).to_string(), chan));
        producers
            .entry((*name).to_string())
            .or_default()
            .push(PortSender { tx, port: 0, depth: depth_of(name) });
        let gate = opts.stall.iter().any(|s| s == name).then(|| stall_gate.clone());
        let sub_board = board.clone();
        let sub_name = (*name).to_string();
        let tap: Option<SubscriptionTap> =
            opts.taps.iter().find(|(n, _)| n == name).map(|(_, t)| t.clone());
        let drainer = thread::spawn(move || {
            if let Some(g) = &gate {
                // A deliberately stalled consumer: hold the queue shut
                // until the graph finishes, then drain what survived.
                let (released, cv) = &**g;
                let mut open = released.lock().unwrap_or_else(PoisonError::into_inner);
                while !*open {
                    open = cv.wait(open).unwrap_or_else(PoisonError::into_inner);
                }
            }
            let mut bucket = Vec::new();
            while let Some(msg) = rx.recv() {
                let start = bucket.len();
                match msg {
                    Msg::Batch(_, items) => {
                        bucket.extend(items.into_iter().filter_map(|i| match i {
                            StreamItem::Tuple(t) => Some(t),
                            StreamItem::Punct(_) => None,
                        }));
                    }
                    Msg::Cols(_, cb, _) => {
                        bucket.extend((0..cb.n_rows()).map(|r| cb.row_tuple(r)));
                    }
                    Msg::Close(_) => break,
                    Msg::Fault(_, f) => {
                        // The producing chain faulted: keep the clean
                        // prefix collected so far and report the root.
                        sub_board.record(&sub_name, FaultReason::Upstream(f.node));
                        break;
                    }
                }
                if bucket.len() > start {
                    if let Some(t) = &tap {
                        t(&bucket[start..]);
                    }
                }
            }
            bucket
        });
        collectors.push(((*name).to_string(), drainer));
    }

    // The self-monitoring stream's consumers (queries over GS_STATS and
    // direct subscriptions); the capture thread is its producer.
    let gs_stats_senders: Vec<PortSender> = producers.remove("GS_STATS").unwrap_or_default();

    let batch_size = gs.batch_size;
    // Columnar transport only pays off when batches amortize the
    // transpose; at `batch_size == 1` the row path is both cheaper and
    // the compatibility reference, so the gate turns the whole graph's
    // batchers columnar together (Cols messages then exist everywhere
    // or nowhere — no mixed-mode edges).
    let columnar = gs.columnar && batch_size > 1;
    // Partitioning router edges, keyed by the stream they split. Each
    // partition's input-side batcher registers as `edge:<partition>:in`
    // so routed transport is accounted per shard.
    let mut router_edges: HashMap<String, Vec<RouterEdge>> = HashMap::new();
    for g in router_groups {
        let k = g.members.len();
        let parts: Vec<(Batcher, PortSender)> = g
            .members
            .into_iter()
            .map(|(pname, s)| {
                let b = Batcher::new(batch_size, columnar);
                registry.register(format!("edge:{pname}:in"), b.stats.clone());
                (b, s)
            })
            .collect();
        router_edges.entry(g.input).or_default().push(RouterEdge {
            router: gs_runtime::ops::router::KeyRouter::new(g.progs, k),
            parts,
            scratch: Vec::new(),
        });
    }

    // ---- Spawn node threads ---------------------------------------------
    // Capture plumbing: the shared map every node serializes into when
    // the run ends in capture mode. A node writes its entry exactly once,
    // after its last input closed and before it closes its own output —
    // so by the time the main thread joins the handles, the map holds a
    // consistent cut of the whole graph.
    let capture = opts.capture;
    let snap_sink: Arc<Mutex<HashMap<String, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut handles: Vec<(String, thread::JoinHandle<()>)> = Vec::new();
    for (spec, (rx, n_ports)) in nodes.into_iter().zip(node_inputs) {
        let out_senders: Vec<PortSender> =
            producers.get(&spec.out_name).cloned().unwrap_or_default();
        let NodeSpec { mut node, out_name, .. } = spec;
        let batcher = Batcher::new(batch_size, columnar);
        registry.register(format!("edge:{out_name}"), batcher.stats.clone());
        node.register_stats(&registry, &out_name);
        let mut edge = OutputEdge {
            batcher,
            senders: out_senders,
            routers: router_edges.remove(&out_name).unwrap_or_default(),
        };
        let node_board = board.clone();
        let mut injector = gs.faults.as_ref().and_then(|p| p.armed(&out_name, &board.stats));
        let sink = snap_sink.clone();
        let thread_name = out_name.clone();
        handles.push((
            out_name.clone(),
            thread::spawn(move || {
                // Port state lives OUTSIDE the containment boundary so the
                // post-fault quarantine drain knows which ports are still
                // open; the boundary itself costs nothing on the hot path.
                let mut open: Vec<bool> = vec![true; n_ports];
                let mut open_count = n_ports;
                let run = catch_unwind(AssertUnwindSafe(|| -> Option<NodeFault> {
                    let mut out = Vec::new();
                    while open_count > 0 {
                        match rx.recv() {
                            Some(Msg::Batch(p, mut items)) => {
                                if let Some(inj) = injector.as_mut() {
                                    // Inside the boundary: an injected panic
                                    // exercises the real containment path.
                                    inj.on_batch(&mut items);
                                }
                                out.clear();
                                node.push_batch(p, items, &mut out);
                                edge.extend(out.drain(..));
                                if stats_enabled {
                                    // Per-message publish keeps registry
                                    // snapshots at most one batch stale.
                                    node.publish_stats();
                                }
                            }
                            Some(Msg::Cols(p, cb, punct)) => {
                                out.clear();
                                if let Some(inj) = injector.as_mut() {
                                    // Fault injection hooks the row stream;
                                    // materialize so injected panics and drops
                                    // compose with columnar transport.
                                    let mut items = cb.into_items(punct);
                                    inj.on_batch(&mut items);
                                    node.push_batch(p, items, &mut out);
                                    edge.extend(out.drain(..));
                                } else if let Some((cb, rider)) =
                                    node.push_cols(p, cb, punct, &mut out)
                                {
                                    edge.extend_cols(cb, rider);
                                } else {
                                    edge.extend(out.drain(..));
                                }
                                if stats_enabled {
                                    node.publish_stats();
                                }
                            }
                            Some(Msg::Close(p)) if open[p] => {
                                open[p] = false;
                                open_count -= 1;
                                if !capture {
                                    out.clear();
                                    node.finish_input(p, &mut out);
                                    edge.extend(out.drain(..));
                                }
                            }
                            Some(Msg::Close(_)) => {}
                            Some(Msg::Fault(p, f)) => {
                                // An upstream chain member died: this node's
                                // query is collateral. The port is closed by
                                // definition of the marker.
                                if open[p] {
                                    open[p] = false;
                                    open_count -= 1;
                                }
                                return Some(f);
                            }
                            None => {
                                // Every producer dropped without a Close, or
                                // the watchdog force-closed this queue; flush
                                // what the still-open ports hold.
                                for (p, o) in open.iter_mut().enumerate() {
                                    if std::mem::take(o) && !capture {
                                        out.clear();
                                        node.finish_input(p, &mut out);
                                        edge.extend(out.drain(..));
                                    }
                                }
                                open_count = 0;
                            }
                        }
                    }
                    if capture {
                        // End of chunk, not end of stream: hold the open
                        // windows in a sealed snapshot instead of
                        // flushing them — the continuation run restores
                        // this entry and the windows finish there.
                        let mut w = SnapWriter::new();
                        node.snapshot_state(&mut w);
                        sink.lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(format!("hfta:{thread_name}"), w.seal());
                    } else {
                        out.clear();
                        node.finish(&mut out);
                        edge.extend(out.drain(..));
                    }
                    None
                }));
                match run {
                    Ok(None) => {
                        // Clean end-of-stream: flush the tail batch, then
                        // close every consumer port (and routed partition).
                        edge.close();
                        // Final publish so the post-run snapshot is exact.
                        node.publish_stats();
                    }
                    Ok(Some(fault)) => {
                        // Quarantined by an upstream fault: record it (a
                        // no-op if the root cause already named this query),
                        // forward the origin downstream, then keep draining
                        // so sibling producers never wedge on our queue.
                        node_board
                            .record(&thread_name, FaultReason::Upstream(fault.node.clone()));
                        edge.fault(&fault);
                        drain_quarantined(&rx, &mut open, &mut open_count);
                        node.publish_stats();
                    }
                    Err(payload) => {
                        // The operator itself panicked (injected or organic):
                        // the containment boundary turns the abort into a
                        // quarantined query.
                        node_board.stats.faults_contained.inc();
                        let reason = FaultReason::Panic(panic_message(payload.as_ref()));
                        node_board.record(&thread_name, reason.clone());
                        edge.fault(&NodeFault { node: thread_name.clone(), reason });
                        drain_quarantined(&rx, &mut open, &mut open_count);
                        // The node is mid-panic state: don't touch it again.
                    }
                }
            }),
        ));
    }

    // ---- Capture loop (this thread) --------------------------------------
    // One output edge per LFTA: per-packet emissions accumulate in the
    // edge batcher and ship as one queue message per `batch_size` items
    // (plus any partitioning routers installed on the LFTA's stream).
    let mut lfta_edges: Vec<OutputEdge> = lftas
        .iter()
        .map(|(l, _)| {
            let b = Batcher::new(batch_size, columnar);
            registry.register(format!("edge:{}", l.name), b.stats.clone());
            OutputEdge {
                batcher: b,
                senders: producers.get(&l.name).cloned().unwrap_or_default(),
                routers: router_edges.remove(&l.name).unwrap_or_default(),
            }
        })
        .collect();
    debug_assert!(router_edges.is_empty(), "every routed stream has a producer");
    // Drop the producer map so node threads hold the only remaining
    // senders for their output streams.
    drop(producers);

    for (lfta, _) in &lftas {
        registry.register(format!("lfta:{}", lfta.name), lfta.stats_handle());
    }

    // The cross-query shared prefilter: dedup compiled BPF programs, then
    // build one pass over the final LFTA vector (dispatch is by index).
    let mut shared = if gs.shared_prefilter && !lftas.is_empty() {
        let mut cache = PrefilterCache::new();
        for (lfta, _) in &mut lftas {
            lfta.intern_prefilter(&mut |p| cache.intern(p));
        }
        let mut sp = SharedPrefilter::new();
        for (lfta, iface) in &lftas {
            sp.add_lfta(lfta, *iface);
        }
        sp.register_stats(&registry);
        Some(sp)
    } else {
        None
    };
    let mut shared_outs: Vec<Vec<StreamItem>> = (0..lftas.len()).map(|_| Vec::new()).collect();

    // The liveness supervisor, once every queue exists. It watches node
    // and subscription queues for pending work with a frozen dequeue
    // counter and force-closes the wedged ones, so even a stalled
    // consumer without shedding (the PR 3 deadlock) ends as a
    // `Failed{Stalled}` query instead of a hung run.
    let watchdog = gs
        .watchdog
        .map(|cfg| Watchdog::spawn(cfg, watch_targets, board.clone(), watchdog_stats.clone()));

    let heartbeat = gs.heartbeat;
    let mut last_hb: Option<u64> = None;
    let mut n_packets = 0u64;
    let mut out = Vec::new();
    for pkt in packets {
        n_packets += 1;
        let clock = u64::from(pkt.time_sec());
        match shared.as_mut() {
            Some(sp) => {
                sp.dispatch(&pkt, &mut lftas, &mut shared_outs);
                // Only the slots whose tail ran can hold output — skip
                // the rest instead of scanning all N out-vectors.
                for &i in sp.hit_slots() {
                    let o = &mut shared_outs[i];
                    if !o.is_empty() {
                        lfta_edges[i].extend(o.drain(..));
                    }
                }
            }
            None => {
                for (i, (lfta, iface)) in lftas.iter_mut().enumerate() {
                    if *iface != pkt.iface {
                        continue;
                    }
                    out.clear();
                    lfta.push_packet(&pkt, &mut out);
                    lfta_edges[i].extend(out.drain(..));
                }
            }
        }
        if let HeartbeatMode::Periodic { interval } = heartbeat {
            if last_hb.is_none_or(|l| clock >= l + interval.max(1)) {
                last_hb = Some(clock);
                for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
                    out.clear();
                    lfta.heartbeat(clock, &mut out);
                    lfta_edges[i].extend(out.drain(..));
                    // A heartbeat is a liveness signal even when it emits
                    // nothing: ship whatever the batch holds so downstream
                    // latency is bounded by the heartbeat interval.
                    lfta_edges[i].flush_heartbeat();
                }
                if stats_enabled && !gs_stats_senders.is_empty() {
                    // Fold the shared pass's batched per-LFTA deltas in
                    // before publishing so the snapshot sees exact counts.
                    if let Some(sp) = shared.as_mut() {
                        sp.flush_stats(&mut lftas);
                    }
                    for (lfta, _) in &lftas {
                        lfta.publish_stats();
                    }
                    if let Some(sp) = &shared {
                        sp.publish_stats();
                    }
                    emit_stats(&registry, clock, &gs_stats_senders);
                }
            }
        }
    }
    for (i, (lfta, _)) in lftas.iter_mut().enumerate() {
        if capture {
            // Same cut as the node threads: the direct-mapped table's
            // open epochs ride out in the snapshot, not downstream.
            let mut w = SnapWriter::new();
            lfta.snapshot_state(&mut w);
            snap_sink
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(format!("lfta:{}", lfta.name), w.seal());
        } else {
            out.clear();
            lfta.finish(&mut out);
            lfta_edges[i].extend(out.drain(..));
        }
        // Flush the tail batch and close this LFTA's output stream.
        lfta_edges[i].close();
    }
    if let Some(sp) = shared.as_mut() {
        sp.flush_stats(&mut lftas);
    }
    for (lfta, _) in &lftas {
        lfta.publish_stats();
    }
    if let Some(sp) = &shared {
        sp.publish_stats();
    }
    // Final monitoring snapshot at capture end, then close GS_STATS —
    // always, even with stats off: consumers wait on the Close marker.
    if stats_enabled && !gs_stats_senders.is_empty() {
        let clock = last_hb.unwrap_or(0);
        emit_stats(&registry, clock, &gs_stats_senders);
    }
    for tx in &gs_stats_senders {
        tx.close();
    }
    drop(gs_stats_senders);
    drop(lfta_edges);

    // ---- Drain ------------------------------------------------------------
    // Node threads first: with shedding enabled they finish even when a
    // subscriber stalls (the queue sheds instead of back-pressuring), and
    // collector drainers run concurrently regardless of join order. A
    // faulted node's thread still joins cleanly — containment converted
    // the panic into a quarantine before the thread returned — so a join
    // error here means the recovery code itself died; record it rather
    // than abort the whole run.
    for (name, h) in handles {
        if h.join().is_err() {
            board.stats.faults_contained.inc();
            board.record(&name, FaultReason::Panic("node thread aborted".to_string()));
        }
    }
    // Release any deliberately stalled collectors to drain what survived.
    {
        let (released, cv) = &*stall_gate;
        *released.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
    }
    let mut streams: HashMap<String, Vec<Tuple>> = HashMap::new();
    for (name, drainer) in collectors {
        match drainer.join() {
            Ok(bucket) => {
                streams.insert(name, bucket);
            }
            Err(_) => {
                board.record(&name, FaultReason::Panic("collector thread panicked".to_string()));
                streams.insert(name, Vec::new());
            }
        }
    }
    if let Some(dog) = watchdog {
        dog.stop();
    }
    let counters = registry.snapshot();
    // Every node thread joined above, so the sink holds the complete cut
    // (faulted nodes contributed nothing — by design).
    let snapshots = std::mem::take(&mut *snap_sink.lock().unwrap_or_else(PoisonError::into_inner));
    Ok(ThreadedOutput { streams, packets: n_packets, counters, health: board.report(), snapshots })
}

/// Post-quarantine input drain: a faulted node must keep consuming (and
/// discarding) its queue until every port closes, otherwise upstream
/// producers under [`Admission::Block`] would wedge forever on the
/// abandoned queue — the hang this layer exists to prevent.
fn drain_quarantined(rx: &transport::Receiver<Msg>, open: &mut [bool], open_count: &mut usize) {
    while *open_count > 0 {
        match rx.recv() {
            Some(Msg::Close(p)) | Some(Msg::Fault(p, _)) => {
                if open[p] {
                    open[p] = false;
                    *open_count -= 1;
                }
            }
            Some(Msg::Batch(..)) | Some(Msg::Cols(..)) => {}
            None => *open_count = 0,
        }
    }
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers everything we raise).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Snapshot the registry and ship it as one batch of `GS_STATS` tuples
/// (`time, node, counter, value`) followed by a punctuation on `time`,
/// so downstream watermarks advance with every monitoring round.
fn emit_stats(registry: &StatsRegistry, clock: u64, senders: &[PortSender]) {
    let mut items: Vec<StreamItem> = registry
        .snapshot()
        .into_iter()
        .map(|r| {
            StreamItem::Tuple(Tuple::new(vec![
                Value::UInt(clock),
                Value::Str(Bytes::from(r.node.into_bytes())),
                Value::Str(Bytes::from_static(r.counter.as_bytes())),
                Value::UInt(r.value),
            ]))
        })
        .collect();
    items.push(StreamItem::Punct(Punct::new(0, Value::UInt(clock))));
    for (i, tx) in senders.iter().enumerate() {
        if i + 1 == senders.len() {
            tx.send_batch(items);
            break;
        }
        tx.send_batch(items.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn pkt(ts_sec: u64, dport: u16, pay: &[u8]) -> CapPacket {
        let f = FrameBuilder::tcp(1, 2, 999, dport).payload(pay).build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, 0, LinkType::Ethernet, f)
    }

    fn tuple_item(v: u64) -> StreamItem {
        StreamItem::Tuple(Tuple::new(vec![gs_runtime::value::Value::UInt(v)]))
    }

    fn punct_item(v: u64) -> StreamItem {
        StreamItem::Punct(gs_runtime::punct::Punct::new(0, gs_runtime::value::Value::UInt(v)))
    }

    fn test_endpoint(port: usize) -> (Vec<PortSender>, transport::Receiver<Msg>) {
        let (tx, rx, _) = transport::channel::<Msg>(CHANNEL_CAPACITY, Admission::Block);
        (vec![PortSender { tx, port, depth: 0 }], rx)
    }

    /// Regression: punctuation must never wait for a batch to fill. A
    /// partially-filled batch flushes the moment an ordering token is
    /// appended — the flush bound for watermark progress is zero items.
    #[test]
    fn batcher_flushes_partial_batch_on_punct() {
        let (senders, rx) = test_endpoint(3);
        let mut b = Batcher::new(256, false);
        b.extend((0..3).map(tuple_item), &senders);
        assert!(rx.try_recv().is_none(), "3 tuples must sit in the 256-batch");
        b.extend(std::iter::once(punct_item(9)), &senders);
        match rx.try_recv() {
            Some(Msg::Batch(3, items)) => {
                assert_eq!(items.len(), 4, "the punct ships WITH the buffered tuples");
                assert!(matches!(items[3], StreamItem::Punct(_)));
            }
            other => panic!("expected an immediate batch, got {:?}", other.is_some()),
        }
        assert!(rx.try_recv().is_none());
        assert_eq!(b.stats.flush_punct.get(), 1, "the flush is tagged with its cause");
        assert_eq!(b.stats.flush_size.get(), 0);
        assert_eq!(b.stats.items.get(), 4);
    }

    #[test]
    fn batcher_flushes_on_size_and_close() {
        let (senders, rx) = test_endpoint(0);
        let mut b = Batcher::new(4, false);
        b.extend((0..9).map(tuple_item), &senders);
        let mut sizes = Vec::new();
        while let Some(Msg::Batch(_, items)) = rx.try_recv() {
            sizes.push(items.len());
        }
        assert_eq!(sizes, vec![4, 4], "full batches ship, the 9th tuple waits");
        b.close(&senders);
        assert!(matches!(rx.try_recv(), Some(Msg::Batch(_, ref items)) if items.len() == 1));
        assert!(matches!(rx.try_recv(), Some(Msg::Close(0))));
        assert_eq!(b.stats.flush_size.get(), 2);
        assert_eq!(b.stats.flush_close.get(), 1);
        assert_eq!(b.stats.batches.get(), 3);
        assert_eq!(b.stats.items.get(), 9, "no tuple lost or double-counted across flushes");
    }

    /// `batch_size == 1` must reproduce item-at-a-time transport: one
    /// message per item, in order.
    #[test]
    fn batcher_size_one_is_item_at_a_time() {
        let (senders, rx) = test_endpoint(0);
        let mut b = Batcher::new(1, false);
        b.extend([tuple_item(1), tuple_item(2)].into_iter(), &senders);
        for expect in [1u64, 2] {
            match rx.try_recv() {
                Some(Msg::Batch(_, items)) => {
                    assert_eq!(items.len(), 1);
                    assert_eq!(items[0].as_tuple().unwrap().get(0).as_uint(), Some(expect));
                }
                _ => panic!("expected one message per item"),
            }
        }
    }

    /// Regression: a flush with no consumer endpoints used to clear the
    /// buffer with zero counter movement, so the dropped items were
    /// invisible to GS_STATS. They now count as `items` under a
    /// `flush_noconsumer` cause (and never as shipped `batches`).
    #[test]
    fn batcher_accounts_flushes_with_no_consumer() {
        let senders: Vec<PortSender> = Vec::new();
        let mut b = Batcher::new(4, false);
        b.extend((0..9).map(tuple_item), &senders);
        b.close(&senders);
        assert_eq!(b.stats.items.get(), 9, "every dropped item is accounted");
        assert_eq!(b.stats.flush_noconsumer.get(), 3, "two size flushes plus the close tail");
        assert_eq!(b.stats.batches.get(), 0, "nothing was actually shipped");
        assert_eq!(b.stats.flush_size.get(), 0);
        assert_eq!(b.stats.flush_close.get(), 0);
    }

    /// Fan-out clones per batch, not per item: both consumers see the
    /// identical batch.
    #[test]
    fn batcher_fan_out_delivers_full_batch_to_every_consumer() {
        let (mut senders, rx_a) = test_endpoint(0);
        let (more, rx_b) = test_endpoint(1);
        senders.extend(more);
        let mut b = Batcher::new(3, false);
        b.extend((0..3).map(tuple_item), &senders);
        for rx in [&rx_a, &rx_b] {
            match rx.try_recv() {
                Some(Msg::Batch(_, items)) => assert_eq!(items.len(), 3),
                _ => panic!("both consumers must receive the batch"),
            }
        }
        assert_eq!(b.stats.batches.get(), 1, "fan-out is one edge batch, not one per consumer");
    }

    #[test]
    fn threaded_matches_synchronous() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name persec; } \
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time",
        )
        .unwrap();
        let mk = || {
            (0..200u64)
                .map(|i| pkt(i / 40, if i % 3 == 0 { 80 } else { 25 }, b"x"))
                .collect::<Vec<_>>()
        };
        let sync_out = gs.run_capture(mk().into_iter(), &["persec"]).unwrap();
        let thr_out = run_threaded(&gs, mk().into_iter(), &["persec"]).unwrap();
        let norm = |ts: &[Tuple]| {
            let mut v: Vec<(u64, u64)> = ts
                .iter()
                .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(sync_out.stream("persec")), norm(thr_out.stream("persec")));
        assert_eq!(thr_out.packets, 200);
    }

    /// Partition-parallel deployment computes the same answers as the
    /// single-instance plan and registers per-shard stats.
    #[test]
    fn threaded_parallel_aggregation_matches_single_instance() {
        let program = "DEFINE { query_name raw; } \
             Select time, destPort, len From eth0.tcp; \
             DEFINE { query_name perport; } \
             Select time, destPort, count(*), sum(len) From raw Group By time, destPort";
        let mk = || {
            (0..240u64).map(|i| pkt(i / 60, 8000 + (i % 5) as u16, b"xy")).collect::<Vec<_>>()
        };
        let run = |parallelism: usize| {
            let mut gs = Gigascope::new();
            gs.add_interface("eth0", 0, LinkType::Ethernet);
            gs.parallelism = parallelism;
            gs.add_program(program).unwrap();
            run_threaded(&gs, mk().into_iter(), &["perport"]).unwrap()
        };
        let norm = |out: &ThreadedOutput| {
            let mut v: Vec<Vec<u64>> = out
                .stream("perport")
                .iter()
                .map(|t| (0..4).map(|i| t.get(i).as_uint().unwrap()).collect())
                .collect();
            v.sort();
            v
        };
        let base = run(1);
        let par = run(4);
        assert_eq!(norm(&base), norm(&par), "sharded deployment computes the same groups");
        let times: Vec<u64> =
            par.stream("perport").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "merge order preserved: {times:?}");
        // Every shard has its own queue, input edge, and operator stats;
        // the shards together saw every routed tuple exactly once.
        let routed: u64 = (0..4)
            .map(|k| par.counter(&format!("edge:perport#{k}:in"), "items").unwrap())
            .sum();
        // The single-instance run's `raw` edge shipped each tuple and
        // punct once; routing delivers tuples once and puncts per shard.
        let produced = base.counter("edge:raw", "items").unwrap();
        assert!(
            routed >= produced && produced > 0,
            "tuples route to exactly one shard, puncts to all: {routed} vs {produced}"
        );
        assert!(par.counter("queue:perport#2", "enqueued").unwrap() > 0);
        assert!(par.counter("hfta:perport#3/0:aggregate", "tuples_in").is_some());
    }

    #[test]
    fn threaded_merge_pipeline() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_interface("eth1", 1, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp; \
             DEFINE { query_name b; } Select time From eth1.tcp; \
             DEFINE { query_name m; } Merge a.time : b.time From a, b",
        )
        .unwrap();
        let mut pkts = Vec::new();
        for s in 0..50u64 {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            pkts.push(CapPacket::full(s * 1_000_000_000, (s % 2) as u16, LinkType::Ethernet, f));
        }
        let out = run_threaded(&gs, pkts.into_iter(), &["m"]).unwrap();
        let times: Vec<u64> = out.stream("m").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "merge output stays ordered under threading");
        assert_eq!(times.len(), 50);
    }

    /// A subscribed stream emitting far more than CHANNEL_CAPACITY tuples
    /// must not deadlock: without a live drainer per collector the node
    /// blocks on the full subscription queue, back-pressure reaches the
    /// capture loop, and the post-capture drain never starts.
    #[test]
    fn threaded_subscription_exceeding_channel_capacity() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp; \
             DEFINE { query_name m; } Merge a.time : a.time From a, a",
        )
        .unwrap();
        let n = (CHANNEL_CAPACITY * 2 + 100) as u64;
        let pkts = (0..n).map(|s| {
            let f = FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            CapPacket::full(s * 1_000_000, 0, LinkType::Ethernet, f)
        });
        let out = run_threaded(&gs, pkts, &["m"]).unwrap();
        // The self-merge sees every tuple on both ports.
        assert_eq!(out.stream("m").len(), 2 * n as usize);
    }

    /// The final registry snapshot accounts every layer: LFTA counters,
    /// per-operator counters, edge batcher flushes, and queue admissions.
    #[test]
    fn threaded_output_carries_final_counters() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program(
            "DEFINE { query_name persec; } \
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time",
        )
        .unwrap();
        let pkts = (0..100u64).map(|i| pkt(i / 20, if i % 2 == 0 { 80 } else { 25 }, b"x"));
        let out = run_threaded(&gs, pkts, &["persec"]).unwrap();
        assert_eq!(out.counter("lfta:persec__lfta0", "packets_in"), Some(100));
        // The port-25 half is rejected up front — by the pushed-down BPF
        // prefilter or the residual predicate, whichever got the clause.
        let rejected = out.counter("lfta:persec__lfta0", "prefiltered").unwrap()
            + out.counter("lfta:persec__lfta0", "filtered").unwrap();
        assert_eq!(rejected, 50);
        // The HFTA super-aggregate saw every LFTA partial and emitted the
        // 5 time buckets.
        assert_eq!(out.counter("hfta:persec/0:aggregate", "tuples_out"), Some(5));
        let edge_items = out.counter("edge:persec__lfta0", "items").unwrap();
        assert!(edge_items > 0, "LFTA edge shipped its partials");
        assert!(out.counter("queue:persec", "enqueued").unwrap() > 0);
        assert_eq!(out.counter("queue:persec", "shed_batches"), Some(0));
    }

    /// The tentpole invariant at unit scale: an injected operator panic
    /// neither hangs nor aborts the run — `run_threaded` returns `Ok`,
    /// the faulted query is `Failed{Panic}` with a clean-prefix output,
    /// and the sibling query's output is byte-identical to a fault-free
    /// run.
    #[test]
    fn injected_panic_quarantines_one_query_and_spares_siblings() {
        let program = "DEFINE { query_name good; } \
             Select time, count(*) From eth0.tcp Group By time; \
             DEFINE { query_name bad; } \
             Select time, sum(len) From eth0.tcp Group By time";
        let mk = || (0..200u64).map(|i| pkt(i / 40, 80, b"xy")).collect::<Vec<_>>();
        let run = |faults: Option<crate::FaultPlan>| {
            let mut gs = Gigascope::new();
            gs.add_interface("eth0", 0, LinkType::Ethernet);
            gs.batch_size = 8;
            gs.add_program(program).unwrap();
            gs.faults = faults;
            run_threaded(&gs, mk().into_iter(), &["good", "bad"]).unwrap()
        };
        let clean = run(None);
        assert!(clean.health.all_ok());
        let faulty = run(Some(crate::FaultPlan::new().panic_at("bad", 2)));
        assert!(faulty.health.failed("bad"), "the targeted query is quarantined");
        assert!(matches!(
            faulty.health.of("bad"),
            crate::QueryHealth::Failed { reason: FaultReason::Panic(_) }
        ));
        assert!(!faulty.health.failed("good"), "the sibling is untouched");
        assert_eq!(
            faulty.stream("good"),
            clean.stream("good"),
            "sibling output is byte-identical to the fault-free run"
        );
        assert!(
            faulty.stream("bad").len() <= clean.stream("bad").len(),
            "the faulted query keeps at most a clean prefix"
        );
        assert_eq!(faulty.counter("faults", "fault_injected"), Some(1));
        assert_eq!(faulty.counter("faults", "faults_contained"), Some(1));
        assert!(faulty.counter("faults", "queries_failed").unwrap() >= 1);
        assert_eq!(clean.counter("faults", "fault_injected"), None, "no plan, no stats node");
    }

    /// A stalled subscriber with shedding enabled must not wedge the
    /// pipeline: the run completes, drops happen at the stalled queue
    /// under least-processed-first, and the drops are visible in stats.
    #[test]
    fn stalled_subscription_sheds_instead_of_deadlocking() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.batch_size = 1; // many messages, so the tiny queue overflows
        gs.shedding = Some(crate::ShedConfig {
            policy: gs_runtime::qos::DropPolicy::LeastProcessedFirst,
            capacity: 4,
        });
        gs.add_program("DEFINE { query_name sel; } Select time From eth0.tcp").unwrap();
        let pkts = (0..500u64).map(|i| pkt(i / 100, 80, b"x"));
        let out = run_threaded_opts(
            &gs,
            pkts,
            &["sel"],
            ThreadedOptions { stall: vec!["sel".to_string()], ..Default::default() },
        )
        .unwrap();
        let shed = out.counter("queue:sub:sel", "shed_items").unwrap();
        assert!(shed > 0, "the stalled queue must shed");
        assert!(
            (out.stream("sel").len() as u64) + shed >= 500,
            "every tuple is either delivered or accounted as shed"
        );
        assert!(out.stream("sel").len() < 500, "something was actually dropped");
    }
}
