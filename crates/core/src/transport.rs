//! The shed-aware bounded channel the threaded manager wires between
//! query nodes.
//!
//! Replaces `std::sync::mpsc::sync_channel` so admission policy and
//! accounting live at the queue: in [`Admission::Block`] a full queue
//! back-pressures the producer exactly like a sync channel (counting the
//! stalls); in [`Admission::Shed`] the producer never blocks — the
//! configured [`DropPolicy`] picks a victim instead, implementing the
//! paper's §4 overload heuristic ("highly processed tuples ... are more
//! valuable than less-processed tuples") at every LFTA→HFTA and
//! HFTA→HFTA edge.
//!
//! Each message carries a *processing depth* (how far along the query
//! chain its stream sits) used by least-processed-first shedding, and a
//! *weight* (tuple count of the batch) so shed work is accounted in
//! items, not just messages. Control messages (`Close` markers) are sent
//! with [`Sender::send_control`]: they bypass capacity and policy,
//! because shedding one would wedge the consumer waiting on it.

use gs_runtime::qos::{DropPolicy, Offer, Shedder};
use gs_runtime::stats::StatSource;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Poison-tolerant lock: a mutex whose holder panicked (inside a
/// containment boundary) stays usable instead of cascading the abort
/// through every other thread that touches the queue.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a full queue does to an arriving message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Block the producer until space frees (sync-channel semantics).
    Block,
    /// Never block: the [`DropPolicy`] decides what to shed.
    Shed(DropPolicy),
}

/// Counters of one queue, reported as `queue:<consumer>` stats rows.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueStats {
    /// Messages accepted onto the queue (data and control).
    pub enqueued: u64,
    /// Messages taken off the queue by the consumer — the watchdog's
    /// progress signal: pending work with `dequeued` frozen means the
    /// consumer has wedged.
    pub dequeued: u64,
    /// Times a producer found the queue full and had to wait
    /// ([`Admission::Block`] only; one count per blocking episode).
    pub stalls: u64,
    /// Batches shed by the drop policy ([`Admission::Shed`] only).
    pub shed_batches: u64,
    /// Tuples inside those shed batches (the sum of their weights).
    pub shed_items: u64,
    /// Messages discarded by a watchdog force-close (`1+` means this
    /// queue's consumer was declared dead).
    pub forced_drops: u64,
}

struct Inner<T> {
    /// Buffered messages as `(weight, payload)`, depth-tagged by the
    /// shedder itself.
    shedder: Shedder<(u64, T)>,
    senders: usize,
    receiver_alive: bool,
    /// Set by [`Channel::force_close`]: the watchdog declared the
    /// consumer dead. Sends become no-ops, `recv` reports end-of-stream.
    closed: bool,
    stats: QueueStats,
}

/// The shared state behind one consumer's ready-queue.
pub struct Channel<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    admission: Admission,
}

impl<T: Send> StatSource for Channel<T> {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = lock(&self.inner).stats;
        vec![
            ("enqueued", s.enqueued),
            ("dequeued", s.dequeued),
            ("stalls", s.stalls),
            ("shed_batches", s.shed_batches),
            ("shed_items", s.shed_items),
            ("forced_drops", s.forced_drops),
        ]
    }
}

impl<T: Send> Channel<T> {
    /// Progress probe for the watchdog: `(messages dequeued so far,
    /// messages pending right now)`.
    pub fn progress(&self) -> (u64, usize) {
        let inner = lock(&self.inner);
        (inner.stats.dequeued, inner.shedder.len())
    }

    /// Declare the consumer dead: discard everything buffered (counted
    /// as `forced_drops`), make further sends no-ops, report
    /// end-of-stream to the receiver, and wake every blocked producer.
    /// Returns the number of discarded messages. Idempotent.
    pub fn force_close(&self) -> u64 {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return 0;
        }
        inner.closed = true;
        let mut dropped = 0;
        while inner.shedder.pop().is_some() {
            dropped += 1;
        }
        inner.stats.forced_drops += dropped;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
        dropped
    }
}

/// The producer half; clone one per upstream.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

/// The consumer half.
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
}

/// Create a bounded queue of `capacity` messages under `admission`.
/// Returns the two endpoints plus the shared channel for stats
/// registration.
pub fn channel<T: Send>(
    capacity: usize,
    admission: Admission,
) -> (Sender<T>, Receiver<T>, Arc<Channel<T>>) {
    let policy = match admission {
        Admission::Block => DropPolicy::TailDrop, // never consulted
        Admission::Shed(p) => p,
    };
    let chan = Arc::new(Channel {
        inner: Mutex::new(Inner {
            shedder: Shedder::new(capacity.max(1), policy),
            senders: 1,
            receiver_alive: true,
            closed: false,
            stats: QueueStats::default(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
        admission,
    });
    (Sender { chan: chan.clone() }, Receiver { chan: chan.clone() }, chan)
}

impl<T> Sender<T> {
    /// Send a data message of the given processing depth and weight
    /// (tuple count). Blocks or sheds per the channel's [`Admission`];
    /// silently discards if the receiver is gone (matching the manager's
    /// former `let _ = tx.send(..)` behavior).
    pub fn send(&self, depth: u32, weight: u64, msg: T) {
        let mut inner = lock(&self.chan.inner);
        if !inner.receiver_alive || inner.closed {
            return;
        }
        match self.chan.admission {
            Admission::Block => {
                if inner.shedder.len() >= self.chan.capacity {
                    inner.stats.stalls += 1;
                    while inner.shedder.len() >= self.chan.capacity
                        && inner.receiver_alive
                        && !inner.closed
                    {
                        inner = self
                            .chan
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    if !inner.receiver_alive || inner.closed {
                        return;
                    }
                }
                inner.shedder.force(depth, (weight, msg));
                inner.stats.enqueued += 1;
            }
            Admission::Shed(_) => match inner.shedder.offer(depth, (weight, msg)) {
                Offer::Accepted => inner.stats.enqueued += 1,
                Offer::AcceptedEvicting(_, (w, _)) => {
                    inner.stats.enqueued += 1;
                    inner.stats.shed_batches += 1;
                    inner.stats.shed_items += w;
                }
                Offer::Rejected(_, (w, _)) => {
                    inner.stats.shed_batches += 1;
                    inner.stats.shed_items += w;
                    return; // nothing new buffered, nobody to wake
                }
            },
        }
        drop(inner);
        self.chan.not_empty.notify_one();
    }

    /// Send a control message (a `Close` marker): enqueued past capacity
    /// and never shed. The transient overshoot is bounded by the number
    /// of producers, each of which closes once.
    pub fn send_control(&self, msg: T) {
        let mut inner = lock(&self.chan.inner);
        if !inner.receiver_alive || inner.closed {
            return;
        }
        inner.shedder.force(u32::MAX, (0, msg));
        inner.stats.enqueued += 1;
        drop(inner);
        self.chan.not_empty.notify_one();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.chan.inner).senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.chan.inner);
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a receiver blocked on an empty queue so it can see
            // the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Take the oldest buffered message; `None` once every sender has
    /// dropped and the queue is drained (disconnect), or immediately
    /// after a watchdog [`force_close`](Channel::force_close).
    pub fn recv(&self) -> Option<T> {
        let mut inner = lock(&self.chan.inner);
        loop {
            if inner.closed {
                return None;
            }
            if let Some((_, (_, msg))) = inner.shedder.pop() {
                inner.stats.dequeued += 1;
                drop(inner);
                self.chan.not_full.notify_one();
                return Some(msg);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self
                .chan
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking [`recv`](Receiver::recv): `None` when nothing is
    /// currently buffered (whether or not senders remain).
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = lock(&self.chan.inner);
        if inner.closed {
            return None;
        }
        let msg = inner.shedder.pop();
        if msg.is_some() {
            inner.stats.dequeued += 1;
        }
        drop(inner);
        msg.map(|(_, (_, m))| {
            self.chan.not_full.notify_one();
            m
        })
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        lock(&self.chan.inner).receiver_alive = false;
        // Unblock producers waiting for space; their sends become no-ops.
        self.chan.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx, _) = channel(4, Admission::Block);
        for i in 0..4 {
            tx.send(0, 1, i);
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(rx.recv().is_none(), "disconnect after drain");
    }

    #[test]
    fn block_mode_stalls_then_delivers_everything() {
        let (tx, rx, chan) = channel(2, Admission::Block);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(0, 1, i);
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "blocking loses nothing");
        let stats = chan.inner.lock().unwrap().stats;
        assert_eq!(stats.enqueued, 100);
        assert_eq!(stats.shed_batches, 0);
    }

    #[test]
    fn shed_mode_never_blocks_and_counts_victims() {
        let (tx, rx, chan) = channel(2, Admission::Shed(DropPolicy::TailDrop));
        // No consumer running: the queue fills, the rest shed.
        for i in 0..10 {
            tx.send(0, 3, i);
        }
        let stats = chan.inner.lock().unwrap().stats;
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.shed_batches, 8);
        assert_eq!(stats.shed_items, 24, "weights of shed batches accumulate");
        assert_eq!(stats.stalls, 0);
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn shed_mode_lpf_evicts_shallow_for_deep() {
        let (tx, rx, chan) = channel(1, Admission::Shed(DropPolicy::LeastProcessedFirst));
        tx.send(0, 5, "raw");
        tx.send(3, 1, "joined");
        let stats = chan.inner.lock().unwrap().stats;
        assert_eq!(stats.shed_batches, 1);
        assert_eq!(stats.shed_items, 5, "the shallow batch's weight was shed");
        drop(tx);
        assert_eq!(rx.recv(), Some("joined"));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn control_bypasses_a_full_shed_queue() {
        let (tx, rx, _) = channel(1, Admission::Shed(DropPolicy::LeastProcessedFirst));
        tx.send(9, 1, "deep");
        tx.send_control("close");
        drop(tx);
        assert_eq!(rx.recv(), Some("deep"));
        assert_eq!(rx.recv(), Some("close"), "control is never shed");
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropped_receiver_unblocks_producers() {
        let (tx, rx, _) = channel(1, Admission::Block);
        tx.send(0, 1, 1);
        let producer = thread::spawn(move || {
            tx.send(0, 1, 2); // blocks on the full queue until rx drops
            tx.send(0, 1, 3); // no-op after disconnect
        });
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        producer.join().unwrap();
    }

    #[test]
    fn channel_reports_queue_stats_rows() {
        let (tx, rx, chan) = channel(8, Admission::Block);
        tx.send(0, 1, ());
        rx.recv();
        let rows = chan.counters();
        assert_eq!(rows[0], ("enqueued", 1));
        assert_eq!(rows[1], ("dequeued", 1));
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn progress_tracks_dequeues_and_pending() {
        let (tx, rx, chan) = channel(8, Admission::Block);
        tx.send(0, 1, 1);
        tx.send(0, 1, 2);
        assert_eq!(chan.progress(), (0, 2));
        rx.recv();
        assert_eq!(chan.progress(), (1, 1));
    }

    #[test]
    fn force_close_drains_unblocks_and_ends_stream() {
        let (tx, rx, chan) = channel(1, Admission::Block);
        tx.send(0, 1, 1);
        let chan2 = chan.clone();
        let producer = thread::spawn(move || {
            tx.send(0, 1, 2); // blocks until the force-close below
            tx.send(0, 1, 3); // no-op afterwards
            tx.send_control(4); // also a no-op
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(chan2.force_close(), 1, "the buffered message is discarded");
        assert_eq!(chan2.force_close(), 0, "idempotent");
        producer.join().unwrap();
        assert_eq!(rx.recv(), None, "receiver sees end-of-stream");
        assert_eq!(rx.try_recv(), None);
        let stats = lock(&chan.inner).stats;
        assert_eq!(stats.forced_drops, 1);
    }
}
