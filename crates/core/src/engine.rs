//! The synchronous execution engine.
//!
//! Runs every deployed query over a time-ordered capture stream in one
//! thread: LFTAs execute inline in the capture loop (exactly as the paper
//! links them into the run time system), and HFTA nodes execute
//! immediately when their input streams produce items. Deterministic by
//! construction, which the test suite and the experiment harnesses rely
//! on. The threaded deployment configuration lives in [`crate::manager`].
//!
//! This engine always executes row-at-a-time and ignores
//! [`Gigascope::columnar`]: there is no transport hop to amortize, and
//! its deterministic row output is the equivalence reference the
//! columnar property tests compare the threaded manager against.

use crate::health::{FaultReason, HealthBoard, RunHealth};
use crate::{Error, Gigascope};
use bytes::Bytes;
use gs_runtime::faults::NodeInjector;
use gs_runtime::ops::build::{build_hfta, build_lfta, BuildCtx, HftaNode};
use gs_runtime::ops::lfta::{Lfta, LftaStats};
use gs_runtime::ops::prefilter::{LftaSlot, PrefilterCache, SharedPrefilter};
use gs_runtime::ops::router::KeyRouter;
use gs_runtime::punct::{HeartbeatMode, Punct};
use gs_runtime::stats::{StatRow, StatsRegistry};
use gs_runtime::tuple::{StreamItem, Tuple};
use gs_runtime::value::Value;
use gs_packet::CapPacket;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Per-run statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Packets consumed from the capture stream.
    pub packets: u64,
    /// Heartbeat rounds issued.
    pub heartbeats: u64,
    /// Per-LFTA execution counters, keyed by stream name.
    pub lfta: HashMap<String, LftaStats>,
    /// Per-LFTA direct-mapped table statistics (aggregation LFTAs only).
    pub lfta_tables: HashMap<String, gs_runtime::ops::agg::DmStats>,
    /// Peak buffered tuples per merge/join node, keyed by query name.
    pub peak_buffered: HashMap<String, usize>,
    /// Final stats-registry snapshot: `lfta:*` and `hfta:*` counter rows
    /// (the same rows the built-in `GS_STATS` stream emits), taken after
    /// every operator finished.
    pub counters: Vec<StatRow>,
    /// Which queries ran clean and which were quarantined (a panicked
    /// operator fails its own chain; siblings are unaffected).
    pub health: RunHealth,
}

impl EngineStats {
    /// Convenience lookup of one final counter value.
    pub fn counter(&self, node: &str, counter: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.node == node && r.counter == counter)
            .map(|r| r.value)
    }
}

/// The collected output of a run.
#[derive(Debug, Default)]
pub struct RunOutput {
    /// Collected tuples per subscribed stream.
    pub streams: HashMap<String, Vec<Tuple>>,
    /// Execution statistics.
    pub stats: EngineStats,
}

impl RunOutput {
    /// Tuples of one subscribed stream (empty if absent).
    pub fn stream(&self, name: &str) -> &[Tuple] {
        self.streams.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

struct LftaHost {
    lfta: Lfta,
    iface_id: u16,
    out_sid: usize,
}

impl LftaSlot for LftaHost {
    fn lfta_mut(&mut self) -> &mut Lfta {
        &mut self.lfta
    }
}

struct NodeHost {
    name: String,
    node: HftaNode,
    out_sid: usize,
}

/// Hash router feeding the K partition instances of one rewritten HFTA,
/// installed on the partitioned input stream. Tuples go to exactly one
/// partition; punctuation is broadcast to all of them.
struct EngineRouter {
    router: KeyRouter,
    /// Node indices of the partition instances, in partition order.
    targets: Vec<usize>,
}

/// The wired-up execution graph.
pub struct Engine {
    lftas: Vec<LftaHost>,
    nodes: Vec<NodeHost>,
    /// stream id -> (node index, port) consumers.
    consumers: Vec<Vec<(usize, usize)>>,
    /// stream id -> hash routers over that stream's partition instances
    /// (one per partitioned query reading the stream).
    routers: HashMap<usize, Vec<EngineRouter>>,
    /// stream id -> collection bucket.
    collect: Vec<Option<String>>,
    stream_ids: HashMap<String, usize>,
    heartbeat: HeartbeatMode,
    outputs: HashMap<String, Vec<Tuple>>,
    stats: EngineStats,
    clock_sec: u64,
    last_heartbeat_sec: Option<u64>,
    /// Every LFTA and operator registers its counters here; snapshots
    /// feed the `GS_STATS` stream and the final [`EngineStats::counters`].
    registry: Arc<StatsRegistry>,
    /// Stream id of the built-in `GS_STATS` monitoring stream.
    gs_stats_sid: usize,
    stats_enabled: bool,
    /// Quarantine bookkeeping: every containment decision lands here.
    board: HealthBoard,
    /// Per-node quarantine flags — a failed node (and its transitive
    /// downstream) is never pushed to or finished again; its query keeps
    /// the clean prefix collected before the fault.
    failed: Vec<bool>,
    /// Armed fault injectors by node index ([`Gigascope::faults`]).
    injectors: HashMap<usize, NodeInjector>,
    /// Cross-query shared prefilter pass ([`Gigascope::shared_prefilter`]);
    /// `None` runs each LFTA fully privately.
    shared: Option<SharedPrefilter>,
    /// Reused per-LFTA output buffers for shared dispatch.
    shared_outs: Vec<Vec<StreamItem>>,
    /// Rendered shared-prefilter plan (atom table + bitmasks), for explain.
    prefilter_plan: Option<String>,
}

impl Engine {
    /// Instantiate every deployed query of `gs`.
    pub fn build(gs: &Gigascope) -> Result<Engine, Error> {
        Self::build_inner(gs, false)
    }

    /// Like [`Engine::build`], but also renders the shared-prefilter
    /// plan text for explain output. Ordinary runs skip the rendering:
    /// it walks every atom and bitmask, which is wasted work on the
    /// build-per-capture path.
    pub fn build_explained(gs: &Gigascope) -> Result<Engine, Error> {
        Self::build_inner(gs, true)
    }

    fn build_inner(gs: &Gigascope, render_plan: bool) -> Result<Engine, Error> {
        let mut engine = Engine {
            lftas: Vec::new(),
            nodes: Vec::new(),
            consumers: Vec::new(),
            routers: HashMap::new(),
            collect: Vec::new(),
            stream_ids: HashMap::new(),
            heartbeat: gs.heartbeat,
            outputs: HashMap::new(),
            stats: EngineStats::default(),
            clock_sec: 0,
            last_heartbeat_sec: None,
            registry: Arc::new(StatsRegistry::new()),
            gs_stats_sid: 0,
            stats_enabled: gs.stats_enabled,
            board: HealthBoard::new(),
            failed: Vec::new(),
            injectors: HashMap::new(),
            shared: None,
            shared_outs: Vec::new(),
            prefilter_plan: None,
        };
        for dq in gs.queries() {
            let params = gs.params_for(&dq.name);
            params
                .validate(&dq.params)
                .map_err(|e| Error::Runtime(gs_runtime::RuntimeError::msg(format!(
                    "query `{}`: {e}",
                    dq.name
                ))))?;
            let ctx = BuildCtx {
                catalog: gs.catalog(),
                params: &params,
                registry: gs.registry(),
                resolver: gs.resolver(),
                lfta_table_size: gs.lfta_table_size,
            };
            for spec in &dq.lftas {
                let lfta = build_lfta(spec, &ctx)?;
                let iface_id = lfta_iface_id(gs, spec)?;
                let out_sid = engine.sid(&spec.name);
                engine.lftas.push(LftaHost { lfta, iface_id, out_sid });
            }
            if let Some(hplan) = &dq.hfta {
                if let Some(part) = gs.parallel_rewrite(dq) {
                    // K partition instances fed by a hash router on the
                    // input stream (not via the consumer map, which
                    // would duplicate every tuple into every shard)...
                    let mut progs = Vec::with_capacity(part.hash_exprs.len());
                    for e in &part.hash_exprs {
                        progs.push(ctx.prog(e).map_err(Error::Runtime)?);
                    }
                    let in_sid = engine.sid(&part.input);
                    let mut targets = Vec::with_capacity(part.partitions.len());
                    for (pname, pplan) in &part.partitions {
                        let node = build_hfta(pplan, &ctx)?;
                        targets.push(engine.nodes.len());
                        let out_sid = engine.sid(pname);
                        engine.nodes.push(NodeHost { name: pname.clone(), node, out_sid });
                    }
                    let k = targets.len();
                    engine
                        .routers
                        .entry(in_sid)
                        .or_default()
                        .push(EngineRouter { router: KeyRouter::new(progs, k), targets });
                    // ... reunified by an ordinary merge node wired
                    // through the consumer map. Inserted after the
                    // partitions so `run`'s in-order finish flushes the
                    // shards into the merge before the merge finishes.
                    let node = build_hfta(&part.merge, &ctx)?;
                    let node_idx = engine.nodes.len();
                    for (port, input) in node.inputs.iter().enumerate() {
                        let sid = engine.sid(input);
                        engine.consumers[sid].push((node_idx, port));
                    }
                    let out_sid = engine.sid(&dq.name);
                    engine.nodes.push(NodeHost { name: dq.name.clone(), node, out_sid });
                } else {
                    let node = build_hfta(hplan, &ctx)?;
                    let node_idx = engine.nodes.len();
                    for (port, input) in node.inputs.iter().enumerate() {
                        let sid = engine.sid(input);
                        engine.consumers[sid].push((node_idx, port));
                    }
                    let out_sid = engine.sid(&dq.name);
                    engine.nodes.push(NodeHost { name: dq.name.clone(), node, out_sid });
                }
            }
        }
        // Register every counter source and claim the monitoring
        // stream's id, so queries over GS_STATS (and direct
        // subscriptions to it) wire up like any other stream.
        for h in &engine.lftas {
            engine.registry.register(format!("lfta:{}", h.lfta.name), h.lfta.stats_handle());
        }
        if gs.shared_prefilter && !engine.lftas.is_empty() {
            // Dedup structurally equal compiled BPF programs, then build
            // the shared cross-query pass over the final LFTA vector.
            let mut cache = PrefilterCache::new();
            for h in &mut engine.lftas {
                h.lfta.intern_prefilter(&mut |p| cache.intern(p));
            }
            let mut sp = SharedPrefilter::new();
            for h in &engine.lftas {
                sp.add_lfta(&h.lfta, h.iface_id);
            }
            sp.register_stats(&engine.registry);
            if render_plan {
                engine.prefilter_plan = Some(sp.describe(&|e, proto| {
                    match gs.catalog().protocol_schema(proto.name) {
                        Some(s) => gs_gsql::explain::expr_str(e, &s),
                        None => format!("{e:?}"),
                    }
                }));
            }
            engine.shared_outs = (0..engine.lftas.len()).map(|_| Vec::new()).collect();
            engine.shared = Some(sp);
        }
        for n in &engine.nodes {
            n.node.register_stats(&engine.registry, &n.name);
        }
        engine.failed = vec![false; engine.nodes.len()];
        if let Some(plan) = &gs.faults {
            // Arm the configured faults per node; the `faults` stats
            // node only exists when a plan does, so a default run's
            // GS_STATS row set is unchanged.
            engine.registry.register("faults".to_string(), engine.board.stats.clone());
            for (idx, n) in engine.nodes.iter().enumerate() {
                if let Some(inj) = plan.armed(&n.name, &engine.board.stats) {
                    engine.injectors.insert(idx, inj);
                }
            }
        }
        engine.gs_stats_sid = engine.sid("GS_STATS");
        Ok(engine)
    }

    /// The rendered shared-prefilter plan, when the pass is active.
    pub(crate) fn describe_prefilter(&self) -> Option<String> {
        self.prefilter_plan.clone()
    }

    /// Quarantine `root` after a contained fault: mark it and every
    /// transitive downstream node failed, and record each owning query
    /// on the health board (the root with its own reason, collateral as
    /// `Upstream(origin)`).
    fn quarantine(&mut self, root: usize, reason: FaultReason) {
        let origin = self.nodes[root].name.clone();
        self.board.record(&origin, reason);
        self.failed[root] = true;
        let mut stack = vec![self.nodes[root].out_sid];
        while let Some(sid) = stack.pop() {
            let mut downstream: Vec<usize> =
                self.consumers[sid].iter().map(|&(n, _)| n).collect();
            for r in self.routers.get(&sid).into_iter().flatten() {
                downstream.extend(r.targets.iter().copied());
            }
            for n in downstream {
                if !self.failed[n] {
                    self.failed[n] = true;
                    let name = self.nodes[n].name.clone();
                    self.board.record(&name, FaultReason::Upstream(origin.clone()));
                    stack.push(self.nodes[n].out_sid);
                }
            }
        }
    }

    /// Feed one batch to one node inside the containment boundary.
    /// Quarantined nodes discard their input; a panic (injected or
    /// organic) quarantines the node's chain instead of unwinding out
    /// of the run.
    fn push_node(
        &mut self,
        node_idx: usize,
        port: usize,
        mut batch: Vec<StreamItem>,
        work: &mut Vec<(usize, Vec<StreamItem>)>,
    ) {
        if self.failed[node_idx] {
            return;
        }
        let mut out = Vec::new();
        let inj = self.injectors.get_mut(&node_idx);
        let node = &mut self.nodes[node_idx].node;
        let run = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inj) = inj {
                inj.on_batch(&mut batch);
            }
            node.push_batch(port, batch, &mut out);
        }));
        match run {
            Ok(()) => {
                if !out.is_empty() {
                    work.push((self.nodes[node_idx].out_sid, out));
                }
            }
            Err(payload) => {
                self.board.stats.faults_contained.inc();
                self.quarantine(
                    node_idx,
                    FaultReason::Panic(crate::manager::panic_message(payload.as_ref())),
                );
            }
        }
    }

    fn sid(&mut self, name: &str) -> usize {
        if let Some(&s) = self.stream_ids.get(name) {
            return s;
        }
        let s = self.consumers.len();
        self.stream_ids.insert(name.to_string(), s);
        self.consumers.push(Vec::new());
        self.collect.push(None);
        s
    }

    /// Collect the named streams into the run output.
    pub fn subscribe(&mut self, names: &[&str]) -> Result<(), Error> {
        for n in names {
            let Some(&sid) = self.stream_ids.get(*n) else {
                return Err(Error::Config(format!("no stream named `{n}` to subscribe to")));
            };
            self.collect[sid] = Some(n.to_string());
            self.outputs.entry(n.to_string()).or_default();
        }
        Ok(())
    }

    fn propagate(&mut self, sid: usize, items: Vec<StreamItem>) {
        let mut work = vec![(sid, items)];
        while let Some((sid, mut items)) = work.pop() {
            if let Some(name) = &self.collect[sid] {
                let bucket = self.outputs.entry(name.clone()).or_default();
                bucket.extend(items.iter().filter_map(|i| i.as_tuple().cloned()));
            }
            let has_router = self.routers.contains_key(&sid);
            let consumers = self.consumers[sid].clone();
            for (i, (node_idx, port)) in consumers.iter().copied().enumerate() {
                // Last consumer takes the item vector, earlier ones clone
                // it — the same batch-level fan-out rule as the threaded
                // manager. A router counts as one more consumer.
                let batch = if i + 1 == consumers.len() && !has_router {
                    std::mem::take(&mut items)
                } else {
                    items.clone()
                };
                self.push_node(node_idx, port, batch, &mut work);
            }
            if has_router {
                // Split the batch per partition: tuples go to their
                // hashed shard, punctuation is broadcast to every shard
                // (each shard's watermark must keep advancing or the
                // reunifying merge would hold output forever). Several
                // partitioned queries may read the same stream — each
                // gets its own router over its own shards.
                let n_routers = self.routers.get(&sid).map_or(0, Vec::len);
                for ri in 0..n_routers {
                    let router = &mut self.routers.get_mut(&sid).expect("checked above")[ri];
                    let mut parts: Vec<Vec<StreamItem>> = vec![Vec::new(); router.targets.len()];
                    let batch = if ri + 1 == n_routers {
                        std::mem::take(&mut items)
                    } else {
                        items.clone()
                    };
                    for item in batch {
                        match &item {
                            StreamItem::Tuple(t) => {
                                let b = router.router.route(t);
                                parts[b].push(item);
                            }
                            StreamItem::Punct(_) => {
                                for p in &mut parts {
                                    p.push(item.clone());
                                }
                            }
                        }
                    }
                    let targets = router.targets.clone();
                    for (batch, node_idx) in parts.into_iter().zip(targets) {
                        if batch.is_empty() {
                            continue;
                        }
                        self.push_node(node_idx, 0, batch, &mut work);
                    }
                }
            }
        }
    }

    fn heartbeat_all(&mut self) {
        self.stats.heartbeats += 1;
        let now = self.clock_sec;
        for i in 0..self.lftas.len() {
            let mut out = Vec::new();
            self.lftas[i].lfta.heartbeat(now, &mut out);
            if !out.is_empty() {
                let sid = self.lftas[i].out_sid;
                self.propagate(sid, out);
            }
        }
        self.last_heartbeat_sec = Some(now);
        self.emit_gs_stats();
    }

    /// Whether anything consumes the monitoring stream (a query over
    /// GS_STATS or a direct subscription); snapshots are skipped
    /// otherwise.
    fn gs_stats_wanted(&self) -> bool {
        self.stats_enabled
            && (self.collect[self.gs_stats_sid].is_some()
                || !self.consumers[self.gs_stats_sid].is_empty())
    }

    /// Publish every counter and propagate one registry snapshot as
    /// `GS_STATS` tuples (`time, node, counter, value`) plus a
    /// punctuation on `time` — the paper's "Gigascope monitors itself"
    /// loop, riding the ordinary stream machinery.
    fn emit_gs_stats(&mut self) {
        if !self.gs_stats_wanted() {
            return;
        }
        // The shared pass batches per-LFTA counter deltas; fold them in
        // before publishing so the snapshot sees exact counts.
        if let Some(sp) = self.shared.as_mut() {
            sp.flush_stats(&mut self.lftas);
        }
        self.publish_all();
        let clock = self.clock_sec;
        let mut items: Vec<StreamItem> = self
            .registry
            .snapshot()
            .into_iter()
            .map(|r| {
                StreamItem::Tuple(Tuple::new(vec![
                    Value::UInt(clock),
                    Value::Str(Bytes::from(r.node.into_bytes())),
                    Value::Str(Bytes::from_static(r.counter.as_bytes())),
                    Value::UInt(r.value),
                ]))
            })
            .collect();
        items.push(StreamItem::Punct(Punct::new(0, Value::UInt(clock))));
        self.propagate(self.gs_stats_sid, items);
    }

    fn publish_all(&self) {
        for h in &self.lftas {
            h.lfta.publish_stats();
        }
        if let Some(sp) = &self.shared {
            sp.publish_stats();
        }
        for n in &self.nodes {
            n.node.publish_stats();
        }
    }

    fn maybe_heartbeat(&mut self) {
        match self.heartbeat {
            HeartbeatMode::Off => {}
            HeartbeatMode::Periodic { interval } => {
                let due = self
                    .last_heartbeat_sec
                    .is_none_or(|l| self.clock_sec >= l + interval.max(1));
                if due {
                    self.heartbeat_all();
                }
            }
            HeartbeatMode::OnDemand => {
                // An operator "detects that it might be blocked" (§3):
                // any starved merge triggers one round per clock advance.
                let starved = self
                    .nodes
                    .iter()
                    .any(|n| n.node.merge_state().is_some_and(|(_, _, s)| s));
                let fresh = self.last_heartbeat_sec.is_none_or(|l| self.clock_sec > l);
                if starved && fresh {
                    self.heartbeat_all();
                }
            }
        }
    }

    /// Run to completion over a time-ordered capture stream.
    pub fn run<I>(&mut self, packets: I) -> RunOutput
    where
        I: Iterator<Item = CapPacket>,
    {
        for pkt in packets {
            self.stats.packets += 1;
            self.clock_sec = u64::from(pkt.time_sec());
            if let Some(mut sp) = self.shared.take() {
                // Shared cross-query pass: one parse, each distinct
                // program/protocol/atom evaluated once, LFTAs dispatched
                // off the memoized verdicts.
                let mut outs = std::mem::take(&mut self.shared_outs);
                sp.dispatch(&pkt, &mut self.lftas, &mut outs);
                // Only the slots whose tail ran can hold output — skip
                // the rest instead of scanning all N out-vectors.
                for &i in sp.hit_slots() {
                    if !outs[i].is_empty() {
                        let sid = self.lftas[i].out_sid;
                        self.propagate(sid, std::mem::take(&mut outs[i]));
                    }
                }
                self.shared_outs = outs;
                self.shared = Some(sp);
            } else {
                for i in 0..self.lftas.len() {
                    if self.lftas[i].iface_id != pkt.iface {
                        continue;
                    }
                    let mut out = Vec::new();
                    self.lftas[i].lfta.push_packet(&pkt, &mut out);
                    if !out.is_empty() {
                        let sid = self.lftas[i].out_sid;
                        self.propagate(sid, out);
                    }
                }
            }
            self.maybe_heartbeat();
        }

        // Capture over: flush LFTAs, end their streams, then finish the
        // HFTA nodes in topological (submission) order.
        for i in 0..self.lftas.len() {
            let mut out = Vec::new();
            self.lftas[i].lfta.finish(&mut out);
            let sid = self.lftas[i].out_sid;
            if !out.is_empty() {
                self.propagate(sid, out);
            }
            self.end_stream(sid);
        }
        // One final monitoring snapshot at capture close, then end the
        // GS_STATS stream so its consumers can finish. Ending it is
        // unconditional: consumers wait on end-of-stream either way.
        self.emit_gs_stats();
        self.end_stream(self.gs_stats_sid);
        for i in 0..self.nodes.len() {
            if self.failed[i] {
                // Quarantined: its downstream is quarantined too, so
                // there is nobody to flush into or close.
                continue;
            }
            let mut out = Vec::new();
            let node = &mut self.nodes[i].node;
            let run = catch_unwind(AssertUnwindSafe(|| node.finish(&mut out)));
            if run.is_err() {
                self.board.stats.faults_contained.inc();
                self.quarantine(i, FaultReason::Panic("panic while finishing".to_string()));
                continue;
            }
            let sid = self.nodes[i].out_sid;
            if !out.is_empty() {
                self.propagate(sid, out);
            }
            self.end_stream(sid);
        }

        // Gather statistics (folding any batched shared-pass deltas first).
        if let Some(sp) = self.shared.as_mut() {
            sp.flush_stats(&mut self.lftas);
        }
        for h in &self.lftas {
            self.stats.lfta.insert(h.lfta.name.clone(), h.lfta.stats);
            if let Some(dm) = h.lfta.dm_stats() {
                self.stats.lfta_tables.insert(h.lfta.name.clone(), dm);
            }
        }
        for n in &self.nodes {
            if let Some((_, peak, _)) = n.node.merge_state() {
                self.stats.peak_buffered.insert(n.name.clone(), peak);
            }
            if let Some((_, peak)) = n.node.join_state() {
                self.stats.peak_buffered.insert(n.name.clone(), peak);
            }
        }
        self.publish_all();
        self.stats.counters = self.registry.snapshot();
        self.stats.health = self.board.report();
        RunOutput {
            streams: std::mem::take(&mut self.outputs),
            stats: std::mem::take(&mut self.stats),
        }
    }

    fn end_stream(&mut self, sid: usize) {
        let consumers = self.consumers[sid].clone();
        for (node_idx, port) in consumers {
            if self.failed[node_idx] {
                continue;
            }
            let mut out = Vec::new();
            let node = &mut self.nodes[node_idx].node;
            let run = catch_unwind(AssertUnwindSafe(|| node.finish_input(port, &mut out)));
            if run.is_err() {
                self.board.stats.faults_contained.inc();
                self.quarantine(node_idx, FaultReason::Panic("panic at end of input".to_string()));
                continue;
            }
            if !out.is_empty() {
                let out_sid = self.nodes[node_idx].out_sid;
                self.propagate(out_sid, out);
            }
        }
    }
}

pub(crate) fn lfta_iface_id(gs: &Gigascope, spec: &gs_gsql::split::LftaSpec) -> Result<u16, Error> {
    let mut iface_name = None;
    spec.plan.visit(&mut |p| {
        if let gs_gsql::plan::Plan::ProtocolScan { interface, .. } = p {
            iface_name = Some(interface.clone());
        }
    });
    let name = iface_name
        .ok_or_else(|| Error::Config(format!("LFTA `{}` has no protocol scan", spec.name)))?;
    gs.catalog()
        .interface(&name)
        .map(|d| d.id)
        .ok_or_else(|| Error::Config(format!("unknown interface `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamBindings, Value};
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn pkt(ts_sec: u64, iface: u16, dport: u16, payload: &[u8]) -> CapPacket {
        let f = FrameBuilder::tcp(0x0a000001, 0x0a000002, 999, dport)
            .payload(payload)
            .build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, iface, LinkType::Ethernet, f)
    }

    fn system() -> Gigascope {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_interface("eth1", 1, LinkType::Ethernet);
        gs
    }

    #[test]
    fn simple_lfta_query_end_to_end() {
        let mut gs = system();
        gs.add_program(
            "DEFINE { query_name dest80; } \
             Select time, destPort From eth0.tcp Where destPort = 80",
        )
        .unwrap();
        let pkts =
            vec![pkt(1, 0, 80, b"a"), pkt(1, 0, 443, b"b"), pkt(2, 0, 80, b"c"), pkt(2, 1, 80, b"d")];
        let out = gs.run_capture(pkts.into_iter(), &["dest80"]).unwrap();
        let rows = out.stream("dest80");
        assert_eq!(rows.len(), 2, "only eth0 port-80 packets qualify");
        assert!(rows.iter().all(|t| t.get(1).as_uint() == Some(80)));
        assert_eq!(out.stats.packets, 4);
        let ls = out.stats.lfta.get("dest80").unwrap();
        assert_eq!(ls.packets_in, 3, "only eth0 packets reach the LFTA");
    }

    #[test]
    fn split_aggregation_equals_expected_counts() {
        let mut gs = system();
        gs.add_program(
            "DEFINE { query_name persec; } \
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time",
        )
        .unwrap();
        let mut pkts = Vec::new();
        for s in 1..=3u64 {
            for k in 0..(s as usize) {
                pkts.push(pkt(s, 0, 80, &[k as u8]));
            }
            pkts.push(pkt(s, 0, 443, b"x"));
        }
        let out = gs.run_capture(pkts.into_iter(), &["persec"]).unwrap();
        let mut rows: Vec<(u64, u64)> = out
            .stream("persec")
            .iter()
            .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
            .collect();
        rows.sort();
        assert_eq!(rows, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn parallel_aggregation_matches_single_instance() {
        let program = "DEFINE { query_name raw; } \
             Select time, destPort, len From eth0.tcp; \
             DEFINE { query_name perport; } \
             Select time, destPort, count(*), sum(len) From raw Group By time, destPort";
        let mk = || {
            let mut pkts = Vec::new();
            for s in 1..=4u64 {
                for k in 0..6u16 {
                    pkts.push(pkt(s, 0, 8000 + (k % 3), &[k as u8]));
                }
            }
            pkts
        };
        let run = |parallelism: usize| {
            let mut gs = system();
            gs.parallelism = parallelism;
            gs.add_program(program).unwrap();
            gs.run_capture(mk().into_iter(), &["perport"]).unwrap()
        };
        let rows = |out: &RunOutput| {
            let mut v: Vec<Vec<u64>> = out
                .stream("perport")
                .iter()
                .map(|t| (0..4).map(|i| t.get(i).as_uint().unwrap()).collect())
                .collect();
            v.sort();
            v
        };
        let base = run(1);
        let par = run(3);
        assert_eq!(rows(&base), rows(&par), "sharded run computes the same groups");
        // The reunifying merge keeps the flush column nondecreasing.
        let times: Vec<u64> =
            par.stream("perport").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "merge order preserved: {times:?}");
        // Per-partition stats registered under the shard names.
        assert!(
            par.stats.counters.iter().any(|r| r.node.starts_with("hfta:perport#1")),
            "shard instances report their own counters"
        );
    }

    #[test]
    fn composed_merge_of_two_interfaces() {
        // The paper's tcpdest example: per-interface selections composed
        // into an order-preserving merge.
        let mut gs = system();
        gs.add_program(
            "DEFINE { query_name tcpdest0; } \
             Select time, destPort From eth0.tcp Where destPort = 80; \
             DEFINE { query_name tcpdest1; } \
             Select time, destPort From eth1.tcp Where destPort = 80; \
             DEFINE { query_name tcpdest; } \
             Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1",
        )
        .unwrap();
        let pkts = vec![
            pkt(1, 0, 80, b"a"),
            pkt(2, 1, 80, b"b"),
            pkt(3, 0, 80, b"c"),
            pkt(4, 1, 80, b"d"),
            pkt(5, 0, 80, b"e"),
        ];
        let out = gs.run_capture(pkts.into_iter(), &["tcpdest"]).unwrap();
        let times: Vec<u64> =
            out.stream("tcpdest").iter().map(|t| t.get(0).as_uint().unwrap()).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5], "merge preserves time order");
    }

    /// Containment in the synchronous engine: an injected panic fails
    /// only the targeted query's chain; siblings and the run survive.
    #[test]
    fn injected_panic_quarantines_only_the_targeted_query() {
        let program = "DEFINE { query_name good; } \
             Select time, count(*) From eth0.tcp Group By time; \
             DEFINE { query_name bad; } \
             Select time, sum(len) From eth0.tcp Group By time";
        let mk = || (0..120u64).map(|i| pkt(i / 30, 0, 80, b"xy")).collect::<Vec<_>>();
        let run = |faults: Option<crate::FaultPlan>| {
            let mut gs = system();
            gs.add_program(program).unwrap();
            gs.faults = faults;
            gs.run_capture(mk().into_iter(), &["good", "bad"]).unwrap()
        };
        let clean = run(None);
        assert!(clean.stats.health.all_ok());
        let faulty = run(Some(crate::FaultPlan::new().panic_at("bad", 2)));
        assert!(faulty.stats.health.failed("bad"));
        assert!(!faulty.stats.health.failed("good"));
        assert_eq!(faulty.stream("good"), clean.stream("good"), "sibling is byte-identical");
        assert!(faulty.stream("bad").len() <= clean.stream("bad").len());
        assert_eq!(faulty.stats.counter("faults", "faults_contained"), Some(1));
        assert_eq!(clean.stats.counter("faults", "faults_contained"), None);
    }

    /// A dead partition shard fails only its own query; with the shard
    /// marked failed the reunifying merge is quarantined, not starved.
    #[test]
    fn shard_panic_fails_only_the_partitioned_query() {
        let program = "DEFINE { query_name raw; } \
             Select time, destPort, len From eth0.tcp; \
             DEFINE { query_name perport; } \
             Select time, destPort, count(*) From raw Group By time, destPort; \
             DEFINE { query_name persec; } \
             Select time, count(*) From raw Group By time";
        let mk = || {
            let mut pkts = Vec::new();
            for s in 1..=4u64 {
                for k in 0..6u16 {
                    pkts.push(pkt(s, 0, 8000 + (k % 3), &[k as u8]));
                }
            }
            pkts
        };
        let run = |faults: Option<crate::FaultPlan>| {
            let mut gs = system();
            gs.parallelism = 3;
            gs.add_program(program).unwrap();
            gs.faults = faults;
            gs.run_capture(mk().into_iter(), &["perport", "persec"]).unwrap()
        };
        let clean = run(None);
        let faulty = run(Some(crate::FaultPlan::new().panic_at("perport#1", 1)));
        assert!(faulty.stats.health.failed("perport"), "the shard's query fails");
        assert!(!faulty.stats.health.failed("persec"), "the sibling over the same input is fine");
        assert_eq!(faulty.stream("persec"), clean.stream("persec"));
        assert!(matches!(
            faulty.stats.health.of("perport"),
            crate::QueryHealth::Failed { reason: FaultReason::Panic(_) }
        ));
    }

    #[test]
    fn subscription_to_unknown_stream_fails() {
        let gs = system();
        let err = gs.run_capture(std::iter::empty(), &["ghost"]).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn lfta_streams_are_subscribable_with_mangled_names() {
        // "If the GSQL processor splits a query ... both streams are
        // available to the application, though the LFTA query will have a
        // mangled name." (§3)
        let mut gs = system();
        gs.add_program(
            "DEFINE { query_name counts; } \
             Select time, count(*) From eth0.tcp Group By time",
        )
        .unwrap();
        let pkts = vec![pkt(1, 0, 80, b"a"), pkt(2, 0, 80, b"b")];
        let out = gs.run_capture(pkts.into_iter(), &["counts__lfta0", "counts"]).unwrap();
        assert!(!out.stream("counts__lfta0").is_empty());
        assert!(!out.stream("counts").is_empty());
    }

    #[test]
    fn parameterized_query_reinstantiates() {
        let mut gs = system();
        gs.add_program(
            "DEFINE { query_name byport; } \
             Select time From eth0.tcp Where destPort = $port",
        )
        .unwrap();
        let mk = || vec![pkt(1, 0, 80, b"a"), pkt(2, 0, 443, b"b"), pkt(3, 0, 80, b"c")];

        gs.set_params("byport", ParamBindings::new().with("port", Value::UInt(80))).unwrap();
        let out = gs.run_capture(mk().into_iter(), &["byport"]).unwrap();
        assert_eq!(out.stream("byport").len(), 2);

        // Change the parameter on the fly and rerun.
        gs.set_params("byport", ParamBindings::new().with("port", Value::UInt(443))).unwrap();
        let out = gs.run_capture(mk().into_iter(), &["byport"]).unwrap();
        assert_eq!(out.stream("byport").len(), 1);

        // Missing binding is an instantiation error.
        gs.set_params("byport", ParamBindings::new()).unwrap();
        assert!(gs.run_capture(mk().into_iter(), &["byport"]).is_err());
    }
}
