//! Liveness supervision for the threaded manager.
//!
//! A wedged consumer — a subscription callback that never returns, an
//! operator deadlocked on a poisoned resource — leaves its ready-queue
//! with pending messages and a frozen dequeue counter. Back-pressure
//! then propagates the wedge upstream until the whole run hangs at
//! join time (the PR 3 `ThreadedOptions{stall}` scenario). The
//! [`Watchdog`] turns that hang into a contained failure: it polls
//! every queue's `(dequeued, pending)` progress signature, re-checks
//! suspects with exponential backoff, and after the configured number
//! of strikes force-closes the queue and records the owning query
//! `Failed{Stalled}` on the [`HealthBoard`].
//!
//! Force-closing ([`Channel::force_close`]) discards buffered work,
//! turns sends into no-ops, and reports end-of-stream to the consumer,
//! so producers unblock, the node chain drains normally, and the run's
//! joins complete — sibling queries never notice.

use crate::health::{FaultReason, HealthBoard};
use crate::transport::Channel;
use gs_runtime::stats::{Counter, StatSource};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Tuning for the supervisor thread on [`Gigascope`](crate::Gigascope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Base polling interval in milliseconds. A queue with pending work
    /// and no progress since the previous check earns a strike and is
    /// re-checked with exponential backoff (`poll_ms << strikes`).
    pub poll_ms: u64,
    /// Consecutive no-progress strikes before the queue is declared
    /// stalled and force-closed.
    pub rechecks: u32,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { poll_ms: 200, rechecks: 3 }
    }
}

/// Watchdog accounting, registered as the `watchdog` stats node (and
/// thus a `GS_STATS` row) whenever a watchdog is configured.
#[derive(Debug, Default)]
pub struct WatchdogStats {
    /// No-progress strikes observed across all queues.
    pub stalls_detected: Counter,
    /// Queues force-closed after exhausting their rechecks.
    pub forced_closes: Counter,
}

impl StatSource for WatchdogStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("stalls_detected", self.stalls_detected.get()),
            ("forced_closes", self.forced_closes.get()),
        ]
    }
}

/// One supervised queue: the stream whose consumer it feeds, the
/// channel to probe, and the strike ledger.
struct Target<T: Send> {
    stream: String,
    chan: Arc<Channel<T>>,
    last_dequeued: u64,
    strikes: u32,
    /// Poll tick (monotonic check counter) when this target is next due
    /// for inspection — the exponential backoff between rechecks.
    due_tick: u64,
    dead: bool,
}

/// The supervisor handle: spawn with [`Watchdog::spawn`], stop with
/// [`Watchdog::stop`] once the run's joins complete.
pub struct Watchdog {
    shutdown: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Start supervising `targets` (pairs of consumer stream name and
    /// queue). Stalls are recorded on `board` and counted on `stats`.
    pub fn spawn<T: Send + 'static>(
        cfg: WatchdogConfig,
        targets: Vec<(String, Arc<Channel<T>>)>,
        board: Arc<HealthBoard>,
        stats: Arc<WatchdogStats>,
    ) -> Watchdog {
        let shutdown = Arc::new((Mutex::new(false), Condvar::new()));
        let shut = shutdown.clone();
        let mut targets: Vec<Target<T>> = targets
            .into_iter()
            .map(|(stream, chan)| Target {
                stream,
                chan,
                last_dequeued: 0,
                strikes: 0,
                due_tick: 1,
                dead: false,
            })
            .collect();
        let poll = Duration::from_millis(cfg.poll_ms.max(1));
        let handle = std::thread::Builder::new()
            .name("gs-watchdog".into())
            .spawn(move || {
                let (flag, cv) = &*shut;
                let mut tick: u64 = 0;
                loop {
                    let mut stop = flag.lock().unwrap_or_else(PoisonError::into_inner);
                    while !*stop {
                        let (g, timed_out) = cv
                            .wait_timeout(stop, poll)
                            .unwrap_or_else(PoisonError::into_inner);
                        stop = g;
                        if timed_out.timed_out() {
                            break;
                        }
                    }
                    if *stop {
                        return;
                    }
                    drop(stop);
                    tick += 1;
                    for t in targets.iter_mut().filter(|t| !t.dead) {
                        if tick < t.due_tick {
                            continue;
                        }
                        let (dequeued, pending) = t.chan.progress();
                        if pending == 0 || dequeued != t.last_dequeued {
                            // Progressing (or idle): clear the ledger.
                            t.last_dequeued = dequeued;
                            t.strikes = 0;
                            t.due_tick = tick + 1;
                            continue;
                        }
                        t.strikes += 1;
                        stats.stalls_detected.inc();
                        if t.strikes >= cfg.rechecks {
                            t.chan.force_close();
                            stats.forced_closes.inc();
                            board.record(&t.stream, FaultReason::Stalled);
                            board.stats.faults_contained.inc();
                            t.dead = true;
                        } else {
                            // Exponential backoff before the re-check.
                            t.due_tick = tick + (1u64 << t.strikes.min(16));
                        }
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog { shutdown, handle: Some(handle) }
    }

    /// Stop the supervisor and join its thread.
    pub fn stop(mut self) {
        let (flag, cv) = &*self.shutdown;
        *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{channel, Admission};

    fn fast() -> WatchdogConfig {
        WatchdogConfig { poll_ms: 5, rechecks: 2 }
    }

    #[test]
    fn stalled_queue_is_force_closed_and_recorded() {
        let (tx, rx, chan) = channel(4, Admission::Block);
        tx.send(0, 1, 7u32); // pending work nobody ever consumes
        let board = Arc::new(HealthBoard::new());
        let stats = Arc::new(WatchdogStats::default());
        let dog = Watchdog::spawn(
            fast(),
            vec![("stuck#0".to_string(), chan)],
            board.clone(),
            stats.clone(),
        );
        // Strike at tick 1, backoff, strike 2 → force close. Wait for it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !board.report().failed("stuck") {
            assert!(std::time::Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        dog.stop();
        assert_eq!(
            board.report().of("stuck"),
            crate::health::QueryHealth::Failed { reason: FaultReason::Stalled }
        );
        assert!(stats.stalls_detected.get() >= 2);
        assert_eq!(stats.forced_closes.get(), 1);
        assert_eq!(rx.recv(), None, "consumer sees end-of-stream after force close");
    }

    #[test]
    fn progressing_queue_is_left_alone() {
        let (tx, rx, chan) = channel(4, Admission::Block);
        let board = Arc::new(HealthBoard::new());
        let stats = Arc::new(WatchdogStats::default());
        let dog = Watchdog::spawn(
            fast(),
            vec![("busy".to_string(), chan)],
            board.clone(),
            stats.clone(),
        );
        for i in 0..20 {
            tx.send(0, 1, i);
            assert_eq!(rx.recv(), Some(i));
            std::thread::sleep(Duration::from_millis(3));
        }
        dog.stop();
        assert!(board.report().all_ok());
        assert_eq!(stats.forced_closes.get(), 0);
    }

    #[test]
    fn stop_joins_promptly() {
        let board = Arc::new(HealthBoard::new());
        let stats = Arc::new(WatchdogStats::default());
        let dog = Watchdog::spawn(
            WatchdogConfig { poll_ms: 10_000, rechecks: 3 },
            Vec::<(String, Arc<crate::transport::Channel<u32>>)>::new(),
            board,
            stats,
        );
        let t0 = std::time::Instant::now();
        dog.stop(); // must not wait out the 10s poll
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
