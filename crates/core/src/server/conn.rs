//! Connection handling: the acceptor, the per-connection reader
//! (request handler) and writer threads, and disconnect teardown.
//!
//! Each connection gets two threads and one bounded outbound queue:
//!
//! ```text
//! client ──reads──▶ handler thread ──PendingOp──▶ engine (epoch boundary)
//!        ◀─writes── writer  thread ◀──frames──── outbound queue
//!                                                   ▲         ▲
//!                                        control replies   TUPLES fan-out taps
//! ```
//!
//! The handler never writes the socket itself — replies go through the
//! queue (as unsheddable control frames) so they serialize correctly
//! with in-flight TUPLES frames. Data frames are admitted under
//! tail-drop shedding: a client that stops reading loses its own
//! newest frames; the engine and sibling connections never block on
//! it. The queue is registered as a `daemon:conn:<id>` stats node for
//! the lifetime of the connection, so shed counts are observable and
//! teardown is verifiable (the churn test checks the node disappears).

use super::{lock, ConnState, PendingOp, Shared, SubEndpoint};
use crate::server::wire::{self, WireError};
use crate::transport::{channel, Admission, Sender};
use gs_runtime::qos::DropPolicy;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Accept connections until shutdown, then join every handler so the
/// daemon exits with zero live threads.
pub(crate) fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Some(h) = spawn_connection(stream, shared.clone()) {
            handlers.push(h);
        }
        // Reap finished handlers so a long churn of short connections
        // doesn't accumulate join handles.
        handlers.retain(|h| !h.is_finished());
    }
    drop(listener);
    for h in handlers {
        let _ = h.join();
    }
}

/// Wire up one accepted connection; returns the handler thread's join
/// handle (None if the daemon is already stopping or clones fail).
fn spawn_connection(stream: TcpStream, shared: Arc<Shared>) -> Option<thread::JoinHandle<()>> {
    let _ = stream.set_nodelay(true);
    let (writer_stream, registry_stream) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return None,
    };
    let (tx, rx, chan) =
        channel::<Vec<u8>>(shared.conn_queue_frames, Admission::Shed(DropPolicy::TailDrop));
    let id = {
        let mut ctl = lock(&shared.ctl);
        if ctl.stopped {
            return None;
        }
        let id = ctl.next_conn;
        ctl.next_conn += 1;
        ctl.conns.insert(id, ConnState { stream: registry_stream, chan: chan.clone() });
        id
    };
    shared.registry.register(format!("daemon:conn:{id}"), chan.clone());
    shared.stats.connections.inc();

    let writer = thread::Builder::new()
        .name(format!("gsqd-write-{id}"))
        .spawn(move || writer_loop(writer_stream, rx))
        .ok()?;
    thread::Builder::new()
        .name(format!("gsqd-conn-{id}"))
        .spawn(move || {
            handler_loop(stream, id, &tx, &shared);
            drop(tx);
            teardown(&shared, id);
            let _ = writer.join();
        })
        .ok()
}

/// Drain the outbound queue onto the socket until the queue closes or
/// the peer goes away.
fn writer_loop(mut stream: TcpStream, rx: crate::transport::Receiver<Vec<u8>>) {
    while let Some(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
}

/// Remove every trace of a connection: subscription endpoints, the
/// connection table entry, the `daemon:conn:<id>` stats node, and the
/// outbound queue (after a short grace so a final ERR reply can flush).
fn teardown(shared: &Arc<Shared>, id: u64) {
    let conn = {
        let mut ctl = lock(&shared.ctl);
        for eps in ctl.subs.values_mut() {
            eps.retain(|e| e.conn != id);
        }
        ctl.subs.retain(|_, eps| !eps.is_empty());
        ctl.conns.remove(&id)
    };
    shared.registry.unregister(&format!("daemon:conn:{id}"));
    if let Some(conn) = conn {
        // Drain grace BEFORE closing: a just-queued ERR reply must
        // reach the writer thread. No explicit socket shutdown here —
        // once the queue closes the writer exits, the last clone drops,
        // and the kernel flushes what was written before the FIN. (The
        // engine's daemon-shutdown teardown force-cuts sockets instead,
        // because there a stuck writer must be unblocked.)
        let deadline = Instant::now() + Duration::from_millis(100);
        while conn.chan.progress().1 > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        conn.chan.force_close();
        drop(conn.stream);
    }
}

/// Queue a control reply frame (never shed, FIFO with data frames).
fn reply(tx: &Sender<Vec<u8>>, opcode: u8, payload: &[u8]) {
    tx.send_control(wire::encode_frame(opcode, payload));
}

/// Read and dispatch request frames until disconnect, framing damage,
/// or daemon shutdown.
fn handler_loop(mut stream: TcpStream, id: u64, tx: &Sender<Vec<u8>>, shared: &Arc<Shared>) {
    loop {
        match wire::read_frame(&mut stream, wire::MAX_REQUEST) {
            // Disconnect — clean close or mid-frame cut; either way the
            // conversation is over.
            Err(WireError::Io(_)) => return,
            // Framing damage (oversized declared length, zero length,
            // garbage that desynchronized the stream): report and close
            // this one connection. Siblings are untouched.
            Err(e) => {
                reply(tx, wire::ERR, e.to_string().as_bytes());
                return;
            }
            Ok((op, payload)) => {
                if !handle(op, &payload, id, tx, shared) {
                    return;
                }
            }
        }
    }
}

/// Submit an operation for the next epoch boundary and wait for the
/// engine's verdict.
fn submit(
    shared: &Arc<Shared>,
    make: impl FnOnce(mpsc::Sender<Result<String, String>>) -> PendingOp,
) -> Result<String, String> {
    let (reply_tx, reply_rx) = mpsc::channel();
    {
        let mut ctl = lock(&shared.ctl);
        if ctl.stopped || shared.shutdown.load(Ordering::SeqCst) {
            return Err("daemon shutting down".to_string());
        }
        ctl.pending.push(make(reply_tx));
    }
    // The engine replies at the next boundary or drains with an error
    // at shutdown; the timeout is a backstop against an engine that
    // died without either.
    match reply_rx.recv_timeout(Duration::from_secs(30)) {
        Ok(verdict) => verdict,
        Err(_) => Err("engine did not respond".to_string()),
    }
}

/// Dispatch one well-framed request. Returns whether the connection
/// should continue.
fn handle(op: u8, payload: &[u8], id: u64, tx: &Sender<Vec<u8>>, shared: &Arc<Shared>) -> bool {
    match op {
        wire::REGISTER => {
            let Ok(gsql) = std::str::from_utf8(payload) else {
                reply(tx, wire::ERR, b"program is not UTF-8");
                return true;
            };
            let gsql = gsql.to_string();
            match submit(shared, |r| PendingOp::Register { gsql, reply: r }) {
                Ok(names) => reply(tx, wire::OK, names.as_bytes()),
                Err(e) => reply(tx, wire::ERR, e.as_bytes()),
            }
        }
        wire::UNREGISTER => {
            let Ok(name) = std::str::from_utf8(payload) else {
                reply(tx, wire::ERR, b"name is not UTF-8");
                return true;
            };
            let name = name.to_string();
            match submit(shared, |r| PendingOp::Unregister { name, reply: r }) {
                Ok(name) => reply(tx, wire::OK, name.as_bytes()),
                Err(e) => reply(tx, wire::ERR, e.as_bytes()),
            }
        }
        wire::SUBSCRIBE => {
            let Ok(name) = std::str::from_utf8(payload) else {
                reply(tx, wire::ERR, b"name is not UTF-8");
                return true;
            };
            let mut ctl = lock(&shared.ctl);
            if ctl.stopped {
                drop(ctl);
                reply(tx, wire::ERR, b"daemon shutting down");
                return true;
            }
            let eps = ctl.subs.entry(name.to_string()).or_default();
            if !eps.iter().any(|e| e.conn == id) {
                eps.push(SubEndpoint { conn: id, sender: tx.clone() });
            }
            drop(ctl);
            // Frames begin at the next epoch boundary, so every epoch a
            // subscriber observes is complete.
            reply(tx, wire::OK, format!("subscribed {name}; frames begin next epoch").as_bytes());
        }
        wire::UNSUBSCRIBE => {
            let Ok(name) = std::str::from_utf8(payload) else {
                reply(tx, wire::ERR, b"name is not UTF-8");
                return true;
            };
            let mut ctl = lock(&shared.ctl);
            if let Some(eps) = ctl.subs.get_mut(name) {
                eps.retain(|e| e.conn != id);
                if eps.is_empty() {
                    ctl.subs.remove(name);
                }
            }
            drop(ctl);
            reply(tx, wire::OK, format!("unsubscribed {name}").as_bytes());
        }
        wire::HEALTH => {
            let rows = lock(&shared.ctl).snapshot.health.clone();
            reply(tx, wire::HEALTH_RPT, &wire::encode_health(&rows));
        }
        wire::STATS => {
            // Daemon-lifetime nodes first, then the last epoch's engine
            // counters.
            let mut rows = shared.registry.snapshot();
            rows.extend(lock(&shared.ctl).snapshot.counters.iter().cloned());
            reply(tx, wire::STATS_RPT, &wire::encode_stats(&rows));
        }
        wire::PING => reply(tx, wire::PONG, b""),
        wire::WAIT_EPOCH => {
            let mut r = wire::Reader::new(payload);
            let n = match r.u64().and_then(|n| r.finish().map(|_| n)) {
                Ok(n) => n,
                Err(e) => {
                    reply(tx, wire::ERR, e.to_string().as_bytes());
                    return true;
                }
            };
            let deadline = Instant::now() + Duration::from_secs(60);
            let mut ctl = lock(&shared.ctl);
            loop {
                if ctl.snapshot.epochs_done >= n {
                    let done = ctl.snapshot.epochs_done;
                    drop(ctl);
                    reply(tx, wire::OK, done.to_string().as_bytes());
                    break;
                }
                if ctl.stopped || shared.shutdown.load(Ordering::SeqCst) {
                    drop(ctl);
                    reply(tx, wire::ERR, b"daemon shutting down");
                    break;
                }
                if Instant::now() >= deadline {
                    drop(ctl);
                    reply(tx, wire::ERR, b"wait_epoch timed out");
                    break;
                }
                ctl = shared
                    .epoch_cv
                    .wait_timeout(ctl, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        }
        wire::SHUTDOWN => {
            reply(tx, wire::OK, b"shutting down");
            shared.request_shutdown();
        }
        other => reply(tx, wire::ERR, format!("unknown opcode 0x{other:02x}").as_bytes()),
    }
    true
}
