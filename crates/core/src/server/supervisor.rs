//! The daemon's lifecycle supervisor: the missing half of fault
//! isolation.
//!
//! The one-shot engine quarantines a faulted query for the remainder of
//! the run (its siblings keep their outputs) but never brings it back.
//! The daemon runs forever, so the supervisor closes the loop: after
//! every epoch it reads the run's [`RunHealth`], charges *root-cause*
//! failures against the query's restart budget, parks the query in
//! exponential backoff (excluded from the next epochs' builds), and —
//! because every epoch rebuilds the graph from the catalog — the query
//! is automatically reprovisioned the first epoch after its backoff
//! expires. A query that keeps failing past its budget goes `Dead` and
//! stays excluded until a client UNREGISTERs and re-REGISTERs it.
//!
//! Collateral failures (`Upstream` faults whose origin is a *different*
//! query) are not charged: the downstream query did nothing wrong and
//! is rebuilt for free next epoch.
//!
//! Restart counts surface in GS_STATS under a `daemon:restart:<query>`
//! node so the paper's "Gigascope monitors itself" loop covers the
//! supervisor too.

use crate::health::{query_of, FaultReason, RunHealth};
use crate::server::wire::{HealthRow, LifeState};
use gs_runtime::stats::{Counter, StatSource, StatsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-query restart counters, registered as `daemon:restart:<query>`.
#[derive(Debug, Default)]
pub struct RestartStats {
    /// Automatic reprovisions performed (one per charged failure that
    /// stayed within budget).
    pub restarts: Counter,
    /// 1 once the query exceeded its budget and went `Dead`.
    pub dead: Counter,
}

impl StatSource for RestartStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("restarts", self.restarts.get()), ("dead", self.dead.get())]
    }
}

/// Lifecycle state of one tracked query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QState {
    /// Included in every epoch's build.
    Running,
    /// Quarantined until the given epoch id starts.
    Backoff { until: u64 },
    /// Restart budget exhausted; excluded until re-registered.
    Dead,
}

struct Entry {
    state: QState,
    restarts: u64,
    reason: String,
    stats: Arc<RestartStats>,
}

/// Tracks every registered query's lifecycle across epochs.
pub struct Supervisor {
    entries: HashMap<String, Entry>,
    /// Maximum automatic restarts per query; the failure after the
    /// budget's last restart makes the query `Dead`.
    budget: u64,
    /// Backoff after the n-th charged failure is
    /// `backoff_base << (n-1)` epochs (capped), so a flapping query
    /// consumes geometrically less of the daemon's attention.
    backoff_base: u64,
    registry: Arc<StatsRegistry>,
}

impl Supervisor {
    /// Supervisor with the given restart budget and base backoff
    /// (in epochs), publishing restart counters into `registry`.
    pub fn new(budget: u64, backoff_base: u64, registry: Arc<StatsRegistry>) -> Supervisor {
        Supervisor { entries: HashMap::new(), budget, backoff_base, registry }
    }

    /// Start tracking a freshly registered query (idempotent).
    pub fn track(&mut self, query: &str) {
        if self.entries.contains_key(query) {
            return;
        }
        let stats = Arc::new(RestartStats::default());
        self.registry.register(format!("daemon:restart:{query}"), stats.clone());
        self.entries.insert(
            query.to_string(),
            Entry { state: QState::Running, restarts: 0, reason: String::new(), stats },
        );
    }

    /// Stop tracking an unregistered query and drop its stats node.
    pub fn untrack(&mut self, query: &str) {
        if self.entries.remove(query).is_some() {
            self.registry.unregister(&format!("daemon:restart:{query}"));
        }
    }

    /// Queries to leave out of the build for epoch `epoch`, waking any
    /// whose backoff has expired first. Sorted for determinism.
    pub fn excluded(&mut self, epoch: u64) -> Vec<String> {
        let mut out = Vec::new();
        for (name, e) in self.entries.iter_mut() {
            if let QState::Backoff { until } = e.state {
                if epoch >= until {
                    e.state = QState::Running;
                }
            }
            if e.state != QState::Running {
                out.push(name.clone());
            }
        }
        out.sort();
        out
    }

    /// Digest one completed epoch's health report. Root-cause failures
    /// (a panic, a stall, or an upstream fault originating inside the
    /// same query) charge the budget; collateral upstream failures are
    /// reprovisioned for free.
    pub fn observe(&mut self, epoch: u64, health: &RunHealth) {
        for (query, reason) in health.failures() {
            let charged = match reason {
                FaultReason::Panic(_) | FaultReason::Stalled => true,
                FaultReason::Upstream(origin) => query_of(origin) == query,
            };
            let Some(e) = self.entries.get_mut(query) else { continue };
            if e.state == QState::Dead {
                continue;
            }
            e.reason = match reason {
                FaultReason::Panic(msg) => format!("panic: {msg}"),
                FaultReason::Stalled => "stalled".to_string(),
                FaultReason::Upstream(origin) => format!("upstream: {origin}"),
            };
            if !charged {
                continue;
            }
            if e.restarts >= self.budget {
                e.state = QState::Dead;
                e.stats.dead.set(1);
            } else {
                e.restarts += 1;
                e.stats.restarts.set(e.restarts);
                let shift = (e.restarts - 1).min(16) as u32;
                e.state = QState::Backoff { until: epoch + 1 + (self.backoff_base << shift) };
            }
        }
    }

    /// Queries whose restart budget is exhausted (`Dead`), sorted. The
    /// carry layer reaps their checkpoints: a Dead query never runs
    /// again until re-registered, and a re-registration is a fresh life
    /// that must start from empty windows.
    pub fn dead(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == QState::Dead)
            .map(|(name, _)| name.clone())
            .collect();
        out.sort();
        out
    }

    /// Wire-format health rows, sorted by query name.
    pub fn rows(&self) -> Vec<HealthRow> {
        let mut rows: Vec<HealthRow> = self
            .entries
            .iter()
            .map(|(name, e)| HealthRow {
                query: name.clone(),
                state: match e.state {
                    QState::Running => LifeState::Running,
                    QState::Backoff { .. } => LifeState::Backoff,
                    QState::Dead => LifeState::Dead,
                },
                restarts: e.restarts,
                reason: e.reason.clone(),
            })
            .collect();
        rows.sort_by(|a, b| a.query.cmp(&b.query));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(failures: &[(&str, FaultReason)]) -> RunHealth {
        RunHealth::from_failures(failures.iter().map(|(q, r)| (q.to_string(), r.clone())))
    }

    #[test]
    fn panic_charges_budget_and_backs_off_exponentially() {
        let reg = Arc::new(StatsRegistry::new());
        let mut sup = Supervisor::new(3, 2, reg.clone());
        sup.track("q");
        assert!(sup.excluded(0).is_empty());

        sup.observe(0, &health(&[("q", FaultReason::Panic("boom".into()))]));
        // Backoff of 2 epochs starting after epoch 0: excluded for 1, 2.
        assert_eq!(sup.excluded(1), vec!["q"]);
        assert_eq!(sup.excluded(2), vec!["q"]);
        assert!(sup.excluded(3).is_empty(), "backoff expired, reprovisioned");
        assert_eq!(reg.value("daemon:restart:q", "restarts"), Some(1));

        sup.observe(3, &health(&[("q", FaultReason::Panic("boom".into()))]));
        // Second failure doubles the backoff: excluded for 4..=7.
        assert_eq!(sup.excluded(7), vec!["q"]);
        assert!(sup.excluded(8).is_empty());
        assert_eq!(sup.rows()[0].restarts, 2);
    }

    #[test]
    fn budget_exhaustion_goes_dead_and_stays_dead() {
        let reg = Arc::new(StatsRegistry::new());
        let mut sup = Supervisor::new(1, 1, reg.clone());
        sup.track("q");
        sup.observe(0, &health(&[("q", FaultReason::Panic("1".into()))]));
        assert!(sup.excluded(100).is_empty(), "one restart within budget");
        sup.observe(100, &health(&[("q", FaultReason::Panic("2".into()))]));
        assert_eq!(sup.excluded(1_000_000), vec!["q"], "dead is forever");
        assert_eq!(sup.rows()[0].state, LifeState::Dead);
        assert_eq!(reg.value("daemon:restart:q", "dead"), Some(1));
        // Re-registration after UNREGISTER starts a fresh life.
        sup.untrack("q");
        assert_eq!(reg.value("daemon:restart:q", "restarts"), None, "stats node removed");
        sup.track("q");
        assert!(sup.excluded(0).is_empty());
        assert_eq!(sup.rows()[0].restarts, 0);
    }

    #[test]
    fn collateral_upstream_failures_are_free() {
        let reg = Arc::new(StatsRegistry::new());
        let mut sup = Supervisor::new(1, 1, reg.clone());
        sup.track("down");
        sup.track("up");
        sup.observe(
            0,
            &health(&[
                ("up", FaultReason::Panic("boom".into())),
                ("down", FaultReason::Upstream("up#2".into())),
            ]),
        );
        assert_eq!(sup.excluded(1), vec!["up"], "only the root cause sits out");
        let rows = sup.rows();
        assert_eq!(rows[0].restarts, 0, "collateral failure not charged");
        assert!(rows[0].reason.starts_with("upstream:"), "but the reason is visible");
        // A query whose *own* shard faulted is a root cause.
        sup.observe(5, &health(&[("down", FaultReason::Upstream("down__lfta0".into()))]));
        assert_eq!(sup.rows()[0].restarts, 1);
    }
}
