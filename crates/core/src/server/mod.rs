//! `gsqd`: the always-on query daemon.
//!
//! The paper positions Gigascope as an operational system that runs
//! continuously at the monitoring point; `gsq` is a one-shot runner.
//! This module closes the gap with a long-running daemon that remote
//! clients reconfigure at runtime over a std-only, length-prefixed
//! binary protocol ([`wire`]): REGISTER/UNREGISTER GSQL programs,
//! SUBSCRIBE to named output streams, poll HEALTH and GS_STATS, and
//! shut the daemon down — all over a plain [`std::net::TcpStream`].
//!
//! # Epochs
//!
//! The threaded manager builds its node graph once per run, so instead
//! of mutating a live graph the daemon runs back-to-back **epochs**:
//! each epoch is one complete [`run_threaded_opts`] over that epoch's
//! packets ([`PacketSource::epoch_packets`]). Registrations,
//! removals, subscription changes, and lifecycle decisions all apply
//! at epoch boundaries, which makes the daemon's behavior exactly
//! reproducible: the frames a subscriber receives for epoch `k` equal
//! the one-shot engine's output over the same packets — the invariant
//! the protocol test battery checks.
//!
//! Result frames fan out from the manager's subscription drains (a
//! [`SubscriptionTap`] per subscribed stream) onto per-connection
//! outbound queues; a zero-row TUPLES frame after the run is the
//! end-of-epoch marker. Data frames ride a shed-on-overflow queue so a
//! slow client loses its own newest frames instead of wedging the
//! engine; control replies and epoch markers are never shed.
//!
//! The [`supervisor`] watches each epoch's [`RunHealth`] and
//! reprovisions quarantined queries with bounded, exponentially
//! backed-off restarts — see that module for the lifecycle state
//! machine.

pub mod client;
mod conn;
pub mod supervisor;
pub mod wire;

use crate::health::{query_of, RunHealth};
use crate::manager::{run_threaded_opts, SubscriptionTap, ThreadedOptions};
use crate::{Error, Gigascope};
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::durable::{DiskIo, DurableStats, DurableStore, FaultyDisk, RealDisk, Recovery};
use gs_runtime::faults::{DiskFaultPlan, FaultPlan};
use gs_runtime::punct::HeartbeatMode;
use gs_runtime::stats::{Counter, StatRow, StatSource, StatsRegistry};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;
use supervisor::Supervisor;

/// Where each epoch's packets come from.
#[derive(Debug, Clone)]
pub enum PacketSource {
    /// Deterministic synthetic traffic: epoch `k` replays the standard
    /// mix generator with seed `seed + k`, so any epoch's packets can
    /// be regenerated independently (the equivalence tests do).
    Synthetic {
        /// Total offered load in Mbit/s (HTTP mix up to 60, the rest
        /// background).
        mbps: f64,
        /// Simulated capture duration per epoch, in milliseconds.
        epoch_ms: u64,
        /// Base seed; epoch `k` uses `seed.wrapping_add(k)`.
        seed: u64,
    },
    /// Replay the same fixed trace every epoch.
    Replay(Vec<CapPacket>),
    /// Pre-sliced chunks of one continuous trace: epoch `k` replays
    /// chunk `k`; epochs past the last chunk are empty. Unlike
    /// [`PacketSource::Replay`]/[`PacketSource::Synthetic`], virtual
    /// time advances monotonically across epochs — the shape carried
    /// operator state ([`DaemonConfig::carry_state`]) requires, since a
    /// restored watermark must never sit ahead of the next epoch's
    /// clock.
    Chunked(Vec<Vec<CapPacket>>),
}

impl PacketSource {
    /// The packets of epoch `epoch`, regenerable by anyone holding the
    /// same source description.
    pub fn epoch_packets(&self, epoch: u64) -> Vec<CapPacket> {
        match self {
            PacketSource::Synthetic { mbps, epoch_ms, seed } => PacketMix::new(MixConfig {
                seed: seed.wrapping_add(epoch),
                duration_ms: *epoch_ms,
                http_rate_mbps: mbps.min(60.0),
                background_rate_mbps: (mbps - 60.0).max(0.0),
                ..MixConfig::default()
            })
            .collect(),
            PacketSource::Replay(packets) => packets.clone(),
            PacketSource::Chunked(chunks) => {
                chunks.get(epoch as usize).cloned().unwrap_or_default()
            }
        }
    }

    /// One continuous synthetic trace of `epochs * epoch_ms` virtual
    /// milliseconds, sliced into per-epoch chunks on window boundaries
    /// (chunk `k` covers `[k*epoch_ms, (k+1)*epoch_ms)`). The
    /// concatenation of every epoch's packets is exactly the continuous
    /// trace — the reference the carry-mode equivalence tests compare
    /// against.
    pub fn chunked_synthetic(mbps: f64, epoch_ms: u64, epochs: u64, seed: u64) -> PacketSource {
        let all: Vec<CapPacket> = PacketMix::new(MixConfig {
            seed,
            duration_ms: epoch_ms.max(1) * epochs.max(1),
            http_rate_mbps: mbps.min(60.0),
            background_rate_mbps: (mbps - 60.0).max(0.0),
            ..MixConfig::default()
        })
        .collect();
        let n = epochs.max(1) as usize;
        let mut chunks: Vec<Vec<CapPacket>> = (0..n).map(|_| Vec::new()).collect();
        for p in all {
            let k = ((p.ts_ns / 1_000_000) / epoch_ms.max(1)) as usize;
            chunks[k.min(n - 1)].push(p);
        }
        PacketSource::Chunked(chunks)
    }
}

/// Daemon-level counters, registered as the `daemon` stats node.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Epochs completed since startup.
    pub epochs: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Successful REGISTER operations.
    pub registers: Counter,
    /// Successful UNREGISTER operations.
    pub unregisters: Counter,
    /// Epochs whose engine build/run failed outright (not per-query
    /// quarantines — those are health rows).
    pub run_errors: Counter,
}

impl StatSource for DaemonStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("epochs", self.epochs.get()),
            ("connections", self.connections.get()),
            ("registers", self.registers.get()),
            ("unregisters", self.unregisters.get()),
            ("run_errors", self.run_errors.get()),
        ]
    }
}

/// Everything a `gsqd` instance needs to start.
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks a free loopback port).
    pub listen: String,
    /// Per-epoch packet supply.
    pub source: PacketSource,
    /// Interfaces to register (`eth0=0:ether` when empty).
    pub ifaces: Vec<(String, u16, LinkType)>,
    /// LFTA heartbeat policy for every epoch's run.
    pub heartbeat: HeartbeatMode,
    /// Engine batch size.
    pub batch_size: usize,
    /// HFTA parallelism degree.
    pub parallelism: usize,
    /// GSQL program to register before the first epoch.
    pub initial_program: Option<String>,
    /// Automatic restarts allowed per query before it goes `Dead`.
    pub restart_budget: u64,
    /// Backoff after a query's first charged failure, in epochs
    /// (doubles per failure).
    pub backoff_base: u64,
    /// Fault campaign applied during [`fault_epochs`](Self::fault_epochs)
    /// (tests and demos; `None` in production).
    pub faults: Option<FaultPlan>,
    /// Epoch ids during which [`faults`](Self::faults) is armed.
    pub fault_epochs: Range<u64>,
    /// Idle pacing between epochs, in milliseconds (tests use 0).
    pub epoch_gap_ms: u64,
    /// Carry operator state across epochs: every epoch runs in capture
    /// mode (open windows snapshot instead of flushing), the next epoch
    /// restores the cut, a reprovisioned query resumes from its last
    /// good checkpoint and replays the epochs it missed, and shutdown
    /// runs a final flush epoch that emits the held tails. Off by
    /// default: the per-epoch equivalence invariant (epoch `k`'s frames
    /// equal the one-shot engine over epoch `k`'s packets) only holds
    /// without carry. Use with a time-continuous source
    /// ([`PacketSource::Chunked`]) — per-epoch clocks that restart at
    /// zero would trip restored watermarks.
    pub carry_state: bool,
    /// Per-connection outbound queue capacity, in frames; overflow
    /// sheds that connection's newest data frames.
    pub conn_queue_frames: usize,
    /// Durable checkpoint directory. When set (requires
    /// [`carry_state`](Self::carry_state)), every epoch boundary's cut
    /// is persisted crash-consistently and a restarted daemon pointed
    /// at the same directory resumes mid-window instead of replaying
    /// from empty state.
    pub state_dir: Option<PathBuf>,
    /// Checkpoints the durable store's GC retains (older segments are
    /// pruned at checkpoint boundaries). Clamped to at least 1.
    pub retain_checkpoints: usize,
    /// Disk-fault campaign applied to the durable store's IO (tests and
    /// demos; `None` in production).
    pub disk_faults: Option<DiskFaultPlan>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            source: PacketSource::Synthetic { mbps: 100.0, epoch_ms: 100, seed: 0 },
            ifaces: Vec::new(),
            heartbeat: HeartbeatMode::Periodic { interval: 1 },
            batch_size: 256,
            parallelism: 1,
            initial_program: None,
            restart_budget: 3,
            backoff_base: 1,
            faults: None,
            fault_epochs: 0..0,
            epoch_gap_ms: 0,
            carry_state: false,
            conn_queue_frames: 1024,
            state_dir: None,
            retain_checkpoints: 3,
            disk_faults: None,
        }
    }
}

/// Poison-tolerant lock (the daemon outlives any panicking holder).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An operation a connection handler queued for the engine to apply at
/// the next epoch boundary. The engine always replies (or drains with
/// an error at shutdown), so handlers can block on the channel.
pub(crate) enum PendingOp {
    /// REGISTER a GSQL program; reply carries the deployed query names.
    Register {
        /// Program text.
        gsql: String,
        /// Reply channel: `Ok(info)` or `Err(message)`.
        reply: mpsc::Sender<Result<String, String>>,
    },
    /// UNREGISTER one query by name.
    Unregister {
        /// Query name.
        name: String,
        /// Reply channel.
        reply: mpsc::Sender<Result<String, String>>,
    },
}

/// One connection's interest in one stream.
pub(crate) struct SubEndpoint {
    /// Owning connection id.
    pub conn: u64,
    /// That connection's outbound frame queue.
    pub sender: crate::transport::Sender<Vec<u8>>,
}

/// Per-connection server-side state the engine and teardown paths need.
pub(crate) struct ConnState {
    /// Socket clone used to force-close the connection at shutdown.
    pub stream: TcpStream,
    /// Outbound queue shared with the connection's writer thread.
    pub chan: Arc<crate::transport::Channel<Vec<u8>>>,
}

/// Snapshot the handlers serve without touching the engine.
#[derive(Default)]
pub(crate) struct Snapshot {
    /// Number of completed epochs (epoch ids `0..epochs_done`).
    pub epochs_done: u64,
    /// Lifecycle rows as of the last boundary.
    pub health: Vec<wire::HealthRow>,
    /// The last completed epoch's engine counters.
    pub counters: Vec<StatRow>,
}

/// Mutable daemon state shared between the engine loop, the acceptor,
/// and every connection handler. One mutex; all critical sections are
/// short (the engine runs epochs outside it).
pub(crate) struct Control {
    /// Operations awaiting the next epoch boundary.
    pub pending: Vec<PendingOp>,
    /// Stream name → subscribed endpoints.
    pub subs: HashMap<String, Vec<SubEndpoint>>,
    /// Live connections by id.
    pub conns: HashMap<u64, ConnState>,
    /// Read-mostly state for HEALTH/STATS/WAIT_EPOCH.
    pub snapshot: Snapshot,
    /// Set once the engine has exited; further ops are refused.
    pub stopped: bool,
    /// Next connection id.
    pub next_conn: u64,
}

pub(crate) struct Shared {
    pub ctl: Mutex<Control>,
    /// Signaled at every epoch completion and at shutdown.
    pub epoch_cv: Condvar,
    pub shutdown: AtomicBool,
    /// Crash-simulation shutdown ([`DaemonHandle::halt`]): exit without
    /// the carry-mode flush epoch or the durable clean-shutdown record,
    /// as a SIGKILL would.
    pub abandon: AtomicBool,
    /// Daemon-lifetime stats registry: `daemon`, `daemon:restart:<q>`,
    /// and `daemon:conn:<id>` nodes.
    pub registry: Arc<StatsRegistry>,
    pub stats: Arc<DaemonStats>,
    /// Our own bound address (the shutdown path pokes it to unblock
    /// `accept`).
    pub addr: SocketAddr,
    /// Per-connection outbound queue capacity.
    pub conn_queue_frames: usize,
}

impl Shared {
    /// Wake everything that might be blocked on daemon progress.
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.epoch_cv.notify_all();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping the handle shuts it down and joins its
/// threads.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine: Option<thread::JoinHandle<()>>,
    accept: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address (useful with `listen = "…:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon-lifetime stats registry (`daemon`,
    /// `daemon:restart:<q>`, `daemon:conn:<id>` nodes) — the churn
    /// tests compare its row set against a baseline.
    pub fn registry(&self) -> Arc<StatsRegistry> {
        self.shared.registry.clone()
    }

    /// Block until the daemon stops on its own (a client's SHUTDOWN
    /// frame) — the `gsqd` binary's main loop.
    pub fn wait(&mut self) {
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop the daemon: finish the current epoch, close every
    /// connection, join the engine and acceptor threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop the daemon *as a crash would*: no carry-mode flush epoch,
    /// no durable clean-shutdown record — the in-process equivalent of
    /// `kill -9` for the recovery tests. The durable state directory is
    /// left exactly as the last boundary published it.
    pub fn halt(&mut self) {
        self.shared.abandon.store(true, Ordering::SeqCst);
        self.shutdown();
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a daemon from `config`: bind, register the initial program
/// (if any), spawn the engine loop and the acceptor.
pub fn start(config: DaemonConfig) -> Result<DaemonHandle, Error> {
    let mut gs = Gigascope::new();
    gs.heartbeat = config.heartbeat;
    gs.batch_size = config.batch_size;
    gs.parallelism = config.parallelism;
    if config.ifaces.is_empty() {
        gs.add_interface("eth0", 0, LinkType::Ethernet);
    }
    for (name, id, link) in &config.ifaces {
        gs.add_interface(name, *id, *link);
    }

    let registry = Arc::new(StatsRegistry::new());
    let stats = Arc::new(DaemonStats::default());
    registry.register("daemon", stats.clone());
    let mut supervisor = Supervisor::new(config.restart_budget, config.backoff_base, registry.clone());

    if let Some(program) = &config.initial_program {
        for info in gs.add_program(program)? {
            supervisor.track(&info.name);
        }
        stats.registers.inc();
    }

    // Durable checkpoint store: open the state directory and run
    // recovery before the first epoch, so the engine starts from the
    // last crash-consistent cut instead of from empty state.
    let mut durable: Option<DurableStore> = None;
    let mut recovery = Recovery::default();
    if let Some(dir) = &config.state_dir {
        if !config.carry_state {
            return Err(Error::Config(
                "state_dir requires carry_state (a durable cut is a carried cut)".to_string(),
            ));
        }
        let io: Arc<dyn DiskIo> = match &config.disk_faults {
            Some(plan) => Arc::new(FaultyDisk::new(plan.clone())),
            None => Arc::new(RealDisk),
        };
        let dstats = Arc::new(DurableStats::default());
        let (store, rec) =
            DurableStore::open(dir.clone(), io, config.retain_checkpoints, dstats.clone())
                .map_err(|e| Error::Config(format!("state dir {}: {e}", dir.display())))?;
        registry.register("durable", dstats);
        for note in &rec.notes {
            eprintln!("gsqd: recovery: {note}");
        }
        if rec.recovered {
            eprintln!(
                "gsqd: recovered durable state: resuming at epoch {} ({} carried nodes, {} durable markers)",
                rec.next_epoch,
                rec.carry.len(),
                rec.markers.len()
            );
        }
        durable = Some(store);
        recovery = rec;
    }

    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| Error::Config(format!("bind {}: {e}", config.listen)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| Error::Config(format!("local_addr: {e}")))?;

    let shared = Arc::new(Shared {
        ctl: Mutex::new(Control {
            pending: Vec::new(),
            subs: HashMap::new(),
            conns: HashMap::new(),
            snapshot: Snapshot { health: supervisor.rows(), ..Snapshot::default() },
            stopped: false,
            next_conn: 0,
        }),
        epoch_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        abandon: AtomicBool::new(false),
        registry,
        stats,
        addr,
        conn_queue_frames: config.conn_queue_frames.max(8),
    });

    let engine = {
        let shared = shared.clone();
        let source = config.source.clone();
        let faults = config.faults.clone();
        let fault_epochs = config.fault_epochs.clone();
        let gap = config.epoch_gap_ms;
        let carry = config.carry_state;
        thread::Builder::new()
            .name("gsqd-engine".to_string())
            .spawn(move || {
                engine_loop(
                    gs, supervisor, source, faults, fault_epochs, gap, carry, durable, recovery,
                    shared,
                )
            })
            .map_err(|e| Error::Config(format!("spawn engine: {e}")))?
    };
    let accept = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("gsqd-accept".to_string())
            .spawn(move || conn::accept_loop(listener, shared))
            .map_err(|e| Error::Config(format!("spawn acceptor: {e}")))?
    };

    Ok(DaemonHandle { addr, shared, engine: Some(engine), accept: Some(accept) })
}

/// Apply one queued operation at an epoch boundary. The reply is sent
/// over the handler's channel; a dropped handler (disconnected client)
/// makes the send a no-op, which is correct — the operation still
/// applied.
/// Apply one queued operation; returns the reply to deliver *after*
/// the boundary's snapshot update (so a client that saw OK observes
/// its effect in the very next HEALTH poll).
fn apply_op(
    op: PendingOp,
    gs: &mut Gigascope,
    sup: &mut Supervisor,
    stats: &DaemonStats,
) -> (mpsc::Sender<Result<String, String>>, Result<String, String>) {
    match op {
        PendingOp::Register { gsql, reply } => {
            let result = match gs.add_program(&gsql) {
                Ok(infos) => {
                    for info in &infos {
                        sup.track(&info.name);
                    }
                    stats.registers.inc();
                    let names: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
                    Ok(names.join(","))
                }
                Err(e) => Err(e.to_string()),
            };
            (reply, result)
        }
        PendingOp::Unregister { name, reply } => {
            let result = match gs.remove_program(&name) {
                Ok(()) => {
                    sup.untrack(&name);
                    stats.unregisters.inc();
                    Ok(name)
                }
                Err(e) => Err(e.to_string()),
            };
            (reply, result)
        }
    }
}

/// Marker fan-out: `(stream, that stream's subscriber queues)`.
type MarkerFanout = Vec<(String, Vec<crate::transport::Sender<Vec<u8>>>)>;

/// Build the subscription fan-out for one run over `ctl.subs`: live
/// taps (data frames tagged `epoch`) for every subscribed deployed
/// stream in `tap_set`, and end-of-run marker senders for every
/// subscribed deployed stream in `marker_set`. Sorted for a
/// deterministic build order regardless of HashMap iteration.
fn build_fanout(
    ctl: &Control,
    gs: &Gigascope,
    tap_set: &[String],
    marker_set: &[String],
    epoch: u64,
) -> (Vec<(String, SubscriptionTap)>, Vec<String>, MarkerFanout) {
    let mut sub_names: Vec<String> = Vec::new();
    let mut taps: Vec<(String, SubscriptionTap)> = Vec::new();
    let mut markers: MarkerFanout = Vec::new();
    for (stream, eps) in ctl.subs.iter() {
        if eps.is_empty() || !gs.queries().iter().any(|d| &d.name == stream) {
            continue;
        }
        let senders: Vec<_> = eps.iter().map(|e| e.sender.clone()).collect();
        if marker_set.iter().any(|s| s == stream) {
            markers.push((stream.clone(), senders.clone()));
        }
        if !tap_set.iter().any(|s| s == stream) {
            continue;
        }
        sub_names.push(stream.clone());
        let name = stream.clone();
        taps.push((
            stream.clone(),
            Arc::new(move |batch: &[crate::Tuple]| {
                if batch.is_empty() {
                    return;
                }
                let frame =
                    wire::encode_frame(wire::TUPLES, &wire::encode_tuples(&name, epoch, batch));
                for s in &senders {
                    s.send(1, batch.len() as u64, frame.clone());
                }
            }) as SubscriptionTap,
        ));
    }
    sub_names.sort();
    markers.sort_by(|a, b| a.0.cmp(&b.0));
    (taps, sub_names, markers)
}

/// Send the end-of-epoch marker (a zero-row TUPLES frame tagged
/// `epoch`) to every fan-out entry `skip` doesn't veto. Markers are
/// control frames: losing one would make the client miscount epochs
/// forever.
fn send_markers(markers: &MarkerFanout, epoch: u64, skip: impl Fn(&str) -> bool) {
    for (stream, senders) in markers {
        if skip(stream) {
            continue;
        }
        let frame = wire::encode_frame(wire::TUPLES, &wire::encode_tuples(stream, epoch, &[]));
        for s in senders {
            s.send_control(frame.clone());
        }
    }
}

/// The query owning a manager snapshot key (`hfta:<stream>` /
/// `lfta:<stream>`, shard/LFTA mangling included).
fn snapshot_owner(key: &str) -> &str {
    query_of(key.split_once(':').map_or(key, |(_, s)| s))
}

/// Fold one capture run's sealed snapshots into the carried checkpoint,
/// skipping every entry owned by a query the run quarantined: its cut
/// is incomplete (the faulted node wrote nothing), and restoring the
/// surviving fragments would be silently wrong. The failed query keeps
/// its previous checkpoint and replays the epoch from there.
fn merge_snapshots(
    carry: &mut HashMap<String, Vec<u8>>,
    snaps: HashMap<String, Vec<u8>>,
    health: &RunHealth,
) {
    for (k, v) in snaps {
        if !health.failed(snapshot_owner(&k)) {
            carry.insert(k, v);
        }
    }
}

/// The dead-letter note the durable layer surfaces through HEALTH:
/// `(last failure message, failures so far)`.
type DurableNote = Option<(String, u64)>;

/// Append the durable layer's dead-letter note (if any) to a health
/// report as a synthetic advisory row, so `gsq --health` surfaces a
/// failing state disk without any query being marked unhealthy.
fn with_durable_note(mut rows: Vec<wire::HealthRow>, note: &DurableNote) -> Vec<wire::HealthRow> {
    if let Some((msg, fails)) = note {
        rows.push(wire::HealthRow {
            query: "durable:store".to_string(),
            state: wire::LifeState::Running,
            restarts: *fails,
            reason: msg.clone(),
        });
    }
    rows
}

/// Persist one epoch boundary: publish the cut crash-consistently, then
/// commit the emitted `(stream, epoch)` markers to the durable log —
/// in that order, and both *before* the caller sends the marker frames,
/// so a durable marker always has a covering segment (the exactly-once
/// invariant). A write that still fails after the store's bounded
/// retries is dead-lettered: noted for HEALTH, counted in
/// `durable:write_failed`, and the daemon keeps running on its
/// in-memory cut.
fn durable_commit(
    durable: &mut Option<DurableStore>,
    next_epoch: u64,
    carry: &HashMap<String, Vec<u8>>,
    cursors: &HashMap<String, u64>,
    emitted_epoch: u64,
    streams: &[String],
    note: &mut DurableNote,
) {
    let Some(store) = durable.as_mut() else { return };
    let fails = note.as_ref().map_or(0, |(_, n)| *n);
    let result = store.checkpoint(next_epoch, carry, cursors, streams).and_then(|()| {
        store.log_markers(emitted_epoch, streams).inspect_err(|_| {
            // The segment landed but the marker record didn't; count it
            // with the write failures so the counter reflects every
            // dead-lettered durable write.
            store.stats().write_failed.inc();
        })
    });
    if let Err(e) = result {
        let msg = format!(
            "checkpoint dead-lettered at epoch boundary {next_epoch}: {e}; running on in-memory cut"
        );
        eprintln!("gsqd: durable: {msg}");
        *note = Some((msg, fails + 1));
    }
}

/// The transitive upstream closure of `parts` among deployed queries:
/// every query whose output stream a member (transitively) reads
/// through a `StreamScan`. A catch-up replay must run these as support
/// queries — without its producers a laggard would replay over empty
/// inputs and checkpoint silently wrong state.
fn upstream_closure(gs: &Gigascope, parts: &[String]) -> Vec<String> {
    let mut need: Vec<String> = parts.to_vec();
    let mut i = 0;
    while i < need.len() {
        let q = need[i].clone();
        i += 1;
        let Some(dq) = gs.queries().iter().find(|d| d.name == q) else { continue };
        let Some(h) = &dq.hfta else { continue };
        for s in h.upstream_streams() {
            let owner = query_of(&s).to_string();
            if owner != q
                && gs.queries().iter().any(|d| d.name == owner)
                && !need.contains(&owner)
            {
                need.push(owner);
            }
        }
    }
    need
}

/// Carry-mode catch-up replay: any runnable query whose replay cursor
/// sits behind the current epoch re-processes the epochs it missed
/// (backoff epochs, faulted epochs) from its last good checkpoint,
/// oldest epoch first, with fault injection disarmed — a replay is a
/// retry. Missed tuples and markers reach subscribers tagged with the
/// epoch they belong to, before the current epoch runs, so each
/// stream's frame sequence stays in epoch order. Packets are
/// regenerable from the source by construction.
///
/// Upstream producers of a laggard run as *support* queries: included
/// in the replay so the laggard's inputs are real, but untapped (their
/// subscribers already saw this epoch), uncheckpointed (their cursor
/// already advanced), and started from empty state. A stateless
/// upstream (the common LFTA projection/selection) reproduces its
/// epoch output exactly; a stateful upstream makes the replay
/// approximate — the price of losing its mid-epoch history.
#[allow(clippy::too_many_arguments)]
fn catch_up(
    gs: &mut Gigascope,
    supervisor: &mut Supervisor,
    source: &PacketSource,
    carry: &mut HashMap<String, Vec<u8>>,
    behind: &mut HashMap<String, u64>,
    epoch: u64,
    excluded: &[String],
    durable: &mut Option<DurableStore>,
    durable_note: &mut DurableNote,
    shared: &Arc<Shared>,
) {
    // Queries that fault *during* replay sit the rest of this catch-up
    // out (their cursor holds; the supervisor's backoff governs the
    // next attempt), so every iteration either advances a cursor or
    // shrinks the runnable set — the loop terminates.
    let mut benched: Vec<String> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let runnable: Vec<String> = gs
            .queries()
            .iter()
            .map(|d| d.name.clone())
            .filter(|q| !excluded.contains(q) && !benched.contains(q))
            .collect();
        let Some(e) = runnable
            .iter()
            .filter_map(|q| behind.get(q).copied())
            .filter(|b| *b < epoch)
            .min()
        else {
            break;
        };
        let parts: Vec<String> =
            runnable.iter().filter(|q| behind.get(*q) == Some(&e)).cloned().collect();
        let included = upstream_closure(gs, &parts);
        let (taps, sub_names, markers) = {
            let ctl = lock(&shared.ctl);
            build_fanout(&ctl, gs, &parts, &parts, e)
        };
        // Restore only the laggards' own checkpoints: a support query
        // must not restore its *current* (post-epoch-`e`) state into a
        // replay of epoch `e`.
        let restore: HashMap<String, Vec<u8>> = carry
            .iter()
            .filter(|(k, _)| parts.iter().any(|q| q == snapshot_owner(k)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let opts = ThreadedOptions {
            taps,
            exclude: gs
                .queries()
                .iter()
                .map(|d| d.name.clone())
                .filter(|q| !included.contains(q))
                .collect(),
            capture: true,
            restore: (!restore.is_empty()).then(|| Arc::new(restore)),
            ..ThreadedOptions::default()
        };
        gs.faults = None;
        let sub_refs: Vec<&str> = sub_names.iter().map(String::as_str).collect();
        let packets = source.epoch_packets(e);
        match run_threaded_opts(gs, packets.into_iter(), &sub_refs, opts) {
            Ok(out) => {
                supervisor.observe(epoch, &out.health);
                let mut replayed: Vec<String> = Vec::new();
                for q in &parts {
                    if out.health.failed(q) {
                        benched.push(q.clone());
                    } else {
                        behind.insert(q.clone(), e + 1);
                        replayed.push(q.clone());
                    }
                }
                let own: HashMap<String, Vec<u8>> = out
                    .snapshots
                    .into_iter()
                    .filter(|(k, _)| parts.iter().any(|q| q == snapshot_owner(k)))
                    .collect();
                merge_snapshots(carry, own, &out.health);
                // The replay advanced cursors and is about to emit
                // epoch `e`'s missed frames: publish the cut and commit
                // the markers before any frame leaves the process. The
                // engine counter to resume at is still `epoch` — the
                // current boundary's epoch has not run yet.
                durable_commit(durable, epoch, carry, behind, e, &replayed, durable_note);
                send_markers(&markers, e, |s| out.health.failed(s));
            }
            Err(_) => {
                shared.stats.run_errors.inc();
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_loop(
    mut gs: Gigascope,
    mut supervisor: Supervisor,
    source: PacketSource,
    faults: Option<FaultPlan>,
    fault_epochs: Range<u64>,
    epoch_gap_ms: u64,
    carry_state: bool,
    mut durable: Option<DurableStore>,
    recovery: Recovery,
    shared: Arc<Shared>,
) {
    // Durable recovery seeds the engine state: resume at the recovered
    // boundary with the restored cut and cursors instead of epoch 0
    // from empty state.
    let mut epoch: u64 = recovery.next_epoch;
    // Carry mode: the last good sealed snapshot of every node (the
    // daemon's checkpoint), and each query's replay cursor — the next
    // epoch id whose packets it has not yet processed.
    let mut carry: HashMap<String, Vec<u8>> = recovery.carry;
    let mut behind: HashMap<String, u64> = recovery.cursors;
    let mut durable_note: DurableNote = recovery
        .notes
        .first()
        .map(|n| (format!("recovery: {n}"), 0));
    // A recovered daemon pauses one epoch gap before its first
    // boundary, so subscribers racing the restart can reattach before
    // the resumed epoch's frames flow.
    if recovery.recovered && epoch > 0 && epoch_gap_ms > 0 {
        let mut slept = 0;
        while slept < epoch_gap_ms && !shared.shutdown.load(Ordering::SeqCst) {
            let step = (epoch_gap_ms - slept).min(10);
            thread::sleep(Duration::from_millis(step));
            slept += step;
        }
    }
    while !shared.shutdown.load(Ordering::SeqCst) {
        // ---- Epoch boundary: apply ops, wake backoffs, clone taps ----
        let (mut opts, sub_names, markers, running) = {
            let mut ctl = lock(&shared.ctl);
            let mut removed: Vec<String> = Vec::new();
            let replies: Vec<_> = ctl
                .pending
                .drain(..)
                .map(|op| {
                    if let PendingOp::Unregister { name, .. } = &op {
                        removed.push(name.clone());
                    }
                    apply_op(op, &mut gs, &mut supervisor, &shared.stats)
                })
                .collect();
            let excluded = supervisor.excluded(epoch);
            ctl.snapshot.health = with_durable_note(supervisor.rows(), &durable_note);
            for (reply, result) in replies {
                let _ = reply.send(result);
            }
            // Reap checkpoints that can never be restored again:
            // unregistered queries (a re-REGISTER is a fresh life that
            // must start from empty windows) and Dead ones (excluded
            // until re-registered). Without this, lifecycle churn would
            // leak dead queries' carried state forever.
            for q in removed.iter().chain(supervisor.dead().iter()) {
                carry.retain(|k, _| snapshot_owner(k) != q);
                behind.remove(q);
            }
            let running: Vec<String> = gs
                .queries()
                .iter()
                .map(|d| d.name.clone())
                .filter(|q| !excluded.contains(q))
                .collect();
            // Marker policy: without carry, every subscribed deployed
            // stream gets a marker, excluded or not (a backoff epoch is
            // an *empty* epoch, not a missing one). With carry, a
            // stream's marker is sent only when its epoch actually ran
            // — catch-up replay delivers the missed ones later, in
            // epoch order, so subscribers still see exactly one marker
            // per (stream, epoch).
            let marker_set: Vec<String> = if carry_state {
                running.clone()
            } else {
                gs.queries().iter().map(|d| d.name.clone()).collect()
            };
            let (taps, sub_names, markers) = build_fanout(&ctl, &gs, &running, &marker_set, epoch);
            (
                ThreadedOptions { taps, exclude: excluded, ..ThreadedOptions::default() },
                sub_names,
                markers,
                running,
            )
        };
        if carry_state {
            for dq in gs.queries() {
                behind.entry(dq.name.clone()).or_insert(epoch);
            }
            // Replay whatever the runnable queries missed, THEN set up
            // the current epoch to restore the (now caught-up) cut.
            catch_up(
                &mut gs,
                &mut supervisor,
                &source,
                &mut carry,
                &mut behind,
                epoch,
                &opts.exclude,
                &mut durable,
                &mut durable_note,
                &shared,
            );
            opts.capture = true;
            if !carry.is_empty() {
                opts.restore = Some(Arc::new(carry.clone()));
            }
        }

        // ---- Run the epoch (engine holds no locks) -------------------
        let active_queries =
            gs.queries().iter().filter(|d| !opts.exclude.iter().any(|e| e == &d.name)).count();
        let mut epoch_health = RunHealth::default();
        let ran = if active_queries > 0 {
            gs.faults = match (&faults, fault_epochs.contains(&epoch)) {
                (Some(plan), true) => Some(plan.clone()),
                _ => None,
            };
            let packets = source.epoch_packets(epoch);
            let sub_refs: Vec<&str> = sub_names.iter().map(String::as_str).collect();
            match run_threaded_opts(&gs, packets.into_iter(), &sub_refs, opts) {
                Ok(out) => {
                    supervisor.observe(epoch, &out.health);
                    if carry_state {
                        let mut completed: Vec<String> = Vec::new();
                        for q in &running {
                            if !out.health.failed(q) {
                                behind.insert(q.clone(), epoch + 1);
                                completed.push(q.clone());
                            }
                        }
                        merge_snapshots(&mut carry, out.snapshots, &out.health);
                        // Publish this boundary's cut and commit the
                        // epoch's markers durably before the close
                        // block sends the marker frames.
                        durable_commit(
                            &mut durable,
                            epoch + 1,
                            &carry,
                            &behind,
                            epoch,
                            &completed,
                            &mut durable_note,
                        );
                    }
                    let mut ctl = lock(&shared.ctl);
                    ctl.snapshot.counters = out.counters;
                    drop(ctl);
                    epoch_health = out.health;
                    true
                }
                Err(_) => {
                    shared.stats.run_errors.inc();
                    false
                }
            }
        } else {
            true // an empty epoch completes trivially
        };

        // ---- Close the epoch: markers, snapshot, wake waiters --------
        {
            let mut ctl = lock(&shared.ctl);
            if active_queries == 0 {
                // Counters describe "the last completed epoch"; an
                // empty catalog has none (the churn test's baseline).
                ctl.snapshot.counters.clear();
            }
            // With carry, a failed (or errored) epoch sends no marker
            // for the affected stream — its replay will, keeping the
            // subscriber's epoch sequence gapless and in order.
            send_markers(&markers, epoch, |s| carry_state && (!ran || epoch_health.failed(s)));
            ctl.snapshot.health = with_durable_note(supervisor.rows(), &durable_note);
            ctl.snapshot.epochs_done = epoch + 1;
            shared.stats.epochs.set(epoch + 1);
            shared.epoch_cv.notify_all();
        }
        epoch += 1;

        // ---- Pace ----------------------------------------------------
        let gap = if active_queries == 0 || !ran {
            // Idle (or failing) daemon: don't spin the boundary hot.
            epoch_gap_ms.max(1)
        } else {
            epoch_gap_ms
        };
        if gap == 0 {
            // Zero-gap pacing must still hand the core back between
            // epochs: without this the boundary hot-loops and starves
            // sibling threads (the `--epoch-gap 0` busy-spin bug).
            thread::yield_now();
        } else {
            let mut slept = 0;
            while slept < gap && !shared.shutdown.load(Ordering::SeqCst) {
                let step = (gap - slept).min(10);
                thread::sleep(Duration::from_millis(step));
                slept += step;
            }
        }
    }

    // ---- Carry-mode shutdown flush -----------------------------------
    // Capture mode held every open window in the checkpoint instead of
    // flushing it; one final flush run (no packets, restore, capture
    // OFF) emits those tails so the session's total output equals one
    // continuous run over every epoch's packets. Only fully caught-up
    // queries flush — a query still in backoff holds a stale cut whose
    // tail would be wrong mid-stream.
    // An abandoned engine ([`DaemonHandle::halt`]) dies like a SIGKILL:
    // no flush epoch, no clean-shutdown record — the state directory is
    // left exactly as the last boundary published it, for recovery to
    // resume from.
    let abandoned = shared.abandon.load(Ordering::SeqCst);
    let had_carry = carry_state && !carry.is_empty();
    let mut flushed = false;
    if had_carry && !abandoned {
        let excluded = supervisor.excluded(epoch);
        let flush: Vec<String> = gs
            .queries()
            .iter()
            .map(|d| d.name.clone())
            .filter(|q| !excluded.contains(q) && behind.get(q).is_none_or(|b| *b >= epoch))
            .collect();
        if !flush.is_empty() {
            let (taps, sub_names, markers) = {
                let ctl = lock(&shared.ctl);
                build_fanout(&ctl, &gs, &flush, &flush, epoch)
            };
            let opts = ThreadedOptions {
                taps,
                exclude: gs
                    .queries()
                    .iter()
                    .map(|d| d.name.clone())
                    .filter(|q| !flush.contains(q))
                    .collect(),
                capture: false,
                restore: Some(Arc::new(std::mem::take(&mut carry))),
                ..ThreadedOptions::default()
            };
            gs.faults = None;
            let sub_refs: Vec<&str> = sub_names.iter().map(String::as_str).collect();
            if let Ok(out) = run_threaded_opts(&gs, std::iter::empty(), &sub_refs, opts) {
                // The flush emitted every held tail: record the clean
                // shutdown (which retires all segments and markers)
                // before the final marker frames go out.
                if let Some(store) = durable.as_mut() {
                    if let Err(e) = store.log_shutdown(epoch + 1) {
                        eprintln!("gsqd: durable: shutdown record failed: {e}");
                    }
                }
                flushed = true;
                send_markers(&markers, epoch, |s| out.health.failed(s));
                let mut ctl = lock(&shared.ctl);
                ctl.snapshot.epochs_done = epoch + 1;
                shared.stats.epochs.set(epoch + 1);
                shared.epoch_cv.notify_all();
            }
        }
    }
    // A clean exit that never held carried state still records the
    // shutdown, so the next start knows nothing was lost (and keeps the
    // epoch numbering monotone across sessions). If there *was* carried
    // state and the flush didn't complete, no record is written —
    // recovery must resume and flush it later.
    if !abandoned && !flushed && !had_carry {
        if let Some(store) = durable.as_mut() {
            if let Err(e) = store.log_shutdown(epoch) {
                eprintln!("gsqd: durable: shutdown record failed: {e}");
            }
        }
    }

    // ---- Teardown: refuse stragglers, close every connection ---------
    let mut ctl = lock(&shared.ctl);
    ctl.stopped = true;
    for op in ctl.pending.drain(..) {
        let reply = match op {
            PendingOp::Register { reply, .. } => reply,
            PendingOp::Unregister { reply, .. } => reply,
        };
        let _ = reply.send(Err("daemon shutting down".to_string()));
    }
    // Give writers a short grace to flush already-queued replies (a
    // final "OK shutting down" should reach its client) before cutting
    // the sockets.
    let deadline = std::time::Instant::now() + Duration::from_millis(200);
    while ctl.conns.values().any(|c| c.chan.progress().1 > 0)
        && std::time::Instant::now() < deadline
    {
        drop(ctl);
        thread::sleep(Duration::from_millis(2));
        ctl = lock(&shared.ctl);
    }
    for conn in ctl.conns.values() {
        let _ = conn.stream.shutdown(Shutdown::Both);
        conn.chan.force_close();
    }
    shared.epoch_cv.notify_all();
}
