//! `gsqd`: the always-on query daemon.
//!
//! The paper positions Gigascope as an operational system that runs
//! continuously at the monitoring point; `gsq` is a one-shot runner.
//! This module closes the gap with a long-running daemon that remote
//! clients reconfigure at runtime over a std-only, length-prefixed
//! binary protocol ([`wire`]): REGISTER/UNREGISTER GSQL programs,
//! SUBSCRIBE to named output streams, poll HEALTH and GS_STATS, and
//! shut the daemon down — all over a plain [`std::net::TcpStream`].
//!
//! # Epochs
//!
//! The threaded manager builds its node graph once per run, so instead
//! of mutating a live graph the daemon runs back-to-back **epochs**:
//! each epoch is one complete [`run_threaded_opts`] over that epoch's
//! packets ([`PacketSource::epoch_packets`]). Registrations,
//! removals, subscription changes, and lifecycle decisions all apply
//! at epoch boundaries, which makes the daemon's behavior exactly
//! reproducible: the frames a subscriber receives for epoch `k` equal
//! the one-shot engine's output over the same packets — the invariant
//! the protocol test battery checks.
//!
//! Result frames fan out from the manager's subscription drains (a
//! [`SubscriptionTap`] per subscribed stream) onto per-connection
//! outbound queues; a zero-row TUPLES frame after the run is the
//! end-of-epoch marker. Data frames ride a shed-on-overflow queue so a
//! slow client loses its own newest frames instead of wedging the
//! engine; control replies and epoch markers are never shed.
//!
//! The [`supervisor`] watches each epoch's [`RunHealth`] and
//! reprovisions quarantined queries with bounded, exponentially
//! backed-off restarts — see that module for the lifecycle state
//! machine.

pub mod client;
mod conn;
pub mod supervisor;
pub mod wire;

use crate::manager::{run_threaded_opts, SubscriptionTap, ThreadedOptions};
use crate::{Error, Gigascope};
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::faults::FaultPlan;
use gs_runtime::punct::HeartbeatMode;
use gs_runtime::stats::{Counter, StatRow, StatSource, StatsRegistry};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;
use supervisor::Supervisor;

/// Where each epoch's packets come from.
#[derive(Debug, Clone)]
pub enum PacketSource {
    /// Deterministic synthetic traffic: epoch `k` replays the standard
    /// mix generator with seed `seed + k`, so any epoch's packets can
    /// be regenerated independently (the equivalence tests do).
    Synthetic {
        /// Total offered load in Mbit/s (HTTP mix up to 60, the rest
        /// background).
        mbps: f64,
        /// Simulated capture duration per epoch, in milliseconds.
        epoch_ms: u64,
        /// Base seed; epoch `k` uses `seed.wrapping_add(k)`.
        seed: u64,
    },
    /// Replay the same fixed trace every epoch.
    Replay(Vec<CapPacket>),
}

impl PacketSource {
    /// The packets of epoch `epoch`, regenerable by anyone holding the
    /// same source description.
    pub fn epoch_packets(&self, epoch: u64) -> Vec<CapPacket> {
        match self {
            PacketSource::Synthetic { mbps, epoch_ms, seed } => PacketMix::new(MixConfig {
                seed: seed.wrapping_add(epoch),
                duration_ms: *epoch_ms,
                http_rate_mbps: mbps.min(60.0),
                background_rate_mbps: (mbps - 60.0).max(0.0),
                ..MixConfig::default()
            })
            .collect(),
            PacketSource::Replay(packets) => packets.clone(),
        }
    }
}

/// Daemon-level counters, registered as the `daemon` stats node.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Epochs completed since startup.
    pub epochs: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Successful REGISTER operations.
    pub registers: Counter,
    /// Successful UNREGISTER operations.
    pub unregisters: Counter,
    /// Epochs whose engine build/run failed outright (not per-query
    /// quarantines — those are health rows).
    pub run_errors: Counter,
}

impl StatSource for DaemonStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("epochs", self.epochs.get()),
            ("connections", self.connections.get()),
            ("registers", self.registers.get()),
            ("unregisters", self.unregisters.get()),
            ("run_errors", self.run_errors.get()),
        ]
    }
}

/// Everything a `gsqd` instance needs to start.
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks a free loopback port).
    pub listen: String,
    /// Per-epoch packet supply.
    pub source: PacketSource,
    /// Interfaces to register (`eth0=0:ether` when empty).
    pub ifaces: Vec<(String, u16, LinkType)>,
    /// LFTA heartbeat policy for every epoch's run.
    pub heartbeat: HeartbeatMode,
    /// Engine batch size.
    pub batch_size: usize,
    /// HFTA parallelism degree.
    pub parallelism: usize,
    /// GSQL program to register before the first epoch.
    pub initial_program: Option<String>,
    /// Automatic restarts allowed per query before it goes `Dead`.
    pub restart_budget: u64,
    /// Backoff after a query's first charged failure, in epochs
    /// (doubles per failure).
    pub backoff_base: u64,
    /// Fault campaign applied during [`fault_epochs`](Self::fault_epochs)
    /// (tests and demos; `None` in production).
    pub faults: Option<FaultPlan>,
    /// Epoch ids during which [`faults`](Self::faults) is armed.
    pub fault_epochs: Range<u64>,
    /// Idle pacing between epochs, in milliseconds (tests use 0).
    pub epoch_gap_ms: u64,
    /// Per-connection outbound queue capacity, in frames; overflow
    /// sheds that connection's newest data frames.
    pub conn_queue_frames: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            listen: "127.0.0.1:0".to_string(),
            source: PacketSource::Synthetic { mbps: 100.0, epoch_ms: 100, seed: 0 },
            ifaces: Vec::new(),
            heartbeat: HeartbeatMode::Periodic { interval: 1 },
            batch_size: 256,
            parallelism: 1,
            initial_program: None,
            restart_budget: 3,
            backoff_base: 1,
            faults: None,
            fault_epochs: 0..0,
            epoch_gap_ms: 0,
            conn_queue_frames: 1024,
        }
    }
}

/// Poison-tolerant lock (the daemon outlives any panicking holder).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An operation a connection handler queued for the engine to apply at
/// the next epoch boundary. The engine always replies (or drains with
/// an error at shutdown), so handlers can block on the channel.
pub(crate) enum PendingOp {
    /// REGISTER a GSQL program; reply carries the deployed query names.
    Register {
        /// Program text.
        gsql: String,
        /// Reply channel: `Ok(info)` or `Err(message)`.
        reply: mpsc::Sender<Result<String, String>>,
    },
    /// UNREGISTER one query by name.
    Unregister {
        /// Query name.
        name: String,
        /// Reply channel.
        reply: mpsc::Sender<Result<String, String>>,
    },
}

/// One connection's interest in one stream.
pub(crate) struct SubEndpoint {
    /// Owning connection id.
    pub conn: u64,
    /// That connection's outbound frame queue.
    pub sender: crate::transport::Sender<Vec<u8>>,
}

/// Per-connection server-side state the engine and teardown paths need.
pub(crate) struct ConnState {
    /// Socket clone used to force-close the connection at shutdown.
    pub stream: TcpStream,
    /// Outbound queue shared with the connection's writer thread.
    pub chan: Arc<crate::transport::Channel<Vec<u8>>>,
}

/// Snapshot the handlers serve without touching the engine.
#[derive(Default)]
pub(crate) struct Snapshot {
    /// Number of completed epochs (epoch ids `0..epochs_done`).
    pub epochs_done: u64,
    /// Lifecycle rows as of the last boundary.
    pub health: Vec<wire::HealthRow>,
    /// The last completed epoch's engine counters.
    pub counters: Vec<StatRow>,
}

/// Mutable daemon state shared between the engine loop, the acceptor,
/// and every connection handler. One mutex; all critical sections are
/// short (the engine runs epochs outside it).
pub(crate) struct Control {
    /// Operations awaiting the next epoch boundary.
    pub pending: Vec<PendingOp>,
    /// Stream name → subscribed endpoints.
    pub subs: HashMap<String, Vec<SubEndpoint>>,
    /// Live connections by id.
    pub conns: HashMap<u64, ConnState>,
    /// Read-mostly state for HEALTH/STATS/WAIT_EPOCH.
    pub snapshot: Snapshot,
    /// Set once the engine has exited; further ops are refused.
    pub stopped: bool,
    /// Next connection id.
    pub next_conn: u64,
}

pub(crate) struct Shared {
    pub ctl: Mutex<Control>,
    /// Signaled at every epoch completion and at shutdown.
    pub epoch_cv: Condvar,
    pub shutdown: AtomicBool,
    /// Daemon-lifetime stats registry: `daemon`, `daemon:restart:<q>`,
    /// and `daemon:conn:<id>` nodes.
    pub registry: Arc<StatsRegistry>,
    pub stats: Arc<DaemonStats>,
    /// Our own bound address (the shutdown path pokes it to unblock
    /// `accept`).
    pub addr: SocketAddr,
    /// Per-connection outbound queue capacity.
    pub conn_queue_frames: usize,
}

impl Shared {
    /// Wake everything that might be blocked on daemon progress.
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.epoch_cv.notify_all();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping the handle shuts it down and joins its
/// threads.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine: Option<thread::JoinHandle<()>>,
    accept: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address (useful with `listen = "…:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon-lifetime stats registry (`daemon`,
    /// `daemon:restart:<q>`, `daemon:conn:<id>` nodes) — the churn
    /// tests compare its row set against a baseline.
    pub fn registry(&self) -> Arc<StatsRegistry> {
        self.shared.registry.clone()
    }

    /// Block until the daemon stops on its own (a client's SHUTDOWN
    /// frame) — the `gsqd` binary's main loop.
    pub fn wait(&mut self) {
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop the daemon: finish the current epoch, close every
    /// connection, join the engine and acceptor threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a daemon from `config`: bind, register the initial program
/// (if any), spawn the engine loop and the acceptor.
pub fn start(config: DaemonConfig) -> Result<DaemonHandle, Error> {
    let mut gs = Gigascope::new();
    gs.heartbeat = config.heartbeat;
    gs.batch_size = config.batch_size;
    gs.parallelism = config.parallelism;
    if config.ifaces.is_empty() {
        gs.add_interface("eth0", 0, LinkType::Ethernet);
    }
    for (name, id, link) in &config.ifaces {
        gs.add_interface(name, *id, *link);
    }

    let registry = Arc::new(StatsRegistry::new());
    let stats = Arc::new(DaemonStats::default());
    registry.register("daemon", stats.clone());
    let mut supervisor = Supervisor::new(config.restart_budget, config.backoff_base, registry.clone());

    if let Some(program) = &config.initial_program {
        for info in gs.add_program(program)? {
            supervisor.track(&info.name);
        }
        stats.registers.inc();
    }

    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| Error::Config(format!("bind {}: {e}", config.listen)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| Error::Config(format!("local_addr: {e}")))?;

    let shared = Arc::new(Shared {
        ctl: Mutex::new(Control {
            pending: Vec::new(),
            subs: HashMap::new(),
            conns: HashMap::new(),
            snapshot: Snapshot { health: supervisor.rows(), ..Snapshot::default() },
            stopped: false,
            next_conn: 0,
        }),
        epoch_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        registry,
        stats,
        addr,
        conn_queue_frames: config.conn_queue_frames.max(8),
    });

    let engine = {
        let shared = shared.clone();
        let source = config.source.clone();
        let faults = config.faults.clone();
        let fault_epochs = config.fault_epochs.clone();
        let gap = config.epoch_gap_ms;
        thread::Builder::new()
            .name("gsqd-engine".to_string())
            .spawn(move || engine_loop(gs, supervisor, source, faults, fault_epochs, gap, shared))
            .map_err(|e| Error::Config(format!("spawn engine: {e}")))?
    };
    let accept = {
        let shared = shared.clone();
        thread::Builder::new()
            .name("gsqd-accept".to_string())
            .spawn(move || conn::accept_loop(listener, shared))
            .map_err(|e| Error::Config(format!("spawn acceptor: {e}")))?
    };

    Ok(DaemonHandle { addr, shared, engine: Some(engine), accept: Some(accept) })
}

/// Apply one queued operation at an epoch boundary. The reply is sent
/// over the handler's channel; a dropped handler (disconnected client)
/// makes the send a no-op, which is correct — the operation still
/// applied.
/// Apply one queued operation; returns the reply to deliver *after*
/// the boundary's snapshot update (so a client that saw OK observes
/// its effect in the very next HEALTH poll).
fn apply_op(
    op: PendingOp,
    gs: &mut Gigascope,
    sup: &mut Supervisor,
    stats: &DaemonStats,
) -> (mpsc::Sender<Result<String, String>>, Result<String, String>) {
    match op {
        PendingOp::Register { gsql, reply } => {
            let result = match gs.add_program(&gsql) {
                Ok(infos) => {
                    for info in &infos {
                        sup.track(&info.name);
                    }
                    stats.registers.inc();
                    let names: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
                    Ok(names.join(","))
                }
                Err(e) => Err(e.to_string()),
            };
            (reply, result)
        }
        PendingOp::Unregister { name, reply } => {
            let result = match gs.remove_program(&name) {
                Ok(()) => {
                    sup.untrack(&name);
                    stats.unregisters.inc();
                    Ok(name)
                }
                Err(e) => Err(e.to_string()),
            };
            (reply, result)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_loop(
    mut gs: Gigascope,
    mut supervisor: Supervisor,
    source: PacketSource,
    faults: Option<FaultPlan>,
    fault_epochs: Range<u64>,
    epoch_gap_ms: u64,
    shared: Arc<Shared>,
) {
    let mut epoch: u64 = 0;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // ---- Epoch boundary: apply ops, wake backoffs, clone taps ----
        let (opts, sub_names, markers) = {
            let mut ctl = lock(&shared.ctl);
            let replies: Vec<_> = ctl
                .pending
                .drain(..)
                .map(|op| apply_op(op, &mut gs, &mut supervisor, &shared.stats))
                .collect();
            let excluded = supervisor.excluded(epoch);
            ctl.snapshot.health = supervisor.rows();
            for (reply, result) in replies {
                let _ = reply.send(result);
            }

            let mut sub_names: Vec<String> = Vec::new();
            let mut taps: Vec<(String, SubscriptionTap)> = Vec::new();
            // Streams owed an end-of-epoch marker: every subscribed
            // stream that names a deployed query, excluded or not (a
            // backoff epoch is an *empty* epoch, not a missing one).
            let mut markers: Vec<(String, Vec<crate::transport::Sender<Vec<u8>>>)> = Vec::new();
            for (stream, eps) in ctl.subs.iter() {
                if eps.is_empty() || !gs.queries().iter().any(|d| &d.name == stream) {
                    continue;
                }
                let senders: Vec<_> = eps.iter().map(|e| e.sender.clone()).collect();
                markers.push((stream.clone(), senders.clone()));
                if excluded.contains(stream) {
                    continue;
                }
                sub_names.push(stream.clone());
                let name = stream.clone();
                taps.push((
                    stream.clone(),
                    Arc::new(move |batch: &[crate::Tuple]| {
                        if batch.is_empty() {
                            return;
                        }
                        let frame = wire::encode_frame(
                            wire::TUPLES,
                            &wire::encode_tuples(&name, epoch, batch),
                        );
                        for s in &senders {
                            s.send(1, batch.len() as u64, frame.clone());
                        }
                    }) as SubscriptionTap,
                ));
            }
            // Deterministic build order regardless of HashMap iteration.
            sub_names.sort();
            markers.sort_by(|a, b| a.0.cmp(&b.0));
            (ThreadedOptions { taps, exclude: excluded, ..ThreadedOptions::default() }, sub_names, markers)
        };

        // ---- Run the epoch (engine holds no locks) -------------------
        let active_queries =
            gs.queries().iter().filter(|d| !opts.exclude.iter().any(|e| e == &d.name)).count();
        let ran = if active_queries > 0 {
            gs.faults = match (&faults, fault_epochs.contains(&epoch)) {
                (Some(plan), true) => Some(plan.clone()),
                _ => None,
            };
            let packets = source.epoch_packets(epoch);
            let sub_refs: Vec<&str> = sub_names.iter().map(String::as_str).collect();
            match run_threaded_opts(&gs, packets.into_iter(), &sub_refs, opts) {
                Ok(out) => {
                    supervisor.observe(epoch, &out.health);
                    let mut ctl = lock(&shared.ctl);
                    ctl.snapshot.counters = out.counters;
                    drop(ctl);
                    true
                }
                Err(_) => {
                    shared.stats.run_errors.inc();
                    false
                }
            }
        } else {
            true // an empty epoch completes trivially
        };

        // ---- Close the epoch: markers, snapshot, wake waiters --------
        {
            let mut ctl = lock(&shared.ctl);
            if active_queries == 0 {
                // Counters describe "the last completed epoch"; an
                // empty catalog has none (the churn test's baseline).
                ctl.snapshot.counters.clear();
            }
            for (stream, senders) in markers {
                let frame =
                    wire::encode_frame(wire::TUPLES, &wire::encode_tuples(&stream, epoch, &[]));
                for s in &senders {
                    // Markers are control frames: losing one would make
                    // the client miscount epochs forever.
                    s.send_control(frame.clone());
                }
            }
            ctl.snapshot.health = supervisor.rows();
            ctl.snapshot.epochs_done = epoch + 1;
            shared.stats.epochs.set(epoch + 1);
            shared.epoch_cv.notify_all();
        }
        epoch += 1;

        // ---- Pace ----------------------------------------------------
        let gap = if active_queries == 0 || !ran {
            // Idle (or failing) daemon: don't spin the boundary hot.
            epoch_gap_ms.max(1)
        } else {
            epoch_gap_ms
        };
        let mut slept = 0;
        while slept < gap && !shared.shutdown.load(Ordering::SeqCst) {
            let step = (gap - slept).min(10);
            thread::sleep(Duration::from_millis(step));
            slept += step;
        }
    }

    // ---- Teardown: refuse stragglers, close every connection ---------
    let mut ctl = lock(&shared.ctl);
    ctl.stopped = true;
    for op in ctl.pending.drain(..) {
        let reply = match op {
            PendingOp::Register { reply, .. } => reply,
            PendingOp::Unregister { reply, .. } => reply,
        };
        let _ = reply.send(Err("daemon shutting down".to_string()));
    }
    // Give writers a short grace to flush already-queued replies (a
    // final "OK shutting down" should reach its client) before cutting
    // the sockets.
    let deadline = std::time::Instant::now() + Duration::from_millis(200);
    while ctl.conns.values().any(|c| c.chan.progress().1 > 0)
        && std::time::Instant::now() < deadline
    {
        drop(ctl);
        thread::sleep(Duration::from_millis(2));
        ctl = lock(&shared.ctl);
    }
    for conn in ctl.conns.values() {
        let _ = conn.stream.shutdown(Shutdown::Both);
        conn.chan.force_close();
    }
    shared.epoch_cv.notify_all();
}
