//! Synchronous client for the `gsqd` wire protocol — the library
//! behind `gsq --connect` and the protocol test battery.
//!
//! The daemon interleaves asynchronous TUPLES frames with request
//! replies on the one socket, so the client buffers any TUPLES frames
//! it encounters while waiting for a reply and hands them back later
//! through [`Client::next_tuples`] / [`Client::read_epoch`]. Per-stream
//! frame order is preserved throughout.

use crate::server::wire::{self, HealthRow, StatsRow, TuplesFrame, WireError};
use crate::Tuple;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure; the connection is unusable.
    Transport(WireError),
    /// The daemon answered ERR; the connection is still good.
    Rejected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Rejected(m) => write!(f, "daemon: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Transport(e)
    }
}

/// One synchronous protocol session.
pub struct Client {
    stream: TcpStream,
    /// TUPLES frames received while waiting for something else, in
    /// arrival order.
    inbox: VecDeque<TuplesFrame>,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, inbox: VecDeque::new() })
    }

    /// Connect with bounded exponential backoff: up to `attempts`
    /// tries, sleeping `base_delay` after the first failure and
    /// doubling per retry (capped at 2 s). A scripted session started
    /// alongside `gsqd` no longer races the daemon's bind — a refused
    /// connection while the daemon is still starting just retries.
    pub fn connect_retry(
        addr: impl ToSocketAddrs,
        attempts: u32,
        base_delay: Duration,
    ) -> io::Result<Client> {
        let mut delay = base_delay;
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(2));
            }
            match Client::connect(&addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts made")))
    }

    /// Set a read timeout (tests use this so a daemon bug can't hang
    /// the suite); `None` blocks forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send a raw frame (the adversarial tests drive this directly).
    pub fn send_raw(&mut self, opcode: u8, payload: &[u8]) -> io::Result<()> {
        wire::write_frame(&mut self.stream, opcode, payload)
    }

    /// Write arbitrary bytes, bypassing framing entirely (garbage
    /// injection in the adversarial tests).
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        self.stream.write_all(bytes)
    }

    /// Read the next frame of any kind.
    pub fn read_frame(&mut self) -> Result<(u8, Vec<u8>), WireError> {
        wire::read_frame(&mut self.stream, wire::MAX_FRAME)
    }

    /// Send `opcode` and read frames until a non-TUPLES reply arrives,
    /// buffering any TUPLES passed over.
    fn request(&mut self, opcode: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), WireError> {
        wire::write_frame(&mut self.stream, opcode, payload)?;
        loop {
            let (op, body) = self.read_frame()?;
            if op == wire::TUPLES {
                self.inbox.push_back(wire::decode_tuples(&body)?);
                continue;
            }
            return Ok((op, body));
        }
    }

    /// Issue a request whose reply must be OK; returns the info string.
    fn expect_ok(&mut self, opcode: u8, payload: &[u8]) -> Result<String, ClientError> {
        match self.request(opcode, payload)? {
            (wire::OK, body) => Ok(String::from_utf8_lossy(&body).into_owned()),
            (wire::ERR, body) => Err(ClientError::Rejected(String::from_utf8_lossy(&body).into_owned())),
            (op, _) => Err(ClientError::Transport(WireError::Protocol(format!(
                "unexpected reply opcode 0x{op:02x}"
            )))),
        }
    }

    /// REGISTER a GSQL program; returns the deployed query names.
    pub fn register(&mut self, gsql: &str) -> Result<Vec<String>, ClientError> {
        let names = self.expect_ok(wire::REGISTER, gsql.as_bytes())?;
        Ok(names.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect())
    }

    /// UNREGISTER a query by name.
    pub fn unregister(&mut self, name: &str) -> Result<(), ClientError> {
        self.expect_ok(wire::UNREGISTER, name.as_bytes()).map(|_| ())
    }

    /// SUBSCRIBE this connection to a stream (frames begin next epoch).
    pub fn subscribe(&mut self, stream: &str) -> Result<(), ClientError> {
        self.expect_ok(wire::SUBSCRIBE, stream.as_bytes()).map(|_| ())
    }

    /// UNSUBSCRIBE this connection from a stream.
    pub fn unsubscribe(&mut self, stream: &str) -> Result<(), ClientError> {
        self.expect_ok(wire::UNSUBSCRIBE, stream.as_bytes()).map(|_| ())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(wire::PING, b"")? {
            (wire::PONG, _) => Ok(()),
            (op, _) => Err(ClientError::Transport(WireError::Protocol(format!(
                "expected PONG, got 0x{op:02x}"
            )))),
        }
    }

    /// Current lifecycle health of every registered query.
    pub fn health(&mut self) -> Result<Vec<HealthRow>, ClientError> {
        match self.request(wire::HEALTH, b"")? {
            (wire::HEALTH_RPT, body) => Ok(wire::decode_health(&body)?),
            (wire::ERR, body) => Err(ClientError::Rejected(String::from_utf8_lossy(&body).into_owned())),
            (op, _) => Err(ClientError::Transport(WireError::Protocol(format!(
                "expected HEALTH_RPT, got 0x{op:02x}"
            )))),
        }
    }

    /// Daemon + last-epoch GS_STATS counter rows.
    pub fn stats(&mut self) -> Result<Vec<StatsRow>, ClientError> {
        match self.request(wire::STATS, b"")? {
            (wire::STATS_RPT, body) => Ok(wire::decode_stats(&body)?),
            (wire::ERR, body) => Err(ClientError::Rejected(String::from_utf8_lossy(&body).into_owned())),
            (op, _) => Err(ClientError::Transport(WireError::Protocol(format!(
                "expected STATS_RPT, got 0x{op:02x}"
            )))),
        }
    }

    /// Block until the daemon has completed `n` epochs; returns the
    /// completed-epoch count at reply time.
    pub fn wait_epoch(&mut self, n: u64) -> Result<u64, ClientError> {
        let mut payload = Vec::with_capacity(8);
        wire::put_u64(&mut payload, n);
        let done = self.expect_ok(wire::WAIT_EPOCH, &payload)?;
        done.parse().map_err(|_| {
            ClientError::Transport(WireError::Protocol(format!("bad epoch count `{done}`")))
        })
    }

    /// Ask the daemon to stop after the current epoch.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(wire::SHUTDOWN, b"").map(|_| ())
    }

    /// The next TUPLES frame, buffered or from the wire.
    pub fn next_tuples(&mut self) -> Result<TuplesFrame, WireError> {
        if let Some(f) = self.inbox.pop_front() {
            return Ok(f);
        }
        let (op, body) = self.read_frame()?;
        if op != wire::TUPLES {
            return Err(WireError::Protocol(format!("unsolicited frame 0x{op:02x}")));
        }
        wire::decode_tuples(&body)
    }

    /// Collect one full epoch of `stream`: every row up to and
    /// including the zero-row end-of-epoch marker. Frames of other
    /// subscribed streams encountered along the way stay buffered in
    /// arrival order.
    pub fn read_epoch(&mut self, stream: &str) -> Result<(u64, Vec<Tuple>), WireError> {
        let mut rows = Vec::new();
        loop {
            let frame = match self.inbox.iter().position(|f| f.stream == stream) {
                Some(i) => self.inbox.remove(i).expect("position just found"),
                None => {
                    // Nothing buffered for this stream: read from the
                    // wire (not via the inbox, which would just cycle
                    // other streams' frames).
                    let (op, body) = self.read_frame()?;
                    if op != wire::TUPLES {
                        return Err(WireError::Protocol(format!("unsolicited frame 0x{op:02x}")));
                    }
                    let f = wire::decode_tuples(&body)?;
                    if f.stream != stream {
                        self.inbox.push_back(f);
                        continue;
                    }
                    f
                }
            };
            if frame.rows.is_empty() {
                return Ok((frame.epoch, rows));
            }
            rows.extend(frame.rows);
        }
    }
}
