//! The `gsqd` wire protocol: std-only, length-prefixed binary frames.
//!
//! Hermetic by constraint (no tokio, no serde, no protobuf): every frame
//! is hand-encoded, like the `GS_STATS` rows the engines already emit.
//! A frame is
//!
//! ```text
//! +----------------+--------+------------------+
//! | len: u32 BE    | opcode | payload          |
//! +----------------+--------+------------------+
//! ```
//!
//! where `len` counts the opcode byte plus the payload (so `len >= 1`),
//! capped at [`MAX_FRAME`]. Integers are big-endian; strings are
//! `u32 BE length + UTF-8 bytes`; tuple values are a tag byte plus the
//! tag-specific payload (see [`put_value`]). Anything that violates the
//! framing — a zero length, an oversized length, a payload shorter than
//! its declared fields, bad UTF-8 — decodes to a [`WireError`], never a
//! panic: the daemon answers with [`ERR`] and, for framing-level damage,
//! closes that one connection while sibling sessions keep running.

use gs_runtime::tuple::Tuple;
use gs_runtime::value::Value;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's `len` field (opcode + payload), in bytes.
/// Large enough for a full epoch's tuple batch, small enough that a
/// hostile 4 GiB length prefix is rejected before any allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Ceiling the daemon applies to *client* frames (a GSQL program or a
/// stream name; nothing a client sends legitimately approaches this).
pub const MAX_REQUEST: u32 = 1024 * 1024;

// ---- Opcodes: client -> daemon -------------------------------------------

/// Register a GSQL program (payload: program text).
pub const REGISTER: u8 = 0x01;
/// Unregister a query by name (payload: query name).
pub const UNREGISTER: u8 = 0x02;
/// Subscribe this connection to a named output stream (payload: name).
pub const SUBSCRIBE: u8 = 0x03;
/// Drop this connection's subscription to a stream (payload: name).
pub const UNSUBSCRIBE: u8 = 0x04;
/// Poll per-query lifecycle health (empty payload).
pub const HEALTH: u8 = 0x05;
/// Poll the daemon + last-epoch GS_STATS counters (empty payload).
pub const STATS: u8 = 0x06;
/// Liveness probe (empty payload).
pub const PING: u8 = 0x07;
/// Block until the daemon has completed the given epoch (payload: u64).
pub const WAIT_EPOCH: u8 = 0x08;
/// Stop the daemon after the current epoch (empty payload).
pub const SHUTDOWN: u8 = 0x0F;

// ---- Opcodes: daemon -> client -------------------------------------------

/// Success reply (payload: context-dependent UTF-8 info string).
pub const OK: u8 = 0x80;
/// Failure reply (payload: UTF-8 message). The connection stays open
/// unless the error was framing-level.
pub const ERR: u8 = 0x81;
/// A batch of result tuples on a subscribed stream. Payload: stream
/// name, epoch u64, row count u32, then each row as `u16 arity` +
/// values. A zero-row TUPLES frame is the end-of-epoch marker: every
/// row of that (stream, epoch) has been delivered.
pub const TUPLES: u8 = 0x82;
/// Health report. Payload: u32 count, then per query: name, state u8
/// (0 = running, 1 = backoff, 2 = failed/dead), restarts u64, reason.
pub const HEALTH_RPT: u8 = 0x83;
/// Stats report. Payload: u32 count, then per row: node, counter, u64.
pub const STATS_RPT: u8 = 0x84;
/// Reply to [`PING`].
pub const PONG: u8 = 0x85;

// ---- Value tags ----------------------------------------------------------

const TAG_BOOL: u8 = 0;
const TAG_UINT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_IP: u8 = 3;
const TAG_STR: u8 = 4;

/// Everything that can go wrong decoding a frame or a payload.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeds the allowed maximum.
    Oversized(u32),
    /// Structurally invalid content (zero length, short payload, bad
    /// tag, bad UTF-8...).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Oversized(n) => write!(f, "declared frame length {n} exceeds maximum"),
            WireError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn proto(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

// ---- Frame I/O -----------------------------------------------------------

/// Write one frame (length prefix, opcode, payload).
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    debug_assert!(len <= MAX_FRAME as usize, "oversized outbound frame");
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(opcode);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Encode one frame into a byte vector (the fan-out path: encode once,
/// clone the bytes per subscriber).
pub fn encode_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(opcode);
    buf.extend_from_slice(payload);
    buf
}

/// Read one frame, enforcing `max_len` on the declared length *before*
/// allocating or consuming the body. Returns `(opcode, payload)`.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<(u8, Vec<u8>), WireError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4);
    if len == 0 {
        return Err(proto("zero-length frame"));
    }
    if len > max_len {
        return Err(WireError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

// ---- Payload encoding ----------------------------------------------------

/// Append a `u32` big-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a `u64` big-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append one tuple value: tag byte + tag-specific payload. Floats ship
/// as raw IEEE-754 bits, so every value round-trips exactly.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::UInt(n) => {
            buf.push(TAG_UINT);
            put_u64(buf, *n);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            put_u64(buf, f.to_bits());
        }
        Value::Ip(ip) => {
            buf.push(TAG_IP);
            put_u32(buf, *ip);
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s);
        }
    }
}

/// Append one tuple: `u16` arity + values.
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

// ---- Payload decoding ----------------------------------------------------

/// Bounds-checked cursor over one frame's payload. Every accessor
/// returns `Err` instead of panicking when the payload is shorter than
/// its declared fields — adversarial bytes must cost at most one
/// connection.
pub struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, off: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.off
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(proto(format!("payload truncated: need {n}, have {}", self.remaining())));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| proto("invalid UTF-8 in string"))
    }

    /// One tuple value (inverse of [`put_value`]).
    pub fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_UINT => Ok(Value::UInt(self.u64()?)),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_IP => Ok(Value::Ip(self.u32()?)),
            TAG_STR => {
                let n = self.u32()? as usize;
                let b = self.take(n)?;
                Ok(Value::Str(bytes::Bytes::copy_from_slice(b)))
            }
            t => Err(proto(format!("unknown value tag {t}"))),
        }
    }

    /// One tuple (inverse of [`put_tuple`]).
    pub fn tuple(&mut self) -> Result<Tuple, WireError> {
        let arity = self.u32()? as usize;
        if arity > self.remaining() {
            // Each value costs at least one byte: a declared arity past
            // the remaining payload is structurally impossible.
            return Err(proto(format!("tuple arity {arity} exceeds payload")));
        }
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.value()?);
        }
        Ok(Tuple::new(vals))
    }

    /// Require the payload to be fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(proto(format!("{} trailing payload bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---- Typed frames used by both halves ------------------------------------

/// One decoded [`TUPLES`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TuplesFrame {
    /// The subscribed stream the rows belong to.
    pub stream: String,
    /// The daemon epoch that produced them.
    pub epoch: u64,
    /// The rows (empty for the end-of-epoch marker).
    pub rows: Vec<Tuple>,
}

/// Encode a [`TUPLES`] payload.
pub fn encode_tuples(stream: &str, epoch: u64, rows: &[Tuple]) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + rows.len() * 16);
    put_str(&mut p, stream);
    put_u64(&mut p, epoch);
    put_u32(&mut p, rows.len() as u32);
    for t in rows {
        put_tuple(&mut p, t);
    }
    p
}

/// Decode a [`TUPLES`] payload.
pub fn decode_tuples(payload: &[u8]) -> Result<TuplesFrame, WireError> {
    let mut r = Reader::new(payload);
    let stream = r.str()?;
    let epoch = r.u64()?;
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        rows.push(r.tuple()?);
    }
    r.finish()?;
    Ok(TuplesFrame { stream, epoch, rows })
}

/// Lifecycle state of one registered query, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifeState {
    /// Deployed and running every epoch.
    Running,
    /// Quarantined; sitting out its restart backoff.
    Backoff,
    /// Exceeded the restart budget; permanently failed until
    /// re-registered.
    Dead,
}

impl LifeState {
    fn to_u8(self) -> u8 {
        match self {
            LifeState::Running => 0,
            LifeState::Backoff => 1,
            LifeState::Dead => 2,
        }
    }

    fn from_u8(v: u8) -> Result<LifeState, WireError> {
        match v {
            0 => Ok(LifeState::Running),
            1 => Ok(LifeState::Backoff),
            2 => Ok(LifeState::Dead),
            other => Err(proto(format!("unknown lifecycle state {other}"))),
        }
    }
}

/// One row of a [`HEALTH_RPT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRow {
    /// Registered query name.
    pub query: String,
    /// Current lifecycle state.
    pub state: LifeState,
    /// Automatic restarts performed so far.
    pub restarts: u64,
    /// Last quarantine reason (empty if never quarantined).
    pub reason: String,
}

/// Encode a [`HEALTH_RPT`] payload.
pub fn encode_health(rows: &[HealthRow]) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, rows.len() as u32);
    for r in rows {
        put_str(&mut p, &r.query);
        p.push(r.state.to_u8());
        put_u64(&mut p, r.restarts);
        put_str(&mut p, &r.reason);
    }
    p
}

/// Decode a [`HEALTH_RPT`] payload.
pub fn decode_health(payload: &[u8]) -> Result<Vec<HealthRow>, WireError> {
    let mut r = Reader::new(payload);
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        rows.push(HealthRow {
            query: r.str()?,
            state: LifeState::from_u8(r.u8()?)?,
            restarts: r.u64()?,
            reason: r.str()?,
        });
    }
    r.finish()?;
    Ok(rows)
}

/// One row of a [`STATS_RPT`]: `(node, counter, value)`.
pub type StatsRow = (String, String, u64);

/// Encode a [`STATS_RPT`] payload from registry snapshot rows.
pub fn encode_stats(rows: &[gs_runtime::stats::StatRow]) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, rows.len() as u32);
    for r in rows {
        put_str(&mut p, &r.node);
        put_str(&mut p, r.counter);
        put_u64(&mut p, r.value);
    }
    p
}

/// Decode a [`STATS_RPT`] payload.
pub fn decode_stats(payload: &[u8]) -> Result<Vec<StatsRow>, WireError> {
    let mut r = Reader::new(payload);
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        rows.push((r.str()?, r.str()?, r.u64()?));
    }
    r.finish()?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, REGISTER, b"Select time From eth0.tcp").unwrap();
        write_frame(&mut buf, PING, b"").unwrap();
        let mut cur = &buf[..];
        let (op, body) = read_frame(&mut cur, MAX_FRAME).unwrap();
        assert_eq!((op, body.as_slice()), (REGISTER, &b"Select time From eth0.tcp"[..]));
        let (op, body) = read_frame(&mut cur, MAX_FRAME).unwrap();
        assert_eq!((op, body.len()), (PING, 0));
        assert!(matches!(read_frame(&mut cur, MAX_FRAME), Err(WireError::Io(_))), "clean EOF");
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected_before_reading_bodies() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..], MAX_REQUEST),
            Err(WireError::Oversized(u32::MAX))
        ));
        let zero = 0u32.to_be_bytes();
        assert!(matches!(read_frame(&mut &zero[..], MAX_REQUEST), Err(WireError::Protocol(_))));
    }

    #[test]
    fn values_and_tuples_round_trip_exactly() {
        let t = Tuple::new(vec![
            Value::Bool(true),
            Value::UInt(u64::MAX),
            Value::Float(-0.1),
            Value::Float(f64::NAN),
            Value::Ip(0x0a000001),
            Value::Str(Bytes::from_static(b"payload \xff bytes are not UTF-8")),
        ]);
        let payload = encode_tuples("s", 7, std::slice::from_ref(&t));
        let f = decode_tuples(&payload).unwrap();
        assert_eq!((f.stream.as_str(), f.epoch, f.rows.len()), ("s", 7, 1));
        let got = &f.rows[0];
        assert_eq!(got.get(0), &Value::Bool(true));
        assert_eq!(got.get(1), &Value::UInt(u64::MAX));
        assert_eq!(got.get(2), &Value::Float(-0.1));
        assert!(matches!(got.get(3), Value::Float(x) if x.is_nan()), "NaN bits survive");
        assert_eq!(got.get(4), &Value::Ip(0x0a000001));
        assert_eq!(got.get(5), t.get(5));
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let t = Tuple::new(vec![Value::UInt(1), Value::Str(Bytes::from_static(b"abc"))]);
        let payload = encode_tuples("stream", 3, &[t]);
        for cut in 0..payload.len() {
            assert!(decode_tuples(&payload[..cut]).is_err(), "prefix {cut} must not decode");
        }
        // Trailing garbage is also rejected.
        let mut noisy = payload.clone();
        noisy.push(0);
        assert!(decode_tuples(&noisy).is_err());
    }

    #[test]
    fn absurd_declared_counts_do_not_allocate() {
        // A tuple claiming 2^32-1 values inside a 12-byte payload.
        let mut p = Vec::new();
        put_str(&mut p, "s");
        put_u64(&mut p, 0);
        put_u32(&mut p, 1); // one row...
        put_u32(&mut p, u32::MAX); // ...claiming u32::MAX values
        assert!(decode_tuples(&p).is_err());
    }

    #[test]
    fn health_and_stats_round_trip() {
        let rows = vec![
            HealthRow {
                query: "good".into(),
                state: LifeState::Running,
                restarts: 0,
                reason: String::new(),
            },
            HealthRow {
                query: "bad".into(),
                state: LifeState::Dead,
                restarts: 3,
                reason: "panic: injected".into(),
            },
        ];
        assert_eq!(decode_health(&encode_health(&rows)).unwrap(), rows);
        let stats = vec![gs_runtime::stats::StatRow {
            node: "daemon".into(),
            counter: "epochs",
            value: 12,
        }];
        assert_eq!(
            decode_stats(&encode_stats(&stats)).unwrap(),
            vec![("daemon".to_string(), "epochs".to_string(), 12)]
        );
    }
}
