//! Gigascope: a stream database for network applications.
//!
//! A from-scratch Rust reproduction of *Gigascope: A Stream Database for
//! Network Applications* (Cranor, Johnson, Spatscheck, Shkapenyuk —
//! SIGMOD 2003). Queries are written in GSQL, a pure stream restriction of
//! SQL; the compiler splits each query into low-level LFTAs that run at
//! the capture point (with BPF prefilters and snap lengths pushed toward
//! the NIC) and high-level HFTAs that run as ordinary stream operators,
//! and the whole plan streams without sliding windows by exploiting the
//! *ordering properties* of timestamp-like attributes.
//!
//! # Quickstart
//!
//! ```
//! use gigascope::Gigascope;
//! use gs_packet::capture::LinkType;
//! use gs_netgen::{MixConfig, PacketMix};
//!
//! let mut gs = Gigascope::new();
//! gs.add_interface("eth0", 0, LinkType::Ethernet);
//! gs.add_program(
//!     "DEFINE { query_name tcpdest; }
//!      Select destIP, destPort, time From eth0.tcp
//!      Where IPVersion = 4 and Protocol = 6",
//! ).unwrap();
//!
//! let traffic = PacketMix::new(MixConfig { duration_ms: 50, ..MixConfig::default() });
//! let out = gs.run_capture(traffic, &["tcpdest"]).unwrap();
//! assert!(!out.stream("tcpdest").is_empty());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod health;
pub mod manager;
pub mod server;
pub mod transport;
pub mod watchdog;

pub use engine::{EngineStats, RunOutput};
pub use gs_gsql::split::DeployedQuery;
pub use gs_runtime::faults::{FaultKind, FaultPlan, FaultSpec};
pub use gs_runtime::qos::DropPolicy;
pub use gs_runtime::stats::StatRow;
pub use gs_runtime::{ParamBindings, StreamItem, Tuple, Value};
pub use health::{FaultReason, NodeFault, QueryHealth, RunHealth};
pub use watchdog::WatchdogConfig;

use gs_gsql::catalog::{Catalog, InterfaceDef, UdfCost, UdfSig};
use gs_gsql::plan::Schema;
use gs_gsql::split::split_query;
use gs_packet::capture::LinkType;
use gs_packet::CapPacket;
use gs_runtime::punct::HeartbeatMode;
use gs_runtime::udf::{FileStore, UdfFactory, UdfRegistry};
use std::collections::HashMap;
use std::fmt;

/// Anything that can go wrong building or running queries.
#[derive(Debug)]
pub enum Error {
    /// GSQL front-end failure (lex/parse/analyze/plan).
    Gsql(gs_gsql::GsqlError),
    /// Instantiation or execution failure.
    Runtime(gs_runtime::RuntimeError),
    /// API misuse (duplicate names, unknown queries...).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Gsql(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<gs_gsql::GsqlError> for Error {
    fn from(e: gs_gsql::GsqlError) -> Error {
        Error::Gsql(e)
    }
}

impl From<gs_runtime::RuntimeError> for Error {
    fn from(e: gs_runtime::RuntimeError) -> Error {
        Error::Runtime(e)
    }
}

/// Metadata about one registered query.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Registered name.
    pub name: String,
    /// Output schema.
    pub schema: Schema,
    /// Number of LFTAs the splitter produced.
    pub lftas: usize,
    /// Whether an HFTA part exists.
    pub has_hfta: bool,
    /// Analyzer warnings (e.g. aggregation without an ordered key).
    pub warnings: Vec<String>,
    /// Whether the parser hoisted this query out of a FROM clause
    /// (subquery plumbing rather than a user-named query).
    pub hoisted: bool,
}

/// Overload-shedding configuration for the threaded manager's bounded
/// per-edge queues (paper §4: "highly processed tuples ... are more
/// valuable than less-processed tuples").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// What to drop when a consumer's queue is full.
    pub policy: DropPolicy,
    /// Queue capacity in messages (batches), per consumer.
    pub capacity: usize,
}

impl Default for ShedConfig {
    fn default() -> ShedConfig {
        ShedConfig {
            policy: DropPolicy::LeastProcessedFirst,
            capacity: manager::CHANNEL_CAPACITY,
        }
    }
}

/// The Gigascope system: catalog, function registry, and the set of
/// deployed queries. Build one, register interfaces and queries, then
/// [`run_capture`](Gigascope::run_capture) over a packet source.
pub struct Gigascope {
    catalog: Catalog,
    registry: UdfRegistry,
    resolver: FileStore,
    deployed: Vec<DeployedQuery>,
    params: HashMap<String, ParamBindings>,
    /// Heartbeat (ordering-update token) policy for LFTAs.
    pub heartbeat: HeartbeatMode,
    /// Direct-mapped LFTA pre-aggregation table size, in slots.
    pub lfta_table_size: usize,
    /// Transport batch size for the threaded manager: items per message on
    /// the LFTA→HFTA and HFTA→HFTA ready-queues. Batches flush early on
    /// punctuation (so ordering tokens are never delayed) and at stream
    /// close. `1` reproduces item-at-a-time transport exactly.
    pub batch_size: usize,
    /// Overload policy for the threaded manager's ready-queues. `None`
    /// (the default) blocks producers when a queue fills — lossless
    /// backpressure. `Some(cfg)` never blocks the capture loop: the
    /// configured [`DropPolicy`] sheds instead, with every drop counted
    /// in the `queue:*` stats.
    pub shedding: Option<ShedConfig>,
    /// Whether to publish per-operator counters and emit the built-in
    /// `GS_STATS` stream during runs (default on; the hot-path counters
    /// themselves are always maintained).
    pub stats_enabled: bool,
    /// Partition-parallel degree for eligible aggregation HFTAs. At `1`
    /// (the default) deployment is exactly today's single-instance plans.
    /// At `K ≥ 2`, each group-by HFTA whose §2.1 ordering properties
    /// permit it is rewritten into K shards fed by a hash-of-group-key
    /// router plus an order-preserving merge reunifying the shard
    /// outputs on the temporal attribute; ineligible HFTAs deploy
    /// unchanged. Applies to both the threaded manager and the
    /// synchronous engine, which therefore stay equivalent.
    pub parallelism: usize,
    /// Liveness supervision for the threaded manager. `None` (the
    /// default) spawns no supervisor and leaves behavior exactly as
    /// before; `Some(cfg)` starts a watchdog that force-closes queues
    /// making no progress over the configured interval and reports the
    /// owning query `Failed{Stalled}` in the run's [`RunHealth`].
    pub watchdog: Option<WatchdogConfig>,
    /// Deterministic fault-injection campaign. `None` (the default)
    /// arms nothing and costs nothing on the batch path; `Some(plan)`
    /// injects the plan's faults into the targeted nodes in both
    /// engines and surfaces containment in the `faults` stats node.
    pub faults: Option<FaultPlan>,
    /// Columnar (SoA) transport on the threaded manager's edges. When on
    /// (the default) and `batch_size > 1`, producers ship batches as one
    /// typed vector per schema column and single-input HFTA chains
    /// execute on them natively (vectorized kernels, selection vectors);
    /// rows materialize only at boundaries that need them (merge, join,
    /// subscriptions). `false` restores the pre-columnar row transport
    /// everywhere, and `batch_size == 1` implies the row path regardless
    /// — both produce byte-identical output to the columnar path. The
    /// synchronous engine is always row-based.
    pub columnar: bool,
    /// Cross-query shared prefilter. When on (the default), both engines
    /// parse each packet once, evaluate every *distinct* BPF program,
    /// protocol match, and predicate atom across all registered LFTAs
    /// once, and dispatch each LFTA off the memoized verdicts via a
    /// precomputed required-atom bitmask — per-packet cost grows with the
    /// number of distinct predicates, not the number of queries. `false`
    /// restores fully private per-LFTA evaluation. Both produce identical
    /// outputs and per-LFTA counters; the shared pass is rebuilt from the
    /// registered query set at the start of every run, so
    /// [`add_program`](Gigascope::add_program) /
    /// [`remove_program`](Gigascope::remove_program) take effect on the
    /// next run.
    pub shared_prefilter: bool,
}

impl Default for Gigascope {
    fn default() -> Self {
        Gigascope::new()
    }
}

impl Gigascope {
    /// A system with the built-in protocols and function library, no
    /// interfaces, and periodic 1-second heartbeats.
    pub fn new() -> Gigascope {
        Gigascope {
            catalog: Catalog::with_builtins(),
            registry: UdfRegistry::with_builtins(),
            resolver: FileStore::new(),
            deployed: Vec::new(),
            params: HashMap::new(),
            heartbeat: HeartbeatMode::Periodic { interval: 1 },
            lfta_table_size: 4096,
            batch_size: 256,
            shedding: None,
            stats_enabled: true,
            parallelism: 1,
            watchdog: None,
            faults: None,
            columnar: true,
            shared_prefilter: true,
        }
    }

    /// Register an interface binding a symbolic name to a packet source.
    /// The first interface registered becomes the default.
    pub fn add_interface(&mut self, name: &str, id: u16, link: LinkType) {
        self.catalog.add_interface(InterfaceDef { name: name.to_string(), id, link });
    }

    /// Register an in-memory file for pass-by-handle parameters (prefix
    /// tables etc.). Unregistered names fall back to the filesystem.
    pub fn add_file(&mut self, name: &str, contents: impl Into<Vec<u8>>) {
        self.resolver.insert(name, contents);
    }

    /// Register a user-defined function: prototype in the catalog plus the
    /// implementation factory ("adding the code for the function to the
    /// function library, and registering the function prototype in the
    /// function registry", §2.2).
    pub fn add_udf(&mut self, sig: UdfSig, factory: UdfFactory) {
        self.registry.register(sig.name.clone(), factory);
        self.catalog.add_udf(sig);
    }

    /// Mark a UDF's cost class (affects LFTA/HFTA placement).
    pub fn set_udf_cost(&mut self, name: &str, cost: UdfCost) -> Result<(), Error> {
        let mut sig = self
            .catalog
            .udf(name)
            .cloned()
            .ok_or_else(|| Error::Config(format!("unknown function `{name}`")))?;
        sig.cost = cost;
        self.catalog.add_udf(sig);
        Ok(())
    }

    /// Parse, analyze, split, and register every query in `gsql`.
    /// Later queries (and later programs) may read earlier ones by name.
    ///
    /// Registration is atomic per program: GSQL that references an
    /// undefined interface or stream, or re-defines a query name (within
    /// the program or against an earlier program), is rejected with
    /// `Err` and leaves the system exactly as it was — no query of a
    /// failed program is partially registered.
    pub fn add_program(&mut self, gsql: &str) -> Result<Vec<QueryInfo>, Error> {
        let program = gs_gsql::parse_program_full(gsql)?;
        // Validate every query against a staging catalog; commit only
        // if the whole program is well-formed.
        let mut staged = self.catalog.clone();
        for d in &program.interfaces {
            staged.add_interface(InterfaceDef { name: d.name.clone(), id: d.id, link: d.link });
        }
        let queries = program.queries;
        let mut infos = Vec::with_capacity(queries.len());
        let mut deployed = Vec::with_capacity(queries.len());
        for q in &queries {
            let aq = gs_gsql::analyze(q, &staged)?;
            if staged.stream(&aq.name).is_some() {
                return Err(Error::Config(format!("query `{}` is already registered", aq.name)));
            }
            let dq = split_query(&aq, &staged)?;
            // Register the LFTA streams and the query's own stream so
            // downstream queries can subscribe by name.
            for l in &dq.lftas {
                if l.name != dq.name {
                    staged.add_stream(&l.name, l.plan.schema().clone());
                }
            }
            staged.add_stream(&dq.name, dq.schema.clone());
            let mut warnings = aq.warnings.clone();
            if aq.sample.is_some() && dq.lftas.is_empty() {
                warnings.push(
                    concat!(
                        "DEFINE sample applies at the capture point, but this query ",
                        "reads only streams: no packets are sampled (set sample on ",
                        "the query that scans the interface)",
                    )
                    .to_string(),
                );
            }
            infos.push(QueryInfo {
                name: dq.name.clone(),
                schema: dq.schema.clone(),
                lftas: dq.lftas.len(),
                has_hfta: dq.hfta.is_some(),
                warnings,
                hoisted: q.is_hoisted(),
            });
            deployed.push(dq);
        }
        self.catalog = staged;
        self.deployed.extend(deployed);
        Ok(infos)
    }

    /// Unregister a deployed query and its streams. Fails if any other
    /// deployed query subscribes to one of its streams (remove dependents
    /// first). The shared prefilter's atom table and bitmasks are rebuilt
    /// from the surviving query set at the start of the next run.
    pub fn remove_program(&mut self, query: &str) -> Result<(), Error> {
        let idx = self
            .deployed
            .iter()
            .position(|d| d.name == query)
            .ok_or_else(|| Error::Config(format!("unknown query `{query}`")))?;
        // Streams this query publishes: its own name plus intermediate
        // LFTA streams.
        let mut published: Vec<&str> = vec![&self.deployed[idx].name];
        for l in &self.deployed[idx].lftas {
            if l.name != self.deployed[idx].name {
                published.push(&l.name);
            }
        }
        for (i, other) in self.deployed.iter().enumerate() {
            if i == idx {
                continue;
            }
            if let Some(h) = &other.hfta {
                for up in h.upstream_streams() {
                    if published.contains(&up.as_str()) {
                        return Err(Error::Config(format!(
                            "cannot remove `{query}`: query `{}` reads its stream `{up}`",
                            other.name
                        )));
                    }
                }
            }
        }
        let published: Vec<String> = published.into_iter().map(String::from).collect();
        for name in &published {
            self.catalog.remove_stream(name);
        }
        self.params.remove(query);
        self.deployed.remove(idx);
        Ok(())
    }

    /// Bind query parameters for the next run ("specified at query
    /// instantiation time and ... changed on-the-fly", §3). Parameters are
    /// rebound by calling this again between runs.
    pub fn set_params(&mut self, query: &str, params: ParamBindings) -> Result<(), Error> {
        if !self.deployed.iter().any(|d| d.name == query) {
            return Err(Error::Config(format!("unknown query `{query}`")));
        }
        self.params.insert(query.to_string(), params);
        Ok(())
    }

    /// The deployed queries, in submission order.
    pub fn queries(&self) -> &[DeployedQuery] {
        &self.deployed
    }

    /// The catalog (for inspection).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Output schema of a registered stream.
    pub fn schema(&self, stream: &str) -> Option<&Schema> {
        self.catalog.stream(stream)
    }

    /// Render the deployed plan of one query (LFTA/HFTA split, pushed-down
    /// BPF prefilter, snap length, operators) — what the paper's optimizer
    /// decided.
    pub fn explain(&self, query: &str) -> Option<String> {
        self.deployed
            .iter()
            .find(|d| d.name == query)
            .map(gs_gsql::explain::explain)
    }

    /// Render the deployed plans of every registered query.
    pub fn explain_all(&self) -> String {
        self.deployed.iter().map(gs_gsql::explain::explain).collect::<Vec<_>>().join("\n")
    }

    /// Render the shared cross-query prefilter plan: the deduplicated
    /// atom table and each LFTA's required-atom bitmask assignment.
    /// `None` when no LFTAs are deployed or the shared prefilter is off.
    pub fn explain_prefilter(&self) -> Result<Option<String>, Error> {
        if !self.shared_prefilter {
            return Ok(None);
        }
        let exec = engine::Engine::build_explained(self)?;
        Ok(exec.describe_prefilter())
    }

    /// Run all deployed queries over a time-ordered capture stream,
    /// collecting the named `subscriptions`. Packets must carry interface
    /// ids matching the registered interfaces.
    pub fn run_capture<I>(&self, packets: I, subscriptions: &[&str]) -> Result<RunOutput, Error>
    where
        I: Iterator<Item = CapPacket>,
    {
        let mut exec = engine::Engine::build(self)?;
        exec.subscribe(subscriptions)?;
        Ok(exec.run(packets))
    }

    pub(crate) fn params_for(&self, query: &str) -> ParamBindings {
        self.params.get(query).cloned().unwrap_or_default()
    }

    pub(crate) fn registry(&self) -> &UdfRegistry {
        &self.registry
    }

    pub(crate) fn resolver(&self) -> &FileStore {
        &self.resolver
    }

    /// The partition-parallel rewrite for one deployed query, when
    /// `parallelism ≥ 2` and the HFTA is eligible. The built-in
    /// `GS_STATS` stream is produced out of band by the schedulers
    /// themselves, so aggregates over it stay on the single-instance
    /// path.
    pub(crate) fn parallel_rewrite(
        &self,
        dq: &DeployedQuery,
    ) -> Option<gs_gsql::parallel::PartitionedHfta> {
        if self.parallelism < 2 {
            return None;
        }
        let hfta = dq.hfta.as_ref()?;
        let part = gs_gsql::parallel::partition_hfta(&dq.name, hfta, self.parallelism)?;
        if part.input == "GS_STATS" {
            return None;
        }
        Some(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_query_names_rejected() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.add_program("DEFINE { query_name q; } Select time From eth0.tcp").unwrap();
        let err = gs
            .add_program("DEFINE { query_name q; } Select time From eth0.tcp")
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn undefined_interface_rejected_without_panic() {
        let mut gs = Gigascope::new();
        // No interfaces registered at all.
        let err = gs.add_program("DEFINE { query_name q; } Select time From eth9.tcp");
        assert!(err.is_err(), "undefined interface is an Err, not a panic");
        // And with one registered, referencing another still fails.
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        assert!(gs.add_program("DEFINE { query_name q; } Select time From wan3.udp").is_err());
        assert!(gs.queries().is_empty(), "nothing was registered");
    }

    #[test]
    fn failed_program_registers_nothing() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        // Second query re-defines the first's name: the whole program
        // must be rejected atomically.
        let err = gs.add_program(
            "DEFINE { query_name a; } Select time From eth0.tcp \
             DEFINE { query_name a; } Select time From eth0.udp",
        );
        assert!(err.is_err());
        assert!(gs.queries().is_empty(), "query `a` was not half-registered");
        assert!(gs.schema("a").is_none(), "its stream is not in the catalog");
        // The name is still available for a good program.
        gs.add_program("DEFINE { query_name a; } Select time From eth0.tcp").unwrap();
        assert_eq!(gs.queries().len(), 1);
    }

    #[test]
    fn set_params_requires_known_query() {
        let mut gs = Gigascope::new();
        assert!(gs.set_params("nope", ParamBindings::new()).is_err());
    }

    #[test]
    fn query_info_reports_split() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        let infos = gs
            .add_program(
                "DEFINE { query_name simple; } Select time From eth0.tcp Where destPort = 80",
            )
            .unwrap();
        assert_eq!(infos[0].lftas, 1);
        assert!(!infos[0].has_hfta, "simple query runs entirely as an LFTA");
        let infos = gs
            .add_program(
                "DEFINE { query_name agg; } \
                 Select tb, count(*) From eth0.ip Group By time/60 as tb",
            )
            .unwrap();
        assert!(infos[0].has_hfta);
    }

    #[test]
    fn set_udf_cost_changes_placement() {
        let mut gs = Gigascope::new();
        gs.add_interface("eth0", 0, LinkType::Ethernet);
        gs.set_udf_cost("str_len", UdfCost::Expensive).unwrap();
        let infos = gs
            .add_program(
                "DEFINE { query_name q; } \
                 Select time From eth0.tcp Where str_len(payload) > 10",
            )
            .unwrap();
        assert!(infos[0].has_hfta, "expensive predicate forces an HFTA");
        assert!(gs.set_udf_cost("nosuch", UdfCost::Cheap).is_err());
    }
}
