//! Run-health reporting: which queries finished cleanly, which were
//! quarantined, and why.
//!
//! A faulted node (panicked operator, stalled consumer, corrupted
//! transport) must fail *its* query chain and nothing else: Gigascope
//! runs at the capture point, and the paper's §4 self-monitoring exists
//! precisely so operators can keep watching the monitor while one query
//! misbehaves. The engines record every quarantine decision on a shared
//! [`HealthBoard`]; the final [`RunHealth`] report rides on
//! [`ThreadedOutput`](crate::manager::ThreadedOutput) and
//! [`EngineStats`](crate::engine::EngineStats).

use gs_runtime::faults::FaultStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Why a query chain was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultReason {
    /// An operator of the chain panicked; the payload message survives.
    Panic(String),
    /// An upstream node of the chain faulted first; the origin node is
    /// named so the report distinguishes root causes from collateral.
    Upstream(String),
    /// The watchdog force-closed the chain's queue after repeated
    /// no-progress checks.
    Stalled,
}

impl std::fmt::Display for FaultReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultReason::Panic(msg) => write!(f, "panic: {msg}"),
            FaultReason::Upstream(node) => write!(f, "upstream fault at `{node}`"),
            FaultReason::Stalled => write!(f, "stalled (watchdog forced close)"),
        }
    }
}

/// The health of one query at the end of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryHealth {
    /// Ran to completion; its output is exactly the fault-free output.
    Ok,
    /// Quarantined mid-run: output is a clean prefix/subset of the
    /// fault-free output, and the rest of the run was unaffected.
    Failed {
        /// What took the chain down.
        reason: FaultReason,
    },
}

/// A fault marker propagated in-band through the node graph (the
/// `Msg::Fault` payload): names the node where containment happened and
/// why, so every downstream consumer can attribute its own quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFault {
    /// The node (output stream name) where the fault originated.
    pub node: String,
    /// The originating reason.
    pub reason: FaultReason,
}

/// Per-run health report: one entry per deployed query (and per
/// subscribed stream), `Ok` unless quarantined.
#[derive(Debug, Clone, Default)]
pub struct RunHealth {
    failures: HashMap<String, FaultReason>,
    notes: Vec<(String, String)>,
}

impl RunHealth {
    /// Build a report from explicit `(query, reason)` entries — used by
    /// the daemon supervisor's unit tests to exercise lifecycle
    /// transitions without running an engine.
    pub fn from_failures(failures: impl IntoIterator<Item = (String, FaultReason)>) -> RunHealth {
        RunHealth { failures: failures.into_iter().collect(), notes: Vec::new() }
    }

    /// Health of `query` (queries never recorded as failed are `Ok`).
    pub fn of(&self, query: &str) -> QueryHealth {
        match self.failures.get(query) {
            Some(r) => QueryHealth::Failed { reason: r.clone() },
            None => QueryHealth::Ok,
        }
    }

    /// Whether `query` failed.
    pub fn failed(&self, query: &str) -> bool {
        self.failures.contains_key(query)
    }

    /// Whether every query ran clean.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failed queries and their reasons, sorted by query name.
    pub fn failures(&self) -> Vec<(&str, &FaultReason)> {
        let mut v: Vec<_> = self.failures.iter().map(|(k, r)| (k.as_str(), r)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Non-fatal advisories recorded during the run, in arrival order:
    /// `(query, message)` pairs. A rejected operator-state snapshot
    /// (torn, corrupt, wrong shape) lands here — the query still runs,
    /// from empty windows, and the degradation is reported instead of
    /// silently absorbed.
    pub fn notes(&self) -> &[(String, String)] {
        &self.notes
    }

    /// The advisory notes recorded against one query.
    pub fn notes_of(&self, query: &str) -> Vec<&str> {
        self.notes.iter().filter(|(q, _)| q == query).map(|(_, m)| m.as_str()).collect()
    }
}

/// The owning query of a node's output stream: partition shards
/// (`perport#2`) and mangled LFTA streams (`perport__lfta0`) both
/// belong to their base query.
pub fn query_of(stream: &str) -> &str {
    let s = stream.split_once('#').map_or(stream, |(q, _)| q);
    s.split_once("__lfta").map_or(s, |(q, _)| q)
}

/// Shared, poison-tolerant recorder the engines write quarantine
/// decisions to while a run is in flight. Tolerance matters here more
/// than anywhere: the board is written by threads that just survived a
/// panic, so a poisoned mutex must not cascade the abort it prevented.
#[derive(Default)]
pub struct HealthBoard {
    failures: Mutex<HashMap<String, FaultReason>>,
    notes: Mutex<Vec<(String, String)>>,
    /// Containment accounting shared with the stats registry.
    pub stats: Arc<FaultStats>,
}

impl HealthBoard {
    /// Fresh board, all queries implicitly healthy.
    pub fn new() -> HealthBoard {
        HealthBoard::default()
    }

    /// Record `stream`'s owning query as failed. First reason wins (the
    /// root cause arrives before its collateral); returns whether this
    /// call was the first for the query.
    pub fn record(&self, stream: &str, reason: FaultReason) -> bool {
        let query = query_of(stream).to_string();
        let mut map = self.failures.lock().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(&query) {
            return false;
        }
        map.insert(query, reason);
        self.stats.queries_failed.inc();
        true
    }

    /// Record a non-fatal advisory against `stream`'s owning query (same
    /// name normalization as [`HealthBoard::record`]). The query keeps
    /// running; the note rides out on [`RunHealth::notes`].
    pub fn note(&self, stream: &str, message: String) {
        let query = query_of(stream).to_string();
        self.notes.lock().unwrap_or_else(PoisonError::into_inner).push((query, message));
    }

    /// Snapshot into the final report.
    pub fn report(&self) -> RunHealth {
        RunHealth {
            failures: self.failures.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            notes: self.notes.lock().unwrap_or_else(PoisonError::into_inner).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_of_strips_shard_and_lfta_mangling() {
        assert_eq!(query_of("perport"), "perport");
        assert_eq!(query_of("perport#3"), "perport");
        assert_eq!(query_of("perport__lfta0"), "perport");
        assert_eq!(query_of("perport#3__x"), "perport");
    }

    #[test]
    fn first_reason_wins_and_counts_once() {
        let b = HealthBoard::new();
        assert!(b.record("q#1", FaultReason::Panic("boom".into())));
        assert!(!b.record("q", FaultReason::Stalled), "already failed: not re-recorded");
        assert!(b.record("other", FaultReason::Stalled));
        let r = b.report();
        assert!(r.failed("q") && r.failed("other") && !r.failed("rest"));
        assert_eq!(r.of("q"), QueryHealth::Failed { reason: FaultReason::Panic("boom".into()) });
        assert_eq!(b.stats.queries_failed.get(), 2);
        assert_eq!(r.failures().len(), 2);
        assert!(!r.all_ok());
        assert!(RunHealth::default().all_ok());
    }

    #[test]
    fn notes_are_advisory_not_failures() {
        let b = HealthBoard::new();
        b.note("q#2", "snapshot rejected (bad checksum); resuming empty".to_string());
        b.note("other__lfta0", "lfta snapshot rejected".to_string());
        let r = b.report();
        assert!(r.all_ok(), "notes never fail a query");
        assert_eq!(r.notes().len(), 2);
        assert_eq!(r.notes_of("q"), vec!["snapshot rejected (bad checksum); resuming empty"]);
        assert_eq!(r.notes_of("other").len(), 1);
        assert!(r.notes_of("absent").is_empty());
    }

    #[test]
    fn board_survives_poisoning() {
        let b = Arc::new(HealthBoard::new());
        let b2 = b.clone();
        // Poison the board's mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = b2.failures.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(b.record("q", FaultReason::Stalled), "poison-tolerant: still records");
        assert!(b.report().failed("q"));
    }
}
