//! Self-monitoring counters (paper §4).
//!
//! Gigascope monitors itself with the same machinery it offers its
//! users: every layer keeps cheap counters, a [`StatsRegistry`]
//! snapshots them on demand (the `gsq --stats` dump), and the engines
//! periodically re-emit the snapshot as tuples on the built-in
//! `GS_STATS` stream so ordinary GSQL queries can filter and aggregate
//! them — the paper's "Gigascope monitors itself" loop.
//!
//! Counters are relaxed atomics. Operators run single-writer (one
//! thread owns an operator), so they accumulate in plain fields on the
//! hot path and *publish* into their shared [`OpCounters`] block with
//! plain stores at batch granularity; readers (the stats emitter, the
//! registry snapshot) see values at most one batch stale. Multi-writer
//! sites (edge batchers, queue admission) add directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter readable from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` (relaxed; multi-writer safe).
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrite with `v` (single-writer publish).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Anything that can report a fixed set of named counters.
pub trait StatSource: Send + Sync {
    /// `(counter name, current value)` pairs. The name set must be
    /// stable across calls (values move, rows don't).
    fn counters(&self) -> Vec<(&'static str, u64)>;
}

/// One snapshot row: `node` is the registered instance name
/// (`lfta:<stream>`, `hfta:<query>/<i>:<kind>`, `edge:<stream>`,
/// `queue:<consumer>`), `counter` the per-source counter name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatRow {
    /// Registered instance name.
    pub node: String,
    /// Counter name within the instance.
    pub counter: &'static str,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Registry of every counter-bearing instance in a deployment.
#[derive(Default)]
pub struct StatsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn StatSource>)>>,
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Register a counter source under an instance name.
    pub fn register(&self, node: impl Into<String>, source: Arc<dyn StatSource>) {
        self.sources.lock().unwrap().push((node.into(), source));
    }

    /// Remove every source registered under `node`. Long-lived registries
    /// (the `gsqd` daemon's) register per-query and per-connection nodes
    /// dynamically; without removal an UNREGISTER or a disconnect would
    /// leak its counter rows forever. Returns whether anything was removed.
    pub fn unregister(&self, node: &str) -> bool {
        let mut sources = self.sources.lock().unwrap();
        let before = sources.len();
        sources.retain(|(n, _)| n != node);
        sources.len() != before
    }

    /// Snapshot every registered counter, sorted by (node, counter).
    pub fn snapshot(&self) -> Vec<StatRow> {
        let sources = self.sources.lock().unwrap();
        let mut rows = Vec::new();
        for (node, src) in sources.iter() {
            for (counter, value) in src.counters() {
                rows.push(StatRow { node: node.clone(), counter, value });
            }
        }
        drop(sources);
        rows.sort_by(|a, b| (&a.node, a.counter).cmp(&(&b.node, b.counter)));
        rows
    }

    /// Convenience lookup of a single counter.
    pub fn value(&self, node: &str, counter: &str) -> Option<u64> {
        let sources = self.sources.lock().unwrap();
        for (n, src) in sources.iter() {
            if n == node {
                for (c, v) in src.counters() {
                    if c == counter {
                        return Some(v);
                    }
                }
            }
        }
        None
    }
}

/// The generic per-operator counter block. Kind-specific counters keep
/// their generic slot meaning:
///
/// - `groups_evicted`: aggregation groups closed and emitted;
/// - `gc_dropped`: join buffer entries discarded by window GC;
/// - `peak_held`: peak open groups (aggregate) or peak buffered tuples
///   (merge/join).
///
/// Kinds that have no use for a slot report it as zero, keeping the row
/// set per node uniform and the `GS_STATS` schema flat.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Data tuples received.
    pub tuples_in: Counter,
    /// Data tuples emitted.
    pub tuples_out: Counter,
    /// Batches received (one per `push_batch` call).
    pub batches_in: Counter,
    /// Punctuation tokens received.
    pub puncts_in: Counter,
    /// Aggregation groups closed and emitted.
    pub groups_evicted: Counter,
    /// Join buffer entries dropped by window GC.
    pub gc_dropped: Counter,
    /// Peak held state (open groups / buffered tuples).
    pub peak_held: Counter,
}

impl StatSource for OpCounters {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tuples_in", self.tuples_in.get()),
            ("tuples_out", self.tuples_out.get()),
            ("batches_in", self.batches_in.get()),
            ("puncts_in", self.puncts_in.get()),
            ("groups_evicted", self.groups_evicted.get()),
            ("gc_dropped", self.gc_dropped.get()),
            ("peak_held", self.peak_held.get()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_set_get() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);
        c.add(0);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_live() {
        let reg = StatsRegistry::new();
        let b = Arc::new(OpCounters::default());
        let a = Arc::new(OpCounters::default());
        reg.register("node_b", b.clone());
        reg.register("node_a", a.clone());
        a.tuples_in.set(7);
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 14);
        assert!(rows.windows(2).all(|w| (&w[0].node, w[0].counter) <= (&w[1].node, w[1].counter)));
        assert_eq!(reg.value("node_a", "tuples_in"), Some(7));
        assert_eq!(reg.value("node_b", "tuples_in"), Some(0));
        assert_eq!(reg.value("node_a", "nope"), None);
        // Live: a later mutation is visible without re-registering.
        b.puncts_in.set(3);
        assert_eq!(reg.value("node_b", "puncts_in"), Some(3));
    }

    #[test]
    fn unregister_removes_all_rows_for_the_node() {
        let reg = StatsRegistry::new();
        reg.register("keep", Arc::new(OpCounters::default()));
        reg.register("gone", Arc::new(OpCounters::default()));
        reg.register("gone", Arc::new(OpCounters::default()));
        assert!(reg.unregister("gone"));
        assert!(!reg.unregister("gone"), "already removed");
        let rows = reg.snapshot();
        assert!(rows.iter().all(|r| r.node == "keep"), "only `keep` rows survive");
        assert_eq!(rows.len(), 7);
    }
}
