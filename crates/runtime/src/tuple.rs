//! Tuples and stream items.

use crate::punct::Punct;
use crate::value::Value;
use std::fmt;

/// A tuple: the fields of one stream record, "packed in a standard
/// fashion" (paper §2.2). Cloning shares string payloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    vals: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(vals: Vec<Value>) -> Tuple {
        Tuple { vals: vals.into_boxed_slice() }
    }

    /// Field count.
    pub fn arity(&self) -> usize {
        self.vals.len()
    }

    /// Field by index.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.vals[i]
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Concatenate two tuples (join output construction). The chained
    /// slice iterators are `TrustedLen`, so the joined storage is
    /// allocated exactly once — no intermediate `Vec` growth.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple { vals: self.vals.iter().chain(other.vals.iter()).cloned().collect() }
    }
}

impl FromIterator<Value> for Tuple {
    /// Build a tuple directly from a value iterator; with an exact-size
    /// source (projection program lists, slice chains) the field storage
    /// is allocated in one shot.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple { vals: iter.into_iter().collect() }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

/// What flows on a stream: data tuples interleaved with ordering-update
/// tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// An ordering-update token (punctuation).
    Punct(Punct),
}

impl StreamItem {
    /// The tuple, if this is one.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punct(_) => None,
        }
    }

    /// How a stream of items renders in tests/examples.
    pub fn is_punct(&self) -> bool {
        matches!(self, StreamItem::Punct(_))
    }
}

/// Extract only the tuples from a drained item list (test helper).
pub fn tuples_of(items: Vec<StreamItem>) -> Vec<Tuple> {
    items
        .into_iter()
        .filter_map(|i| match i {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punct(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_access() {
        let a = Tuple::new(vec![Value::UInt(1), Value::UInt(2)]);
        let b = Tuple::new(vec![Value::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), &Value::Bool(true));
        assert_eq!(a.values().len(), 2);
    }

    #[test]
    fn from_iter_collects() {
        let t: Tuple = (0..3u64).map(Value::UInt).collect();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(2), &Value::UInt(2));
        // Short-circuiting collection through Option works too (the
        // projection paths discard on a failed program).
        let some: Option<Tuple> = [Some(Value::UInt(1)), Some(Value::UInt(2))]
            .into_iter()
            .collect();
        assert_eq!(some.unwrap().arity(), 2);
        let none: Option<Tuple> =
            [Some(Value::UInt(1)), None].into_iter().collect();
        assert!(none.is_none());
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::UInt(1), Value::Ip(0x01020304)]);
        assert_eq!(t.to_string(), "(1, 1.2.3.4)");
    }

    #[test]
    fn stream_item_helpers() {
        let t = StreamItem::Tuple(Tuple::new(vec![Value::UInt(1)]));
        assert!(!t.is_punct());
        assert!(t.as_tuple().is_some());
        let p = StreamItem::Punct(crate::punct::Punct { col: 0, low: Value::UInt(5) });
        assert!(p.is_punct());
        assert!(p.as_tuple().is_none());
        assert_eq!(tuples_of(vec![t, p]).len(), 1);
    }
}
