//! Vectorized expression kernels over columnar batches.
//!
//! [`Program::eval_vec`] runs a compiled program once per *batch* instead
//! of once per tuple: each register holds a whole column (or a broadcast
//! scalar), and each instruction is a tight loop over primitive slices —
//! no per-tuple `Value` boxing, no register-file reset per row.
//!
//! The kernels are deliberately partial: any instruction or operand-type
//! combination without a loop (UDF calls, mixed `Val` columns, exotic
//! type pairings) makes `eval_vec` return `None`, and the operator falls
//! back to row-at-a-time evaluation through
//! [`RowView`](crate::batch::RowView). Falling back is always correct —
//! the kernels are an optimization with the row evaluator as the
//! semantic reference, and the equivalence property tests pin the two
//! together.
//!
//! Per-row evaluation *failure* (the row path's `None`, e.g. division by
//! zero) is a different thing from kernel *absence*: failures are carried
//! in a validity mask so one poisoned row discards only itself, exactly
//! like the row path.

use super::{eval_bin, Instr, Program};
use crate::batch::{Column, ColumnBatch};
use crate::value::Value;
use bytes::Bytes;
use gs_gsql::ast::BinOp;
use std::cmp::Ordering;

/// A vector-evaluated expression over a batch's live rows.
#[derive(Debug)]
pub enum VecVal {
    /// The same value for every live row (constants, folded expressions).
    Scalar(Value),
    /// Per-row values; `false` in the validity mask marks a row whose
    /// evaluation aborted (the row path would discard that tuple).
    Col(Column, Option<Vec<bool>>),
}

impl VecVal {
    /// Whether row `row` evaluated successfully.
    #[inline]
    pub fn valid(&self, row: usize) -> bool {
        match self {
            VecVal::Scalar(_) => true,
            VecVal::Col(_, valid) => valid.as_ref().is_none_or(|v| v[row]),
        }
    }

    /// Whether any row failed to evaluate.
    pub fn any_invalid(&self) -> bool {
        match self {
            VecVal::Scalar(_) => false,
            VecVal::Col(_, valid) => valid.as_ref().is_some_and(|v| v.iter().any(|b| !b)),
        }
    }

    /// The boxed value at `row`; `None` if the row's evaluation aborted.
    #[inline]
    pub fn get(&self, row: usize) -> Option<Value> {
        match self {
            VecVal::Scalar(v) => Some(v.clone()),
            VecVal::Col(c, valid) => {
                if valid.as_ref().is_none_or(|v| v[row]) {
                    Some(c.get(row))
                } else {
                    None
                }
            }
        }
    }

    /// Predicate semantics: valid AND `Bool(true)` (anything else fails,
    /// matching [`Program::eval_bool`]).
    #[inline]
    pub fn truthy(&self, row: usize) -> bool {
        match self {
            VecVal::Scalar(v) => matches!(v, Value::Bool(true)),
            VecVal::Col(Column::Bool(c), valid) => {
                c[row] && valid.as_ref().is_none_or(|v| v[row])
            }
            VecVal::Col(..) => false,
        }
    }

    /// Whether rows `a` and `b` hold equal values, with the row path's
    /// `Value` equality semantics (floats via `f64 ==`, so NaN ≠ NaN).
    /// Both rows must be valid.
    #[inline]
    pub fn rows_eq(&self, a: usize, b: usize) -> bool {
        match self {
            VecVal::Scalar(_) => true,
            VecVal::Col(c, _) => match c {
                Column::Bool(v) => v[a] == v[b],
                Column::UInt(v) => v[a] == v[b],
                Column::Float(v) => v[a] == v[b],
                Column::Ip(v) => v[a] == v[b],
                Column::Str(v) => v[a] == v[b],
                Column::Val(v) => v[a] == v[b],
            },
        }
    }

    /// Hash row `row` exactly as the boxed [`Value`] would hash (the
    /// router's partition assignment must be byte-identical to the row
    /// path). Returns false if the row is invalid (hash state untouched).
    #[inline]
    pub fn hash_row<H: std::hash::Hasher>(&self, row: usize, state: &mut H) -> bool {
        use std::hash::Hash;
        match self {
            VecVal::Scalar(v) => {
                v.hash(state);
                true
            }
            VecVal::Col(c, valid) => {
                if valid.as_ref().is_some_and(|v| !v[row]) {
                    return false;
                }
                match c {
                    Column::Bool(v) => v[row].hash(state),
                    Column::UInt(v) => v[row].hash(state),
                    Column::Float(v) => v[row].to_bits().hash(state),
                    Column::Ip(v) => {
                        state.write_u8(3);
                        v[row].hash(state);
                    }
                    Column::Str(v) => v[row].hash(state),
                    Column::Val(v) => v[row].hash(state),
                }
                true
            }
        }
    }

    /// Materialize as an owned column over `keep` (indices into the live
    /// rows; `None` keeps all `n` rows). Rows must be valid — callers
    /// resolve validity before materializing.
    pub fn into_column(self, keep: Option<&[u32]>, n: usize) -> Column {
        match self {
            VecVal::Scalar(v) => Column::broadcast(&v, keep.map_or(n, <[u32]>::len)),
            VecVal::Col(c, _) => match keep {
                None => c,
                Some(k) => c.gather_rows(k),
            },
        }
    }
}

impl Program {
    /// Evaluate over every live row of `batch` at once. `None` means "no
    /// vector kernel for this program" — the caller must fall back to
    /// per-row [`eval`](Program::eval); it does NOT mean the rows failed.
    pub fn eval_vec(&self, batch: &ColumnBatch) -> Option<VecVal> {
        let n = batch.n_rows();
        let mut regs: Vec<Option<VecVal>> = (0..self.n_regs.max(1)).map(|_| None).collect();
        for ins in &self.instrs {
            match ins {
                Instr::Field { src, dst } => {
                    if *src >= batch.n_cols() {
                        return None;
                    }
                    regs[*dst] = Some(VecVal::Col(batch.gather(*src), None));
                }
                Instr::Const { val, dst } => regs[*dst] = Some(VecVal::Scalar(val.clone())),
                Instr::Bin { op, a, b, dst } => {
                    let r = bin_vec(*op, regs[*a].as_ref()?, regs[*b].as_ref()?, n)?;
                    regs[*dst] = Some(r);
                }
                Instr::Not { a, dst } => {
                    let r = not_vec(regs[*a].as_ref()?)?;
                    regs[*dst] = Some(r);
                }
                // No vector kernel for UDFs: arbitrary state, partial
                // results, and handle parameters — row fallback.
                Instr::Call { .. } => return None,
            }
        }
        regs[self.out].take()
    }
}

/// Numeric operand view: a scalar or a whole column, int or float.
#[derive(Clone, Copy)]
enum Num<'a> {
    SU(u64),
    SF(f64),
    VU(&'a [u64]),
    VF(&'a [f64]),
}

impl Num<'_> {
    #[inline]
    fn is_int(&self) -> bool {
        matches!(self, Num::SU(_) | Num::VU(_))
    }
    #[inline]
    fn u(&self, i: usize) -> u64 {
        match self {
            Num::SU(s) => *s,
            Num::VU(v) => v[i],
            _ => unreachable!("float operand on the int path"),
        }
    }
    #[inline]
    fn f(&self, i: usize) -> f64 {
        match self {
            Num::SU(s) => *s as f64,
            Num::SF(s) => *s,
            Num::VU(v) => v[i] as f64,
            Num::VF(v) => v[i],
        }
    }
}

fn num_view<'a>(v: &'a VecVal) -> Option<(Num<'a>, Option<&'a [bool]>)> {
    match v {
        VecVal::Scalar(Value::UInt(s)) => Some((Num::SU(*s), None)),
        VecVal::Scalar(Value::Float(s)) => Some((Num::SF(*s), None)),
        VecVal::Col(Column::UInt(c), valid) => Some((Num::VU(c), valid.as_deref())),
        VecVal::Col(Column::Float(c), valid) => Some((Num::VF(c), valid.as_deref())),
        _ => None,
    }
}

/// Elementwise AND of two optional validity masks.
fn and_valid(a: Option<&[bool]>, b: Option<&[bool]>) -> Option<Vec<bool>> {
    match (a, b) {
        (None, None) => None,
        (Some(m), None) | (None, Some(m)) => Some(m.to_vec()),
        (Some(x), Some(y)) => Some(x.iter().zip(y).map(|(a, b)| *a && *b).collect()),
    }
}

/// A materialized all-true-unless mask for kernels that add invalidity.
fn valid_buf(a: Option<&[bool]>, b: Option<&[bool]>, n: usize) -> Vec<bool> {
    and_valid(a, b).unwrap_or_else(|| vec![true; n])
}

fn bin_vec(op: BinOp, a: &VecVal, b: &VecVal, n: usize) -> Option<VecVal> {
    use BinOp::*;
    // Constant folding through the row evaluator. A constant that fails
    // to evaluate (e.g. literal division by zero) has no scalar
    // representation here — fall back to the row path, which discards
    // every tuple.
    if let (VecVal::Scalar(x), VecVal::Scalar(y)) = (a, b) {
        return eval_bin(op, x, y).map(VecVal::Scalar);
    }
    match op {
        Add | Sub | Mul | Div | Mod => arith_vec(op, a, b, n),
        Eq | Ne | Lt | Le | Gt | Ge => cmp_vec(op, a, b, n),
        And | Or => bool_vec(op, a, b, n),
        BitAnd | BitOr | BitXor => bit_vec(op, a, b, n),
    }
}

fn arith_vec(op: BinOp, a: &VecVal, b: &VecVal, n: usize) -> Option<VecVal> {
    use BinOp::*;
    let (na, va) = num_view(a)?;
    let (nb, vb) = num_view(b)?;
    if na.is_int() && nb.is_int() {
        let mut out = Vec::with_capacity(n);
        match op {
            Add => (0..n).for_each(|i| out.push(na.u(i).wrapping_add(nb.u(i)))),
            Sub => (0..n).for_each(|i| out.push(na.u(i).wrapping_sub(nb.u(i)))),
            Mul => (0..n).for_each(|i| out.push(na.u(i).wrapping_mul(nb.u(i)))),
            Div | Mod => {
                // Division by zero poisons the row, not the batch.
                let mut valid = valid_buf(va, vb, n);
                for i in 0..n {
                    let y = nb.u(i);
                    if y == 0 {
                        valid[i] = false;
                        out.push(0);
                    } else {
                        let x = na.u(i);
                        out.push(if matches!(op, Div) { x / y } else { x % y });
                    }
                }
                return Some(VecVal::Col(Column::UInt(out), Some(valid)));
            }
            _ => unreachable!(),
        }
        return Some(VecVal::Col(Column::UInt(out), and_valid(va, vb)));
    }
    // Mixed or float operands widen to f64, as in the row path.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = (na.f(i), nb.f(i));
        out.push(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Mod => x % y,
            _ => unreachable!(),
        });
    }
    Some(VecVal::Col(Column::Float(out), and_valid(va, vb)))
}

/// Comparable operand view for the ordering kernels.
enum Ord2<'a> {
    Num(Num<'a>),
    SI(u32),
    VI(&'a [u32]),
    SS(&'a Bytes),
    VS(&'a [Bytes]),
    SB(bool),
    VB(&'a [bool]),
}

fn ord_view<'a>(v: &'a VecVal) -> Option<(Ord2<'a>, Option<&'a [bool]>)> {
    if let Some((n, valid)) = num_view(v) {
        return Some((Ord2::Num(n), valid));
    }
    match v {
        VecVal::Scalar(Value::Ip(s)) => Some((Ord2::SI(*s), None)),
        VecVal::Scalar(Value::Str(s)) => Some((Ord2::SS(s), None)),
        VecVal::Scalar(Value::Bool(s)) => Some((Ord2::SB(*s), None)),
        VecVal::Col(Column::Ip(c), valid) => Some((Ord2::VI(c), valid.as_deref())),
        VecVal::Col(Column::Str(c), valid) => Some((Ord2::VS(c), valid.as_deref())),
        VecVal::Col(Column::Bool(c), valid) => Some((Ord2::VB(c), valid.as_deref())),
        _ => None,
    }
}

fn cmp_vec(op: BinOp, a: &VecVal, b: &VecVal, n: usize) -> Option<VecVal> {
    use BinOp::*;
    let test: fn(Ordering) -> bool = match op {
        Eq => Ordering::is_eq,
        Ne => Ordering::is_ne,
        Lt => Ordering::is_lt,
        Le => Ordering::is_le,
        Gt => Ordering::is_gt,
        Ge => Ordering::is_ge,
        _ => unreachable!(),
    };
    let (oa, va) = ord_view(a)?;
    let (ob, vb) = ord_view(b)?;
    let mut out = Vec::with_capacity(n);
    match (&oa, &ob) {
        // Int/int compares exactly; any float operand widens both sides
        // to f64 under total order — `Value::total_cmp` semantics.
        (Ord2::Num(x), Ord2::Num(y)) => {
            if x.is_int() && y.is_int() {
                (0..n).for_each(|i| out.push(test(x.u(i).cmp(&y.u(i)))));
            } else {
                (0..n).for_each(|i| out.push(test(x.f(i).total_cmp(&y.f(i)))));
            }
        }
        (Ord2::SI(x), Ord2::VI(y)) => (0..n).for_each(|i| out.push(test(x.cmp(&y[i])))),
        (Ord2::VI(x), Ord2::SI(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(y)))),
        (Ord2::VI(x), Ord2::VI(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(&y[i])))),
        (Ord2::SS(x), Ord2::VS(y)) => (0..n).for_each(|i| out.push(test((*x).cmp(&y[i])))),
        (Ord2::VS(x), Ord2::SS(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(y)))),
        (Ord2::VS(x), Ord2::VS(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(&y[i])))),
        (Ord2::SB(x), Ord2::VB(y)) => (0..n).for_each(|i| out.push(test(x.cmp(&y[i])))),
        (Ord2::VB(x), Ord2::SB(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(y)))),
        (Ord2::VB(x), Ord2::VB(y)) => (0..n).for_each(|i| out.push(test(x[i].cmp(&y[i])))),
        // Cross-type comparisons (tag order in the row path) are not
        // worth a kernel — fall back.
        _ => return None,
    }
    Some(VecVal::Col(Column::Bool(out), and_valid(va, vb)))
}

/// Boolean operand view.
enum BIn<'a> {
    S(bool),
    V(&'a [bool]),
}

impl BIn<'_> {
    #[inline]
    fn b(&self, i: usize) -> bool {
        match self {
            BIn::S(s) => *s,
            BIn::V(v) => v[i],
        }
    }
}

fn bool_view<'a>(v: &'a VecVal) -> Option<(BIn<'a>, Option<&'a [bool]>)> {
    match v {
        VecVal::Scalar(Value::Bool(s)) => Some((BIn::S(*s), None)),
        VecVal::Col(Column::Bool(c), valid) => Some((BIn::V(c), valid.as_deref())),
        _ => None,
    }
}

fn bool_vec(op: BinOp, a: &VecVal, b: &VecVal, n: usize) -> Option<VecVal> {
    let (ba, va) = bool_view(a)?;
    let (bb, vb) = bool_view(b)?;
    // Strict, like the straight-line row program: both operand registers
    // are always evaluated before the And/Or instruction runs.
    let mut out = Vec::with_capacity(n);
    match op {
        BinOp::And => (0..n).for_each(|i| out.push(ba.b(i) && bb.b(i))),
        BinOp::Or => (0..n).for_each(|i| out.push(ba.b(i) || bb.b(i))),
        _ => unreachable!(),
    }
    Some(VecVal::Col(Column::Bool(out), and_valid(va, vb)))
}

/// Bitwise operand view: `as_uint` semantics, so `Ip` widens to `u64`.
enum UIn<'a> {
    S(u64),
    VU(&'a [u64]),
    VI(&'a [u32]),
}

impl UIn<'_> {
    #[inline]
    fn u(&self, i: usize) -> u64 {
        match self {
            UIn::S(s) => *s,
            UIn::VU(v) => v[i],
            UIn::VI(v) => u64::from(v[i]),
        }
    }
}

fn uint_view<'a>(v: &'a VecVal) -> Option<(UIn<'a>, Option<&'a [bool]>)> {
    match v {
        VecVal::Scalar(Value::UInt(s)) => Some((UIn::S(*s), None)),
        VecVal::Scalar(Value::Ip(s)) => Some((UIn::S(u64::from(*s)), None)),
        VecVal::Col(Column::UInt(c), valid) => Some((UIn::VU(c), valid.as_deref())),
        VecVal::Col(Column::Ip(c), valid) => Some((UIn::VI(c), valid.as_deref())),
        _ => None,
    }
}

fn bit_vec(op: BinOp, a: &VecVal, b: &VecVal, n: usize) -> Option<VecVal> {
    let (ua, va) = uint_view(a)?;
    let (ub, vb) = uint_view(b)?;
    let mut out = Vec::with_capacity(n);
    match op {
        BinOp::BitAnd => (0..n).for_each(|i| out.push(ua.u(i) & ub.u(i))),
        BinOp::BitOr => (0..n).for_each(|i| out.push(ua.u(i) | ub.u(i))),
        BinOp::BitXor => (0..n).for_each(|i| out.push(ua.u(i) ^ ub.u(i))),
        _ => unreachable!(),
    }
    Some(VecVal::Col(Column::UInt(out), and_valid(va, vb)))
}

fn not_vec(a: &VecVal) -> Option<VecVal> {
    match a {
        VecVal::Scalar(Value::Bool(s)) => Some(VecVal::Scalar(Value::Bool(!s))),
        VecVal::Col(Column::Bool(c), valid) => Some(VecVal::Col(
            Column::Bool(c.iter().map(|b| !b).collect()),
            valid.clone(),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EvalScratch;
    use crate::params::ParamBindings;
    use crate::tuple::Tuple;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::plan::{Literal, PExpr};
    use gs_gsql::types::DataType;

    fn compile(pe: &PExpr) -> Program {
        Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
            .unwrap()
    }

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    fn bin(op: BinOp, l: PExpr, r: PExpr) -> PExpr {
        PExpr::Binary { op, left: Box::new(l), right: Box::new(r), ty: DataType::UInt }
    }

    /// Vector evaluation over a batch must agree row-for-row with the
    /// scalar evaluator over the corresponding tuples — including
    /// per-row failures (division by zero), which map to validity bits.
    fn assert_equiv(p: &Program, rows: &[Tuple]) {
        let cb = ColumnBatch::from_tuples(rows);
        let v = p.eval_vec(&cb).expect("kernel expected for this program");
        let mut s = EvalScratch::default();
        for (i, t) in rows.iter().enumerate() {
            assert_eq!(v.get(i), p.eval(t, &mut s), "row {i} diverged");
        }
    }

    #[test]
    fn arithmetic_and_div_by_zero_validity() {
        // (c0 + 7) / c1: row 2 divides by zero and must be invalid.
        let e = bin(BinOp::Div, bin(BinOp::Add, col(0), PExpr::Lit(Literal::UInt(7))), col(1));
        let p = compile(&e);
        let rows: Vec<Tuple> = [(5u64, 3u64), (9, 2), (1, 0), (100, 10)]
            .iter()
            .map(|(a, b)| Tuple::new(vec![Value::UInt(*a), Value::UInt(*b)]))
            .collect();
        assert_equiv(&p, &rows);
    }

    #[test]
    fn comparisons_across_numeric_types() {
        let e = bin(BinOp::Gt, col(0), PExpr::Lit(Literal::Float(2.5)));
        let p = compile(&e);
        let rows: Vec<Tuple> =
            (0..6u64).map(|i| Tuple::new(vec![Value::UInt(i)])).collect();
        assert_equiv(&p, &rows);
    }

    #[test]
    fn logic_and_not() {
        // NOT (c0 = 80 AND c1 < 10)
        let e = PExpr::Unary {
            op: gs_gsql::ast::UnOp::Not,
            arg: Box::new(bin(
                BinOp::And,
                bin(BinOp::Eq, col(0), PExpr::Lit(Literal::UInt(80))),
                bin(BinOp::Lt, col(1), PExpr::Lit(Literal::UInt(10))),
            )),
        };
        let p = compile(&e);
        let rows: Vec<Tuple> = [(80u64, 5u64), (80, 15), (81, 5)]
            .iter()
            .map(|(a, b)| Tuple::new(vec![Value::UInt(*a), Value::UInt(*b)]))
            .collect();
        assert_equiv(&p, &rows);
    }

    #[test]
    fn bitwise_widens_ip() {
        let e = PExpr::Binary {
            op: BinOp::BitAnd,
            left: Box::new(PExpr::Col { index: 0, ty: DataType::Ip }),
            right: Box::new(PExpr::Lit(Literal::UInt(0xffff_0000))),
            ty: DataType::UInt,
        };
        let p = compile(&e);
        let rows: Vec<Tuple> =
            [0x0a000001u32, 0xc0a80102].iter().map(|ip| Tuple::new(vec![Value::Ip(*ip)])).collect();
        assert_equiv(&p, &rows);
    }

    #[test]
    fn string_equality() {
        let e = PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PExpr::Col { index: 0, ty: DataType::Str }),
            right: Box::new(PExpr::Lit(Literal::Str("abc".into()))),
            ty: DataType::Bool,
        };
        let p = compile(&e);
        let rows = vec![
            Tuple::new(vec![Value::Str(Bytes::from_static(b"abc"))]),
            Tuple::new(vec![Value::Str(Bytes::from_static(b"xyz"))]),
        ];
        assert_equiv(&p, &rows);
    }

    #[test]
    fn udf_has_no_kernel() {
        let mut store = FileStore::new();
        store.insert("t.tbl", b"10.0.0.0/8 7\n".to_vec());
        let e = PExpr::Call {
            udf: "getlpmid".into(),
            args: vec![
                PExpr::Col { index: 0, ty: DataType::Ip },
                PExpr::Lit(Literal::Str("t.tbl".into())),
            ],
            ret: DataType::UInt,
            partial: true,
        };
        let p =
            Program::compile(&e, &ParamBindings::new(), &UdfRegistry::with_builtins(), &store)
                .unwrap();
        let cb = ColumnBatch::from_tuples(&[Tuple::new(vec![Value::Ip(1)])]);
        assert!(p.eval_vec(&cb).is_none(), "UDF programs must fall back to rows");
    }

    #[test]
    fn selection_vector_is_honored() {
        let e = bin(BinOp::Mul, col(0), PExpr::Lit(Literal::UInt(2)));
        let p = compile(&e);
        let cb = ColumnBatch::from_tuples(
            &(0..5u64).map(|i| Tuple::new(vec![Value::UInt(i)])).collect::<Vec<_>>(),
        )
        .narrow(vec![1, 4]);
        let v = p.eval_vec(&cb).unwrap();
        assert_eq!(v.get(0), Some(Value::UInt(2)));
        assert_eq!(v.get(1), Some(Value::UInt(8)));
    }
}
