//! The expression compiler.
//!
//! "The GSQL processor is actually a code generator" (paper §3). Our
//! analogue: a resolved [`PExpr`] compiles into a flat register-machine
//! [`Program`] — straight-line instructions over a reusable register file,
//! evaluated with no per-tuple allocation. Query parameters are bound at
//! compile (instantiation) time, as are UDF handle parameters, so each
//! instantiated program is as close to generated code as safe Rust gets.
//!
//! Programs evaluate over any [`FieldSource`]: a materialized [`Tuple`]
//! (HFTA operators) or a parsed packet via the protocol interpretation
//! library (LFTA operators). A missing field (e.g. `destPort` of a
//! malformed packet) or a partial-UDF miss aborts evaluation, discarding
//! the tuple — the paper's foreign-key-join semantics.

pub mod vector;

use crate::params::ParamBindings;
use crate::tuple::Tuple;
use crate::udf::{HandleResolver, ScalarUdf, UdfRegistry};
use crate::value::Value;
use crate::RuntimeError;
use gs_gsql::ast::{BinOp, UnOp};
use gs_gsql::plan::PExpr;
use gs_packet::interp::FieldDef;
use gs_packet::PacketView;

/// Anything a program can read input fields from.
pub trait FieldSource {
    /// Field by schema index; `None` discards the tuple.
    fn field(&self, idx: usize) -> Option<Value>;
}

impl FieldSource for Tuple {
    #[inline]
    fn field(&self, idx: usize) -> Option<Value> {
        Some(self.get(idx).clone())
    }
}

/// A parsed packet exposed through a protocol's interpretation functions.
pub struct PacketFields<'a> {
    view: &'a PacketView,
    fields: &'static [FieldDef],
}

impl<'a> PacketFields<'a> {
    /// Wrap a parsed packet with its protocol's field accessors.
    pub fn new(view: &'a PacketView, fields: &'static [FieldDef]) -> PacketFields<'a> {
        PacketFields { view, fields }
    }
}

impl FieldSource for PacketFields<'_> {
    #[inline]
    fn field(&self, idx: usize) -> Option<Value> {
        let f = self.fields.get(idx)?;
        (f.accessor)(self.view).map(Value::from_field)
    }
}

/// One instruction.
enum Instr {
    /// `reg[dst] = source.field(src)`.
    Field { src: usize, dst: usize },
    /// `reg[dst] = val`.
    Const { val: Value, dst: usize },
    /// `reg[dst] = reg[a] op reg[b]`.
    Bin { op: BinOp, a: usize, b: usize, dst: usize },
    /// `reg[dst] = !reg[a]`.
    Not { a: usize, dst: usize },
    /// `reg[dst] = udf(reg[args]...)`; a `None` result aborts (partial).
    Call { f: usize, args: Vec<usize>, dst: usize },
}

/// A compiled expression program.
pub struct Program {
    instrs: Vec<Instr>,
    udfs: Vec<Box<dyn ScalarUdf>>,
    out: usize,
    n_regs: usize,
}

/// Reusable register file; create once per operator and reuse per tuple.
#[derive(Debug, Default)]
pub struct EvalScratch {
    regs: Vec<Value>,
}

impl Program {
    /// Compile `pe`, binding parameters and pre-processing UDF handles.
    pub fn compile(
        pe: &PExpr,
        params: &ParamBindings,
        registry: &UdfRegistry,
        resolver: &dyn HandleResolver,
    ) -> Result<Program, RuntimeError> {
        let mut c = Compiler {
            instrs: Vec::new(),
            udfs: Vec::new(),
            next_reg: 0,
            params,
            registry,
            resolver,
        };
        let out = c.emit(pe)?;
        Ok(Program { instrs: c.instrs, udfs: c.udfs, out, n_regs: c.next_reg })
    }

    /// Evaluate over `src`. `None` discards the tuple.
    pub fn eval<S: FieldSource>(&self, src: &S, scratch: &mut EvalScratch) -> Option<Value> {
        scratch.regs.resize(self.n_regs.max(1), Value::UInt(0));
        let regs = &mut scratch.regs;
        for ins in &self.instrs {
            match ins {
                Instr::Field { src: i, dst } => regs[*dst] = src.field(*i)?,
                Instr::Const { val, dst } => regs[*dst] = val.clone(),
                Instr::Bin { op, a, b, dst } => {
                    regs[*dst] = eval_bin(*op, &regs[*a], &regs[*b])?;
                }
                Instr::Not { a, dst } => regs[*dst] = Value::Bool(!regs[*a].as_bool()?),
                Instr::Call { f, args, dst } => {
                    // Arguments are gathered into a small stack buffer.
                    let mut buf: [Value; MAX_UDF_ARGS] =
                        std::array::from_fn(|_| Value::UInt(0));
                    for (k, &r) in args.iter().enumerate() {
                        buf[k] = regs[r].clone();
                    }
                    regs[*dst] = self.udfs[*f].eval(&buf[..args.len()])?;
                }
            }
        }
        Some(regs[self.out].clone())
    }

    /// Evaluate as a predicate; a discarded tuple fails the predicate.
    #[inline]
    pub fn eval_bool<S: FieldSource>(&self, src: &S, scratch: &mut EvalScratch) -> bool {
        matches!(self.eval(src, scratch), Some(Value::Bool(true)))
    }

    /// Instruction count (diagnostics).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for compiled expressions).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Maximum UDF arity supported by the evaluator's stack buffer.
pub const MAX_UDF_ARGS: usize = 8;

struct Compiler<'a> {
    instrs: Vec<Instr>,
    udfs: Vec<Box<dyn ScalarUdf>>,
    next_reg: usize,
    params: &'a ParamBindings,
    registry: &'a UdfRegistry,
    resolver: &'a dyn HandleResolver,
}

impl<'a> Compiler<'a> {
    fn reg(&mut self) -> usize {
        self.next_reg += 1;
        self.next_reg - 1
    }

    fn emit(&mut self, pe: &PExpr) -> Result<usize, RuntimeError> {
        match pe {
            PExpr::Col { index, .. } => {
                let dst = self.reg();
                self.instrs.push(Instr::Field { src: *index, dst });
                Ok(dst)
            }
            PExpr::Lit(l) => {
                let dst = self.reg();
                self.instrs.push(Instr::Const { val: Value::from_literal(l), dst });
                Ok(dst)
            }
            PExpr::Param { name, .. } => {
                let v = self
                    .params
                    .get(name)
                    .ok_or_else(|| {
                        RuntimeError::msg(format!("unbound query parameter `${name}`"))
                    })?
                    .clone();
                let dst = self.reg();
                self.instrs.push(Instr::Const { val: v, dst });
                Ok(dst)
            }
            PExpr::Unary { op: UnOp::Not, arg } => {
                let a = self.emit(arg)?;
                let dst = self.reg();
                self.instrs.push(Instr::Not { a, dst });
                Ok(dst)
            }
            PExpr::Binary { op, left, right, .. } => {
                let a = self.emit(left)?;
                let b = self.emit(right)?;
                let dst = self.reg();
                self.instrs.push(Instr::Bin { op: *op, a, b, dst });
                Ok(dst)
            }
            PExpr::Call { udf, args, .. } => {
                if args.len() > MAX_UDF_ARGS {
                    return Err(RuntimeError::msg(format!(
                        "function `{udf}` exceeds the {MAX_UDF_ARGS}-argument limit"
                    )));
                }
                // Constant-evaluable arguments double as handle bindings.
                let handles: Vec<Option<Value>> = args
                    .iter()
                    .map(|a| match a {
                        PExpr::Lit(l) => Some(Value::from_literal(l)),
                        PExpr::Param { name, .. } => self.params.get(name).cloned(),
                        _ => None,
                    })
                    .collect();
                let instance = self.registry.instantiate(udf, &handles, self.resolver)?;
                let f = self.udfs.len();
                self.udfs.push(instance);
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.emit(a)?);
                }
                let dst = self.reg();
                self.instrs.push(Instr::Call { f, args: arg_regs, dst });
                Ok(dst)
            }
        }
    }
}

/// Binary operation on values. `None` discards the tuple (type confusion
/// cannot happen on analyzer-produced programs; division by zero can).
fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => match (a, b) {
            (Value::UInt(x), Value::UInt(y)) => Some(Value::UInt(match op {
                Add => x.wrapping_add(*y),
                Sub => x.wrapping_sub(*y),
                Mul => x.wrapping_mul(*y),
                Div => x.checked_div(*y)?,
                Mod => x.checked_rem(*y)?,
                _ => unreachable!(),
            })),
            _ => {
                let x = a.as_float()?;
                let y = b.as_float()?;
                Some(Value::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Mod => x % y,
                    _ => unreachable!(),
                }))
            }
        },
        BitAnd => Some(Value::UInt(a.as_uint()? & b.as_uint()?)),
        BitOr => Some(Value::UInt(a.as_uint()? | b.as_uint()?)),
        BitXor => Some(Value::UInt(a.as_uint()? ^ b.as_uint()?)),
        And => Some(Value::Bool(a.as_bool()? && b.as_bool()?)),
        Or => Some(Value::Bool(a.as_bool()? || b.as_bool()?)),
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = a.total_cmp(b);
            Some(Value::Bool(match op {
                Eq => ord.is_eq(),
                Ne => ord.is_ne(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::FileStore;
    use gs_gsql::plan::Literal;
    use gs_gsql::types::DataType;

    fn compile(pe: &PExpr) -> Program {
        Program::compile(
            pe,
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap()
    }

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    fn lit(v: u64) -> PExpr {
        PExpr::Lit(Literal::UInt(v))
    }

    fn bin(op: BinOp, l: PExpr, r: PExpr, ty: DataType) -> PExpr {
        PExpr::Binary { op, left: Box::new(l), right: Box::new(r), ty }
    }

    #[test]
    fn arithmetic_over_tuple() {
        // (c0 + 5) * c1
        let e = bin(
            BinOp::Mul,
            bin(BinOp::Add, col(0), lit(5), DataType::UInt),
            col(1),
            DataType::UInt,
        );
        let p = compile(&e);
        let t = Tuple::new(vec![Value::UInt(3), Value::UInt(2)]);
        let mut s = EvalScratch::default();
        assert_eq!(p.eval(&t, &mut s), Some(Value::UInt(16)));
        // Scratch reuse across tuples.
        let t2 = Tuple::new(vec![Value::UInt(0), Value::UInt(100)]);
        assert_eq!(p.eval(&t2, &mut s), Some(Value::UInt(500)));
    }

    #[test]
    fn bucket_division_truncates() {
        let e = bin(BinOp::Div, col(0), lit(60), DataType::UInt);
        let p = compile(&e);
        let mut s = EvalScratch::default();
        let t = Tuple::new(vec![Value::UInt(119)]);
        assert_eq!(p.eval(&t, &mut s), Some(Value::UInt(1)));
    }

    #[test]
    fn division_by_zero_discards() {
        let e = bin(BinOp::Div, col(0), lit(0), DataType::UInt);
        let p = compile(&e);
        let mut s = EvalScratch::default();
        assert_eq!(p.eval(&Tuple::new(vec![Value::UInt(4)]), &mut s), None);
    }

    #[test]
    fn float_mixing() {
        let e = bin(BinOp::Div, PExpr::Lit(Literal::Float(1.0)), lit(4), DataType::Float);
        let p = compile(&e);
        let mut s = EvalScratch::default();
        assert_eq!(p.eval(&Tuple::new(vec![]), &mut s), Some(Value::Float(0.25)));
    }

    #[test]
    fn predicates_and_logic() {
        // c0 = 80 AND NOT (c1 > 10)
        let e = bin(
            BinOp::And,
            bin(BinOp::Eq, col(0), lit(80), DataType::Bool),
            PExpr::Unary {
                op: UnOp::Not,
                arg: Box::new(bin(BinOp::Gt, col(1), lit(10), DataType::Bool)),
            },
            DataType::Bool,
        );
        let p = compile(&e);
        let mut s = EvalScratch::default();
        assert!(p.eval_bool(&Tuple::new(vec![Value::UInt(80), Value::UInt(5)]), &mut s));
        assert!(!p.eval_bool(&Tuple::new(vec![Value::UInt(80), Value::UInt(11)]), &mut s));
        assert!(!p.eval_bool(&Tuple::new(vec![Value::UInt(81), Value::UInt(5)]), &mut s));
    }

    #[test]
    fn bit_operations() {
        let e = bin(BinOp::BitAnd, col(0), lit(0x12), DataType::UInt);
        let p = compile(&e);
        let mut s = EvalScratch::default();
        assert_eq!(p.eval(&Tuple::new(vec![Value::UInt(0x1F)]), &mut s), Some(Value::UInt(0x12)));
    }

    #[test]
    fn params_bind_at_compile_time() {
        let e = bin(
            BinOp::Eq,
            col(0),
            PExpr::Param { name: "port".into(), ty: DataType::UInt },
            DataType::Bool,
        );
        let params = ParamBindings::new().with("port", Value::UInt(443));
        let p = Program::compile(
            &e,
            &params,
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap();
        let mut s = EvalScratch::default();
        assert!(p.eval_bool(&Tuple::new(vec![Value::UInt(443)]), &mut s));
        assert!(!p.eval_bool(&Tuple::new(vec![Value::UInt(80)]), &mut s));
        // Unbound parameter fails instantiation, not evaluation.
        assert!(Program::compile(
            &e,
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new()
        )
        .is_err());
    }

    #[test]
    fn partial_udf_discards_tuple() {
        let mut store = FileStore::new();
        store.insert("t.tbl", b"10.0.0.0/8 7\n".to_vec());
        let e = PExpr::Call {
            udf: "getlpmid".into(),
            args: vec![
                PExpr::Col { index: 0, ty: DataType::Ip },
                PExpr::Lit(Literal::Str("t.tbl".into())),
            ],
            ret: DataType::UInt,
            partial: true,
        };
        let p = Program::compile(
            &e,
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &store,
        )
        .unwrap();
        let mut s = EvalScratch::default();
        assert_eq!(
            p.eval(&Tuple::new(vec![Value::Ip(0x0a010101)]), &mut s),
            Some(Value::UInt(7))
        );
        assert_eq!(p.eval(&Tuple::new(vec![Value::Ip(0x0b000001)]), &mut s), None);
    }

    #[test]
    fn packet_field_source() {
        let frame = gs_packet::builder::FrameBuilder::tcp(0x0a000001, 2, 999, 80)
            .payload(b"GET / HTTP/1.0")
            .build_ethernet();
        let view = PacketView::parse(gs_packet::CapPacket::full(
            5_000_000_000,
            0,
            gs_packet::capture::LinkType::Ethernet,
            frame,
        ));
        let proto = gs_packet::interp::protocol("tcp").unwrap();
        let src = PacketFields::new(&view, proto.fields);
        let dp = proto.field_index("destPort").unwrap();
        let e = bin(BinOp::Eq, col(dp), lit(80), DataType::Bool);
        let p = compile(&e);
        let mut s = EvalScratch::default();
        assert!(p.eval_bool(&src, &mut s));

        // A UDP packet read through the TCP schema discards.
        let udp = gs_packet::builder::FrameBuilder::udp(1, 2, 53, 53).build_ethernet();
        let uview = PacketView::parse(gs_packet::CapPacket::full(
            0,
            0,
            gs_packet::capture::LinkType::Ethernet,
            udp,
        ));
        let usrc = PacketFields::new(&uview, proto.fields);
        assert_eq!(p.eval(&usrc, &mut s), None);
    }

    #[test]
    fn string_comparisons() {
        let e = PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(PExpr::Col { index: 0, ty: DataType::Str }),
            right: Box::new(PExpr::Lit(Literal::Str("abc".into()))),
            ty: DataType::Bool,
        };
        let p = compile(&e);
        let mut s = EvalScratch::default();
        let t = Tuple::new(vec![Value::Str(bytes::Bytes::from_static(b"abc"))]);
        assert!(p.eval_bool(&t, &mut s));
    }
}
