//! The Gigascope execution runtime.
//!
//! Consumes logical plans from `gs-gsql` and executes them over packets
//! and tuple streams:
//!
//! - [`value`] / [`tuple`]: the runtime data representation;
//! - [`punct`]: ordering-update tokens (punctuation) that unblock
//!   multi-stream operators when one input runs dry (paper §3,
//!   "Unblocking Operators");
//! - [`batch`]: columnar (structure-of-arrays) batches with selection
//!   vectors — the hot-path representation between HFTA operators;
//! - [`expr`]: the expression compiler — GSQL's C/C++ code generation
//!   becomes flat register-machine programs evaluated without per-tuple
//!   allocation, plus vectorized kernels over columnar batches
//!   ([`expr::vector`]);
//! - [`udf`]: the function library — longest-prefix match over a loaded
//!   prefix table (`getlpmid`), a Thompson-NFA regular-expression engine
//!   (`str_match_regex`), and friends — with pass-by-handle parameter
//!   pre-processing at instantiation;
//! - [`ops`]: the stream operators: the LFTA executor (prefilter,
//!   protocol interpretation, selection/projection, direct-mapped
//!   pre-aggregation), exact HFTA aggregation with ordered flushing,
//!   the window join, the order-preserving merge, and the user-written
//!   IP-defragmentation node;
//! - [`qos`]: overload shedding policies (the paper's "highly processed
//!   tuples are more valuable" heuristic);
//! - [`faults`]: deterministic fault injection (seeded panics, poisoned
//!   locks, slow consumers, corrupt tuples) driving the engines'
//!   containment and quarantine machinery;
//! - [`snapshot`]: versioned, checksummed operator-state snapshots — the
//!   hand-rolled binary format checkpoint/restore is built on;
//! - [`durable`]: the durable checkpoint store — crash-consistent
//!   segment files plus an append-only emission log, with the recovery
//!   manager that resumes a killed daemon mid-window;
//! - [`stats`]: the self-monitoring counters every layer keeps and the
//!   registry that snapshots them (paper §4 — Gigascope monitors itself
//!   with ordinary streams);
//! - [`params`]: query-parameter bindings and handle registration.

#![warn(missing_docs)]

pub mod batch;
pub mod durable;
pub mod expr;
pub mod faults;
pub mod ops;
pub mod params;
pub mod punct;
pub mod qos;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod udf;
pub mod value;

pub use params::ParamBindings;
pub use punct::Punct;
pub use tuple::{StreamItem, Tuple};
pub use value::Value;

/// Errors raised while compiling plans or instantiating queries.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError(
    /// Human-readable message.
    pub String,
);

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeError {
    /// Build an error from anything printable.
    pub fn msg(m: impl Into<String>) -> RuntimeError {
        RuntimeError(m.into())
    }
}
