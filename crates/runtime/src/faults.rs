//! Deterministic fault injection.
//!
//! Gigascope runs unattended at the capture point: a single misbehaving
//! query must not take the collector down, and — following DBSP's
//! determinism-first discipline — the failure scenarios themselves must
//! be *replayable*, not flaky. A [`FaultPlan`] describes exactly which
//! node misbehaves, how, and when (counted in consumed batches), so a
//! fault run is as reproducible as a fault-free one. Plans are built
//! explicitly or drawn from a seed via the in-repo `gs-rand` shim
//! (fully offline, no wall-clock or OS randomness involved).
//!
//! The injector deliberately reuses the *real* failure paths: an
//! injected panic is an ordinary `panic!` raised inside the engine's
//! containment boundary, an injected corrupt tuple is a genuinely
//! malformed tuple handed to the operator, an injected poisoned lock is
//! a mutex whose holder really panicked. Nothing is simulated at a
//! layer the production code does not exercise.
//!
//! Containment outcomes are accounted in a [`FaultStats`] block
//! (`fault_injected` / `faults_contained` / `queries_failed`) that the
//! engines register in their [`StatsRegistry`](crate::stats) under the
//! node name `faults`, so injection campaigns are observable through
//! the ordinary `GS_STATS` self-monitoring stream.

use crate::stats::{Counter, StatSource};
use crate::tuple::{StreamItem, Tuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, PoisonError};

/// How a targeted node misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic while consuming the `at_batch`-th batch (1-based) — the
    /// classic operator bug. The panic unwinds into the engine's
    /// containment boundary; nothing about the panic itself is special.
    PanicOnBatch {
        /// Which consumed batch triggers the panic (1 = the first).
        at_batch: u64,
    },
    /// Poison a shared lock at the `at_batch`-th batch: a helper thread
    /// acquires the [`poison_target`](FaultPlan::poison_target) mutex
    /// and panics while holding it. Poison-tolerant callers
    /// (`unwrap_or_else(PoisonError::into_inner)`) keep running;
    /// intolerant ones would cascade the abort — which is exactly what
    /// this fault exists to catch.
    PoisonLock {
        /// Which consumed batch triggers the poisoning.
        at_batch: u64,
    },
    /// Sleep `delay_ms` before each batch from `at_batch` on — a slow
    /// consumer that backs up its input queue (and, with a watchdog
    /// armed and the delay long enough, gets force-closed).
    SlowConsumer {
        /// First affected batch (1-based).
        at_batch: u64,
        /// Per-batch processing delay, milliseconds.
        delay_ms: u64,
    },
    /// Truncate every tuple of the `at_batch`-th batch to `keep_cols`
    /// columns — the corrupt-transport scenario. Operators indexing the
    /// missing columns panic, which the containment boundary turns into
    /// a quarantined query instead of an abort.
    CorruptTuple {
        /// Which consumed batch is corrupted (1-based).
        at_batch: u64,
        /// Columns to keep; `0` produces empty tuples.
        keep_cols: usize,
    },
}

impl FaultKind {
    /// The batch index (1-based) at which this fault first acts.
    pub fn at_batch(&self) -> u64 {
        match *self {
            FaultKind::PanicOnBatch { at_batch }
            | FaultKind::PoisonLock { at_batch }
            | FaultKind::SlowConsumer { at_batch, .. }
            | FaultKind::CorruptTuple { at_batch, .. } => at_batch,
        }
    }
}

/// One injected fault: which node, what goes wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Target node — an HFTA output stream name (`perport`, or a
    /// partition shard `perport#2`).
    pub node: String,
    /// The misbehavior.
    pub kind: FaultKind,
}

/// A deterministic fault campaign: the full description of everything
/// that will go wrong in a run. Cloneable and engine-agnostic; the
/// synchronous engine and the threaded manager both consume it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The injected faults, in declaration order.
    pub specs: Vec<FaultSpec>,
    /// Shared mutex that [`FaultKind::PoisonLock`] poisons. Engines
    /// don't use the lock for anything; it exists so poison tolerance
    /// is exercised by a *really* poisoned `std::sync::Mutex`.
    poison_target: Arc<Mutex<u64>>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add `kind` at `node`; builder-style.
    pub fn with(mut self, node: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.specs.push(FaultSpec { node: node.into(), kind });
        self
    }

    /// Shorthand for the common case: panic at `node` on its `n`-th
    /// consumed batch.
    pub fn panic_at(self, node: impl Into<String>, n: u64) -> FaultPlan {
        self.with(node, FaultKind::PanicOnBatch { at_batch: n })
    }

    /// Draw a random single-fault plan over `nodes` from `seed` —
    /// deterministic: the same seed and node list always produce the
    /// same plan, on any machine (the `gs-rand` shim is bit-stable).
    pub fn seeded(seed: u64, nodes: &[&str]) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if nodes.is_empty() {
            return plan;
        }
        let node = nodes[rng.gen_range(0..nodes.len())];
        let at_batch = rng.gen_range(1..16u64);
        let kind = match rng.gen_range(0..4u8) {
            0 => FaultKind::PanicOnBatch { at_batch },
            1 => FaultKind::PoisonLock { at_batch },
            2 => FaultKind::SlowConsumer { at_batch, delay_ms: rng.gen_range(1..4) },
            _ => FaultKind::CorruptTuple { at_batch, keep_cols: rng.gen_range(0..2) as usize },
        };
        plan.specs.push(FaultSpec { node: node.to_string(), kind });
        plan
    }

    /// Whether any fault targets `node`.
    pub fn targets(&self, node: &str) -> bool {
        self.specs.iter().any(|s| s.node == node)
    }

    /// Arm the faults aimed at `node`: the per-node injector the engine
    /// consults on every batch. Cheap (`None`) for untargeted nodes.
    pub fn armed(&self, node: &str, stats: &Arc<FaultStats>) -> Option<NodeInjector> {
        let kinds: Vec<FaultKind> =
            self.specs.iter().filter(|s| s.node == node).map(|s| s.kind.clone()).collect();
        if kinds.is_empty() {
            return None;
        }
        Some(NodeInjector {
            kinds,
            batches: 0,
            stats: stats.clone(),
            poison_target: self.poison_target.clone(),
        })
    }

    /// The shared lock [`FaultKind::PoisonLock`] poisons; callers that
    /// want to *observe* the poisoning (tests) can probe it here.
    pub fn poison_target(&self) -> &Arc<Mutex<u64>> {
        &self.poison_target
    }
}

/// Containment accounting, registered as GS_STATS node `faults`.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Faults the injector actually fired (a plan entry whose batch
    /// never arrives stays at zero).
    pub fault_injected: Counter,
    /// Panics caught at a containment boundary — injected or organic.
    pub faults_contained: Counter,
    /// Queries marked `Failed` in the run's health report.
    pub queries_failed: Counter,
}

impl StatSource for FaultStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("fault_injected", self.fault_injected.get()),
            ("faults_contained", self.faults_contained.get()),
            ("queries_failed", self.queries_failed.get()),
        ]
    }
}

/// The armed per-node fault state: counts consumed batches and acts
/// when a targeted batch arrives. One injector per node instance, owned
/// by whatever thread runs the node — no synchronization on the batch
/// path beyond the (untouched in the common case) counter.
pub struct NodeInjector {
    kinds: Vec<FaultKind>,
    batches: u64,
    stats: Arc<FaultStats>,
    poison_target: Arc<Mutex<u64>>,
}

impl NodeInjector {
    /// Account one consumed batch and run any fault due at it. May
    /// mutate `items` (corruption), sleep (slow consumer), poison the
    /// plan's shared lock, or panic (the injected operator bug) —
    /// callers invoke this *inside* their containment boundary.
    pub fn on_batch(&mut self, items: &mut [StreamItem]) {
        self.batches += 1;
        let n = self.batches;
        // Indexed loop: the panic arm must not hold a borrow of `self`
        // while unwinding through the counter bump.
        for i in 0..self.kinds.len() {
            match self.kinds[i] {
                FaultKind::PanicOnBatch { at_batch } if at_batch == n => {
                    self.stats.fault_injected.inc();
                    panic!("injected fault: panic at batch {n}");
                }
                FaultKind::PoisonLock { at_batch } if at_batch == n => {
                    self.stats.fault_injected.inc();
                    poison(&self.poison_target);
                }
                FaultKind::SlowConsumer { at_batch, delay_ms } if n >= at_batch => {
                    if n == at_batch {
                        self.stats.fault_injected.inc();
                    }
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                FaultKind::CorruptTuple { at_batch, keep_cols } if at_batch == n => {
                    self.stats.fault_injected.inc();
                    for item in items.iter_mut() {
                        if let StreamItem::Tuple(t) = item {
                            let vals: Vec<_> =
                                t.values().iter().take(keep_cols).cloned().collect();
                            *item = StreamItem::Tuple(Tuple::new(vals));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Disk faults: the durable checkpoint store's injection surface.
// ---------------------------------------------------------------------

/// One step of the durable store's crash-consistent write protocol.
/// Checkpointing a cut is `TempWrite → TempFsync → Rename → DirFsync`;
/// committing an epoch's emission markers is `LogAppend → LogFsync`.
/// Faults target a `(boundary, step)` coordinate, so a plan names the
/// exact interleaving point a process death interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Write the full sealed segment to its temporary name.
    TempWrite,
    /// Fsync the temporary segment file.
    TempFsync,
    /// Atomically rename the temporary file to its final segment name.
    Rename,
    /// Fsync the state directory (makes the rename durable).
    DirFsync,
    /// Append one record to the emission log.
    LogAppend,
    /// Fsync the emission log.
    LogFsync,
}

/// How a targeted disk operation misbehaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The process dies *before* the step runs. Un-fsynced effects of
    /// earlier steps are rolled back the way a machine crash would lose
    /// them: `CrashBefore(TempFsync)` tears the just-written temp file
    /// to half its bytes, `CrashBefore(DirFsync)` reverts the
    /// not-yet-durable rename, `CrashBefore(LogFsync)` tears the
    /// just-appended record mid-byte.
    CrashBefore(DiskOp),
    /// The step completes, then the process dies — the "lucky" crash
    /// where the unsynced data happened to reach the platter.
    CrashAfter(DiskOp),
    /// A short write: only `keep` bytes of the payload land, then the
    /// process dies. Meaningful for [`DiskOp::TempWrite`] and
    /// [`DiskOp::LogAppend`].
    ShortWrite {
        /// Payload bytes that make it to disk before the crash.
        keep: usize,
    },
    /// The step fails with `ENOSPC` — no crash, the process keeps
    /// running (the dead-letter path). Fires on every matching step
    /// from the spec's boundary on, up to `times` failures total.
    Enospc {
        /// How many times the error fires before the disk "recovers".
        times: u32,
    },
}

/// One injected disk fault: at which checkpoint boundary (1-based,
/// counted by [`begin_boundary`](FaultyDisk)) and at which protocol
/// step. Crash kinds match their boundary exactly; [`DiskFaultKind::Enospc`]
/// matches every boundary from `at_boundary` on while it has failures
/// left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFaultSpec {
    /// 1-based checkpoint boundary the fault arms at.
    pub at_boundary: u64,
    /// Protocol step the fault targets.
    pub op: DiskOp,
    /// The misbehavior.
    pub kind: DiskFaultKind,
}

/// A deterministic disk-fault campaign for the durable store. Like
/// [`FaultPlan`], a plan is data: the same plan replays the same
/// failure on any machine.
#[derive(Debug, Clone, Default)]
pub struct DiskFaultPlan {
    /// The injected faults, in declaration order.
    pub specs: Vec<DiskFaultSpec>,
}

impl DiskFaultPlan {
    /// An empty plan (healthy disk).
    pub fn new() -> DiskFaultPlan {
        DiskFaultPlan::default()
    }

    /// Add a fault; builder-style.
    pub fn with(mut self, at_boundary: u64, op: DiskOp, kind: DiskFaultKind) -> DiskFaultPlan {
        self.specs.push(DiskFaultSpec { at_boundary, op, kind });
        self
    }

    /// Crash the process just before `op` at checkpoint `n`.
    pub fn crash_before(self, n: u64, op: DiskOp) -> DiskFaultPlan {
        self.with(n, op, DiskFaultKind::CrashBefore(op))
    }

    /// Crash the process just after `op` at checkpoint `n`.
    pub fn crash_after(self, n: u64, op: DiskOp) -> DiskFaultPlan {
        self.with(n, op, DiskFaultKind::CrashAfter(op))
    }

    /// Fail `op` with ENOSPC `times` times starting at checkpoint `n`.
    pub fn enospc(self, n: u64, op: DiskOp, times: u32) -> DiskFaultPlan {
        self.with(n, op, DiskFaultKind::Enospc { times })
    }

    /// Whether any spec is a crash (latching) fault — the session
    /// drivers use this to decide between restart-and-recover and
    /// keep-running expectations.
    pub fn has_crash(&self) -> bool {
        self.specs.iter().any(|s| {
            matches!(
                s.kind,
                DiskFaultKind::CrashBefore(_)
                    | DiskFaultKind::CrashAfter(_)
                    | DiskFaultKind::ShortWrite { .. }
            )
        })
    }
}

/// The error every disk operation returns once a simulated crash has
/// latched (and the error crash faults surface at the faulted call).
pub fn crash_error() -> std::io::Error {
    std::io::Error::other("simulated crash: process died")
}

/// Whether `e` is the simulated-crash error (as opposed to a retryable
/// transient like the injected ENOSPC).
pub fn is_crash_error(e: &std::io::Error) -> bool {
    e.to_string().contains("simulated crash")
}

/// The injected ENOSPC error.
pub fn enospc_error() -> std::io::Error {
    std::io::Error::other("injected ENOSPC: no space left on device")
}

/// Really poison `m`: a scoped thread takes the lock and panics while
/// holding it. The panic is the helper's own (caught at its join), so
/// the calling thread keeps running with the mutex now poisoned.
fn poison(m: &Arc<Mutex<u64>>) {
    let m = m.clone();
    let _ = std::thread::spawn(move || {
        let _guard = m.lock().unwrap_or_else(PoisonError::into_inner);
        panic!("injected fault: poisoning lock");
    })
    .join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn batch(n: usize) -> Vec<StreamItem> {
        (0..n)
            .map(|i| StreamItem::Tuple(Tuple::new(vec![Value::UInt(i as u64), Value::UInt(7)])))
            .collect()
    }

    #[test]
    fn panic_fires_on_exactly_the_nth_batch() {
        let plan = FaultPlan::new().panic_at("q", 3);
        let stats = Arc::new(FaultStats::default());
        let mut inj = plan.armed("q", &stats).unwrap();
        assert!(plan.armed("other", &stats).is_none(), "untargeted nodes stay uninstrumented");
        let mut b = batch(2);
        inj.on_batch(&mut b);
        inj.on_batch(&mut b);
        assert_eq!(stats.fault_injected.get(), 0, "nothing fired before batch 3");
        let err = catch_unwind(AssertUnwindSafe(|| inj.on_batch(&mut b)));
        assert!(err.is_err(), "the injected panic is a real panic");
        assert_eq!(stats.fault_injected.get(), 1);
    }

    #[test]
    fn corruption_truncates_tuples_in_place() {
        let plan = FaultPlan::new().with("q", FaultKind::CorruptTuple { at_batch: 1, keep_cols: 1 });
        let stats = Arc::new(FaultStats::default());
        let mut inj = plan.armed("q", &stats).unwrap();
        let mut b = batch(3);
        inj.on_batch(&mut b);
        for item in &b {
            assert_eq!(item.as_tuple().unwrap().arity(), 1, "one column survives");
        }
        assert_eq!(stats.fault_injected.get(), 1);
        // Later batches pass through untouched.
        let mut b2 = batch(2);
        inj.on_batch(&mut b2);
        assert_eq!(b2[0].as_tuple().unwrap().arity(), 2);
    }

    #[test]
    fn poison_lock_really_poisons_and_tolerant_callers_survive() {
        let plan = FaultPlan::new().with("q", FaultKind::PoisonLock { at_batch: 1 });
        let stats = Arc::new(FaultStats::default());
        let mut inj = plan.armed("q", &stats).unwrap();
        inj.on_batch(&mut batch(1));
        assert!(plan.poison_target().lock().is_err(), "the mutex is genuinely poisoned");
        // Poison-tolerant access keeps working — the satellite invariant.
        let v = *plan.poison_target().lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(v, 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_on_menu() {
        let nodes = ["a", "b", "c"];
        let p1 = FaultPlan::seeded(42, &nodes);
        let p2 = FaultPlan::seeded(42, &nodes);
        assert_eq!(p1.specs, p2.specs, "same seed, same plan");
        assert_eq!(p1.specs.len(), 1);
        assert!(nodes.contains(&p1.specs[0].node.as_str()));
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let p = FaultPlan::seeded(seed, &nodes);
            distinct.insert(format!("{:?}", p.specs));
        }
        assert!(distinct.len() > 8, "seeds explore the fault space");
        assert!(FaultPlan::seeded(1, &[]).specs.is_empty(), "no nodes, no faults");
    }
}
