//! Hash routing of tuples to partition-parallel operator instances.
//!
//! The partition-parallel rewrite splits an aggregation HFTA into K
//! shards. A [`KeyRouter`] sits on the shards' shared input edge: it
//! evaluates the aggregate's group-key expressions against each tuple,
//! hashes the key, and picks the shard. Because the full group key is
//! hashed, a logical group lives wholly in one shard; because each shard
//! receives a subsequence of the input, every ordering property the
//! aggregate relies on still holds per shard.
//!
//! The hash is the std `DefaultHasher` with its default (zero) keys, so
//! routing is deterministic across runs, threads, and the sync/threaded
//! engines — the property tests rely on both engines splitting work
//! identically.

use crate::batch::{ColumnBatch, RowView};
use crate::expr::vector::VecVal;
use crate::expr::{EvalScratch, FieldSource, Program};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Routes tuples to one of `k` partitions by hash of an evaluated key.
pub struct KeyRouter {
    progs: Vec<Program>,
    scratch: EvalScratch,
    key: Vec<Value>,
    k: usize,
}

impl KeyRouter {
    /// Create a router over `k` partitions keyed by the given compiled
    /// key expressions.
    ///
    /// # Panics
    /// Panics if `k` is zero or `progs` is empty — the rewrite never
    /// produces either.
    pub fn new(progs: Vec<Program>, k: usize) -> KeyRouter {
        assert!(k > 0, "router needs at least one partition");
        assert!(!progs.is_empty(), "router needs a non-empty key");
        KeyRouter { progs, scratch: EvalScratch::default(), key: Vec::new(), k }
    }

    /// Number of partitions routed to.
    pub fn fanout(&self) -> usize {
        self.k
    }

    /// Pick the partition for `t`. A key expression that fails to
    /// evaluate routes to partition 0 — the shard's own operators apply
    /// the same semantics (discard, or group under the same key) to the
    /// tuple, so any consistent choice is correct.
    pub fn route(&mut self, t: &Tuple) -> usize {
        self.route_src(t)
    }

    fn route_src<S: FieldSource>(&mut self, src: &S) -> usize {
        self.key.clear();
        for p in &self.progs {
            match p.eval(src, &mut self.scratch) {
                Some(v) => self.key.push(v),
                None => return 0,
            }
        }
        let mut h = DefaultHasher::new();
        self.key.hash(&mut h);
        (h.finish() % self.k as u64) as usize
    }

    /// Pick partitions for every live row of a columnar batch, appended
    /// to `parts` (cleared first). Key expressions are vector-evaluated
    /// once and each row hashed straight from the columns; the resulting
    /// partition for every row is identical to [`route`](Self::route) on
    /// the materialized tuple — `Vec<Value>` hashes as a length prefix
    /// (`write_usize`) followed by the elements, replicated here.
    pub fn route_batch(&mut self, cb: &ColumnBatch, parts: &mut Vec<u32>) {
        parts.clear();
        let n = cb.n_rows();
        parts.reserve(n);
        let keys: Option<Vec<VecVal>> = self.progs.iter().map(|p| p.eval_vec(cb)).collect();
        match keys {
            Some(keys) => {
                for row in 0..n {
                    let mut h = DefaultHasher::new();
                    h.write_usize(keys.len());
                    let mut ok = true;
                    for k in &keys {
                        if !k.hash_row(row, &mut h) {
                            ok = false;
                            break;
                        }
                    }
                    parts.push(if ok { (h.finish() % self.k as u64) as u32 } else { 0 });
                }
            }
            None => {
                for row in 0..n {
                    let rv = RowView::new(cb, row);
                    parts.push(self.route_src(&rv) as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::plan::PExpr;
    use gs_gsql::types::DataType;

    fn col_prog(i: usize) -> Program {
        Program::compile(
            &PExpr::Col { index: i, ty: DataType::UInt },
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap()
    }

    fn t(vals: &[u64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::UInt(*v)).collect())
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let mut a = KeyRouter::new(vec![col_prog(0), col_prog(1)], 4);
        let mut b = KeyRouter::new(vec![col_prog(0), col_prog(1)], 4);
        for i in 0..200u64 {
            let tup = t(&[i % 13, i % 7]);
            let ra = a.route(&tup);
            assert!(ra < 4);
            assert_eq!(ra, b.route(&tup), "two routers agree on every tuple");
            assert_eq!(ra, a.route(&tup), "same tuple, same shard");
        }
    }

    #[test]
    fn route_batch_matches_per_tuple_route() {
        use crate::batch::ColumnBatch;
        use gs_gsql::ast::BinOp;

        // Mixed key types: uint, ip, float, str, bool columns.
        let tuples: Vec<Tuple> = (0..64u64)
            .map(|i| {
                Tuple::new(vec![
                    Value::UInt(i % 13),
                    Value::Ip((i % 5) as u32),
                    Value::Float(i as f64 * 0.5),
                    Value::Str(bytes::Bytes::from(format!("s{}", i % 3))),
                    Value::Bool(i % 2 == 0),
                ])
            })
            .collect();
        for key_cols in [vec![0], vec![0, 1], vec![0, 1, 2, 3, 4]] {
            let mk = || {
                KeyRouter::new(
                    key_cols
                        .iter()
                        .map(|&i| {
                            Program::compile(
                                &PExpr::Col { index: i, ty: DataType::UInt },
                                &ParamBindings::new(),
                                &UdfRegistry::with_builtins(),
                                &FileStore::new(),
                            )
                            .unwrap()
                        })
                        .collect(),
                    4,
                )
            };
            let mut row_r = mk();
            let mut col_r = mk();
            let cb = ColumnBatch::from_tuples(&tuples);
            let mut parts = Vec::new();
            col_r.route_batch(&cb, &mut parts);
            assert_eq!(parts.len(), tuples.len());
            for (t, &p) in tuples.iter().zip(&parts) {
                assert_eq!(row_r.route(t) as u32, p, "columnar routing diverged on {t:?}");
            }
        }

        // A failing key expression (division by zero) routes to 0 on
        // both paths.
        let div = Program::compile(
            &PExpr::Binary {
                op: BinOp::Div,
                left: Box::new(PExpr::Lit(gs_gsql::plan::Literal::UInt(1))),
                right: Box::new(PExpr::Col { index: 0, ty: DataType::UInt }),
                ty: DataType::UInt,
            },
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap();
        let mut r = KeyRouter::new(vec![div], 4);
        let zero = vec![t(&[0]), t(&[7])];
        let cb = ColumnBatch::from_tuples(&zero);
        let mut parts = Vec::new();
        r.route_batch(&cb, &mut parts);
        assert_eq!(parts[0], 0, "failed key routes to partition 0");
        assert_eq!(parts[1] as usize, r.route(&zero[1]));
    }

    #[test]
    fn distinct_keys_spread_across_partitions() {
        let mut r = KeyRouter::new(vec![col_prog(0)], 4);
        let mut hit = vec![false; 4];
        for i in 0..64u64 {
            hit[r.route(&t(&[i]))] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 distinct keys reach all 4 shards");
    }
}
