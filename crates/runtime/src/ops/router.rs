//! Hash routing of tuples to partition-parallel operator instances.
//!
//! The partition-parallel rewrite splits an aggregation HFTA into K
//! shards. A [`KeyRouter`] sits on the shards' shared input edge: it
//! evaluates the aggregate's group-key expressions against each tuple,
//! hashes the key, and picks the shard. Because the full group key is
//! hashed, a logical group lives wholly in one shard; because each shard
//! receives a subsequence of the input, every ordering property the
//! aggregate relies on still holds per shard.
//!
//! The hash is the std `DefaultHasher` with its default (zero) keys, so
//! routing is deterministic across runs, threads, and the sync/threaded
//! engines — the property tests rely on both engines splitting work
//! identically.

use crate::expr::{EvalScratch, Program};
use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// Routes tuples to one of `k` partitions by hash of an evaluated key.
pub struct KeyRouter {
    progs: Vec<Program>,
    scratch: EvalScratch,
    key: Vec<Value>,
    k: usize,
}

impl KeyRouter {
    /// Create a router over `k` partitions keyed by the given compiled
    /// key expressions.
    ///
    /// # Panics
    /// Panics if `k` is zero or `progs` is empty — the rewrite never
    /// produces either.
    pub fn new(progs: Vec<Program>, k: usize) -> KeyRouter {
        assert!(k > 0, "router needs at least one partition");
        assert!(!progs.is_empty(), "router needs a non-empty key");
        KeyRouter { progs, scratch: EvalScratch::default(), key: Vec::new(), k }
    }

    /// Number of partitions routed to.
    pub fn fanout(&self) -> usize {
        self.k
    }

    /// Pick the partition for `t`. A key expression that fails to
    /// evaluate routes to partition 0 — the shard's own operators apply
    /// the same semantics (discard, or group under the same key) to the
    /// tuple, so any consistent choice is correct.
    pub fn route(&mut self, t: &Tuple) -> usize {
        self.key.clear();
        for p in &self.progs {
            match p.eval(t, &mut self.scratch) {
                Some(v) => self.key.push(v),
                None => return 0,
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.key.hash(&mut h);
        (h.finish() % self.k as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::plan::PExpr;
    use gs_gsql::types::DataType;

    fn col_prog(i: usize) -> Program {
        Program::compile(
            &PExpr::Col { index: i, ty: DataType::UInt },
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap()
    }

    fn t(vals: &[u64]) -> Tuple {
        Tuple::new(vals.iter().map(|v| Value::UInt(*v)).collect())
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let mut a = KeyRouter::new(vec![col_prog(0), col_prog(1)], 4);
        let mut b = KeyRouter::new(vec![col_prog(0), col_prog(1)], 4);
        for i in 0..200u64 {
            let tup = t(&[i % 13, i % 7]);
            let ra = a.route(&tup);
            assert!(ra < 4);
            assert_eq!(ra, b.route(&tup), "two routers agree on every tuple");
            assert_eq!(ra, a.route(&tup), "same tuple, same shard");
        }
    }

    #[test]
    fn distinct_keys_spread_across_partitions() {
        let mut r = KeyRouter::new(vec![col_prog(0)], 4);
        let mut hit = vec![false; 4];
        for i in 0..64u64 {
            hit[r.route(&t(&[i]))] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 distinct keys reach all 4 shards");
    }
}
