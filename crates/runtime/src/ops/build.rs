//! Compile logical plans into executable operators.
//!
//! This is the runtime half of the paper's code generator: the GSQL
//! front end produces [`Plan`]s and [`LftaSpec`]s; this module turns them
//! into instantiated [`Lfta`]s and [`HftaNode`]s with all parameters
//! bound, handles pre-processed, and BPF prefilters recompiled against
//! the bound parameter values.

use crate::batch::{ColStep, ColumnBatch};
use crate::expr::Program;
use crate::ops::agg::{AggCore, AggregateOp, DirectMappedAggregator, GroupAggregator};
use crate::punct::Punct;
use crate::ops::join::{EmitMode, JoinConfig, JoinOp};
use crate::ops::lfta::{Lfta, LftaKind, SharedSplit};
use crate::ops::merge::MergeOp;
use crate::ops::select::{FilterOp, SelectProject};
use crate::ops::{cascade, cascade_batch, cascade_finish, Operator};
use crate::params::ParamBindings;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};
use crate::stats::StatsRegistry;
use crate::tuple::StreamItem;
use crate::udf::{FileStore, HandleResolver, UdfRegistry};
use crate::RuntimeError;
use gs_gsql::ast::BinOp;
use gs_gsql::catalog::Catalog;
use gs_gsql::ordering::OrderProp;
use gs_gsql::plan::{Literal, PExpr, Plan, Schema};
use gs_gsql::split::LftaSpec;
use std::sync::Arc;

/// Everything needed to instantiate compiled queries.
pub struct BuildCtx<'a> {
    /// The catalog the query was analyzed against (interfaces, UDF sigs).
    pub catalog: &'a Catalog,
    /// Bound query parameters.
    pub params: &'a ParamBindings,
    /// UDF implementations.
    pub registry: &'a UdfRegistry,
    /// Pass-by-handle file access.
    pub resolver: &'a dyn HandleResolver,
    /// Direct-mapped pre-aggregation table size (slots).
    pub lfta_table_size: usize,
}

impl<'a> BuildCtx<'a> {
    /// Compile one expression against this context's bindings. Public so
    /// deployers can compile auxiliary programs (the partition router's
    /// hash key) with exactly the plan operators' semantics.
    pub fn prog(&self, pe: &PExpr) -> Result<Program, RuntimeError> {
        Program::compile(pe, self.params, self.registry, self.resolver)
    }
}

/// Decompose `expr` as `Col(i)` or `Col(i) / k`; returns `(i, k)`.
fn col_and_divisor(pe: &PExpr) -> Option<(usize, u64)> {
    match pe {
        PExpr::Col { index, .. } => Some((*index, 1)),
        PExpr::Binary { op: BinOp::Div, left, right, .. } => match (&**left, &**right) {
            (PExpr::Col { index, .. }, PExpr::Lit(Literal::UInt(k))) if *k > 0 => {
                Some((*index, *k))
            }
            _ => None,
        },
        _ => None,
    }
}

fn order_slack(schema: &Schema, col: usize) -> u64 {
    schema.get(col).and_then(|c| c.order.slack()).unwrap_or(0)
}

fn and_fold_pexpr(mut v: Vec<PExpr>) -> Option<PExpr> {
    let first = if v.is_empty() { return None } else { v.remove(0) };
    Some(v.into_iter().fold(first, |acc, e| PExpr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(e),
        ty: gs_gsql::types::DataType::Bool,
    }))
}

/// Build the aggregation core shared by LFTA and HFTA aggregation.
fn build_agg_core(
    ctx: &BuildCtx<'_>,
    group: &[(String, PExpr)],
    aggs: &[gs_gsql::plan::AggSpec],
    flush_idx: Option<usize>,
    out_schema: &Schema,
) -> Result<(AggCore, Option<(usize, u64)>), RuntimeError> {
    let mut group_progs = Vec::with_capacity(group.len());
    for (_, e) in group {
        group_progs.push(ctx.prog(e)?);
    }
    let mut agg_specs = Vec::with_capacity(aggs.len());
    for a in aggs {
        let arg = match &a.arg {
            Some(e) => Some(ctx.prog(e)?),
            None => None,
        };
        agg_specs.push((a.func, arg, a.ty));
    }
    let slack = flush_idx.map_or(0, |i| order_slack(out_schema, i));
    // Punctuation translation: the flush group expression in terms of an
    // input column.
    let punct_in = flush_idx.and_then(|i| col_and_divisor(&group[i].1));
    Ok((AggCore::new(group_progs, agg_specs, flush_idx, slack), punct_in))
}

/// Instantiate an LFTA from its split specification.
pub fn build_lfta(spec: &LftaSpec, ctx: &BuildCtx<'_>) -> Result<Lfta, RuntimeError> {
    // Decompose the canonical LFTA plan.
    let mut node = &spec.plan;
    let mut projection: Option<&[(String, PExpr)]> = None;
    let mut aggregate = None;
    if let Plan::Project { cols, .. } = node {
        projection = Some(cols);
        let Plan::Project { input, .. } = node else { unreachable!() };
        node = input;
    }
    if let Plan::Aggregate { group, aggs, flush_group_idx, input, schema } = node {
        aggregate = Some((group, aggs, *flush_group_idx, schema));
        node = input;
    }
    let mut filter_pred = None;
    if let Plan::Filter { pred, input } = node {
        filter_pred = Some(pred);
        node = input;
    }
    let Plan::ProtocolScan { interface, protocol, schema: scan_schema } = node else {
        return Err(RuntimeError::msg(format!(
            "LFTA `{}` is not rooted at a protocol scan",
            spec.name
        )));
    };
    let proto_def = gs_packet::interp::protocol(protocol)
        .ok_or_else(|| RuntimeError::msg(format!("unknown protocol `{protocol}`")))?;

    // Recompile the BPF prefilter against the bound parameters, so
    // `destPort = $port` pushes down per instantiation (paper §3: multiple
    // instances of the same LFTA, each with different parameters).
    let prefilter = match (&spec.prefilter, filter_pred, ctx.catalog.interface(interface)) {
        (_, Some(pred), Some(ifd)) => {
            let conjuncts = pred.conjuncts_owned();
            let scan = scan_schema.clone();
            let pd = gs_gsql::pushdown::compile_prefilter(
                protocol,
                ifd.link,
                &conjuncts,
                &move |i| scan.get(i).map(|c| c.name.clone()),
                &ctx.params.as_literals(),
                spec.snaplen.map(|s| s as u32),
            );
            pd.program.or_else(|| spec.prefilter.clone())
        }
        (pf, _, _) => pf.clone(),
    };

    let filter = match filter_pred {
        Some(p) => Some(ctx.prog(p)?),
        None => None,
    };

    // Predicate split for the shared cross-query prefilter: conjuncts
    // that canonicalize to parameter-free atoms are evaluated once per
    // packet across all queries; whatever cannot be shared (UDF calls,
    // unbound parameters, atoms that fail to compile standalone) stays in
    // a per-LFTA residual program.
    let shared_split = match filter_pred {
        Some(pred) => {
            let conjuncts = pred.conjuncts_owned();
            let split =
                gs_gsql::pushdown::extract_atoms(protocol, &conjuncts, &ctx.params.as_literals());
            let mut atoms = Vec::new();
            let mut residual_exprs = split.residual;
            let udfs = UdfRegistry::with_builtins();
            let files = FileStore::new();
            for atom in split.atoms {
                // Sharing requires the atom to compile in isolation; on
                // failure keep the conjunct in the residual (the original
                // expression, with parameters, which `ctx.prog` can bind).
                if Program::compile(&atom.expr, &ParamBindings::new(), &udfs, &files).is_ok() {
                    atoms.push(atom);
                } else {
                    residual_exprs.push(atom.expr);
                }
            }
            let residual = match and_fold_pexpr(residual_exprs) {
                Some(e) => Some(ctx.prog(&e)?),
                None => None,
            };
            Some(SharedSplit { atoms, residual })
        }
        None => None,
    };

    let (kind, punct_src) = if let Some((group, aggs, flush_idx, schema)) = aggregate {
        let (core, punct_in) = build_agg_core(ctx, group, aggs, flush_idx, schema)?;
        let punct_src = match (flush_idx, punct_in) {
            (Some(fi), Some((scan_col, div))) => Some((fi, scan_col, div)),
            _ => None,
        };
        (
            LftaKind::Aggregate(Box::new(DirectMappedAggregator::new(
                core,
                ctx.lfta_table_size,
            ))),
            punct_src,
        )
    } else {
        let cols = projection.ok_or_else(|| {
            RuntimeError::msg(format!("LFTA `{}` has neither projection nor aggregation", spec.name))
        })?;
        let mut progs = Vec::with_capacity(cols.len());
        let mut punct_src = None;
        for (j, (_, e)) in cols.iter().enumerate() {
            progs.push(ctx.prog(e)?);
            if punct_src.is_none() {
                if let Some((i, div)) = col_and_divisor(e) {
                    if scan_schema
                        .get(i)
                        .is_some_and(|c| matches!(c.order, OrderProp::Increasing { .. }))
                    {
                        punct_src = Some((j, i, div));
                    }
                }
            }
        }
        (LftaKind::Project(progs), punct_src)
    };

    let mut lfta = Lfta::new(
        spec.name.clone(),
        proto_def,
        prefilter.map(Arc::new),
        spec.snaplen,
        filter,
        kind,
        punct_src,
    );
    if let Some(split) = shared_split {
        lfta.set_shared_split(split);
    }
    if let Some(p) = spec.sample {
        lfta.set_sample(p);
    }
    Ok(lfta)
}

/// Multi-input root of an HFTA (stored concretely so the node can call
/// per-input finish methods).
pub enum Root {
    /// Order-preserving union.
    Merge(MergeOp),
    /// Two-stream window join (boxed: the hash-join state dwarfs the
    /// merge state and `Root` is embedded in every `HftaNode`).
    Join(Box<JoinOp>),
}

/// An instantiated HFTA: input stream names plus the operator pipeline.
pub struct HftaNode {
    /// Upstream stream names, in port order.
    pub inputs: Vec<String>,
    /// Multi-input root (join/merge), when present.
    root: Option<Root>,
    /// Single-input chain above the root (or the whole pipeline).
    chain: Vec<Box<dyn Operator>>,
}

impl HftaNode {
    /// Feed one item into input `port`.
    pub fn push(&mut self, port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        match &mut self.root {
            Some(root) => {
                let mut mid = Vec::new();
                match root {
                    Root::Merge(m) => m.push(port, item, &mut mid),
                    Root::Join(j) => j.push(port, item, &mut mid),
                }
                for it in mid {
                    cascade(&mut self.chain, it, out);
                }
            }
            None => {
                debug_assert_eq!(port, 0);
                cascade(&mut self.chain, item, out);
            }
        }
    }

    /// Feed a whole batch into input `port`: the root consumes it via
    /// [`Operator::push_batch`] and its output flows through the chain one
    /// batch at a time, so per-stage setup amortizes across the batch.
    pub fn push_batch(&mut self, port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        match &mut self.root {
            Some(root) => {
                let mut mid = Vec::new();
                match root {
                    Root::Merge(m) => m.push_batch(port, items, &mut mid),
                    Root::Join(j) => j.push_batch(port, items, &mut mid),
                }
                if !mid.is_empty() {
                    cascade_batch(&mut self.chain, mid, out);
                }
            }
            None => {
                debug_assert_eq!(port, 0);
                cascade_batch(&mut self.chain, items, out);
            }
        }
    }

    /// Feed a columnar batch (with its at-most-one trailing punctuation
    /// rider) into a single-input node. Each chain operator runs its
    /// columnar path; as soon as one returns row-shaped output the
    /// remaining stages run row-at-a-time. Returns `Some((cols, punct))`
    /// when the batch survives the whole chain columnar — the caller
    /// ships it downstream without materializing rows. Multi-input roots
    /// are row boundaries: the batch is materialized into
    /// [`push_batch`](HftaNode::push_batch) (port 0) and `None` returned.
    pub fn push_cols(
        &mut self,
        port: usize,
        cols: ColumnBatch,
        punct: Option<Punct>,
        out: &mut Vec<StreamItem>,
    ) -> Option<(ColumnBatch, Option<Punct>)> {
        if self.root.is_some() {
            self.push_batch(port, cols.into_items(punct), out);
            return None;
        }
        debug_assert_eq!(port, 0);
        let mut cur = cols;
        let mut rider = punct;
        for i in 0..self.chain.len() {
            match self.chain[i].push_cols(cur, rider) {
                ColStep::Cols(cb, p) => {
                    cur = cb;
                    rider = p;
                }
                ColStep::Rows(items) => {
                    if i + 1 < self.chain.len() {
                        if !items.is_empty() {
                            cascade_batch(&mut self.chain[i + 1..], items, out);
                        }
                    } else {
                        out.extend(items);
                    }
                    return None;
                }
            }
        }
        Some((cur, rider))
    }

    /// One input stream ended: multi-input roots release the holds that
    /// input maintained; single-input nodes ignore this (use [`finish`]).
    ///
    /// [`finish`]: HftaNode::finish
    pub fn finish_input(&mut self, port: usize, out: &mut Vec<StreamItem>) {
        if let Some(root) = &mut self.root {
            let mut mid = Vec::new();
            match root {
                Root::Merge(m) => m.finish_input(port, &mut mid),
                Root::Join(j) => j.finish_input(port),
            }
            if !mid.is_empty() {
                cascade_batch(&mut self.chain, mid, out);
            }
        }
    }

    /// All inputs ended: flush everything.
    pub fn finish(&mut self, out: &mut Vec<StreamItem>) {
        if let Some(root) = &mut self.root {
            let mut mid = Vec::new();
            match root {
                Root::Merge(m) => m.finish(&mut mid),
                Root::Join(j) => j.finish(&mut mid),
            }
            if !mid.is_empty() {
                cascade_batch(&mut self.chain, mid, out);
            }
        }
        cascade_finish(&mut self.chain, out);
    }

    /// Diagnostics: buffered tuples and starvation flag of a merge root.
    pub fn merge_state(&self) -> Option<(usize, usize, bool)> {
        match &self.root {
            Some(Root::Merge(m)) => Some((m.buffered(), m.peak_buffered, m.starved)),
            _ => None,
        }
    }

    /// Diagnostics: buffered tuples of a join root.
    pub fn join_state(&self) -> Option<(usize, usize)> {
        match &self.root {
            Some(Root::Join(j)) => Some((j.buffered(), j.peak_buffered)),
            _ => None,
        }
    }

    /// Register every operator's counter block under
    /// `hfta:<query>/<i>:<kind>` — index 0 is the root when present,
    /// then the chain bottom-up.
    pub fn register_stats(&self, registry: &StatsRegistry, query: &str) {
        let mut i = 0usize;
        if let Some(root) = &self.root {
            let (kind, handle) = match root {
                Root::Merge(m) => (Operator::kind(m), m.stats_handle()),
                Root::Join(j) => (Operator::kind(&**j), j.stats_handle()),
            };
            if let Some(h) = handle {
                registry.register(format!("hfta:{query}/{i}:{kind}"), h);
            }
            i += 1;
        }
        for op in &self.chain {
            if let Some(h) = op.stats_handle() {
                registry.register(format!("hfta:{query}/{i}:{}", op.kind()), h);
            }
            i += 1;
        }
    }

    /// Publish every operator's plain counters into its shared block.
    pub fn publish_stats(&self) {
        if let Some(root) = &self.root {
            match root {
                Root::Merge(m) => m.publish_stats(),
                Root::Join(j) => j.publish_stats(),
            }
        }
        for op in &self.chain {
            op.publish_stats();
        }
    }

    /// Serialize every operator's state in pipeline order: a structure
    /// byte (root present + chain length, so a mismatched topology is
    /// rejected on restore), the root, then the chain bottom-up. Called
    /// at a quiescent point — all inputs drained up to the capture cut.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        w.put_bool(self.root.is_some());
        w.put_u32(self.chain.len() as u32);
        if let Some(root) = &self.root {
            match root {
                Root::Merge(m) => {
                    w.put_u8(0);
                    Operator::snapshot(m, w);
                }
                Root::Join(j) => {
                    w.put_u8(1);
                    Operator::snapshot(&**j, w);
                }
            }
        }
        for op in &self.chain {
            Operator::snapshot(op.as_ref(), w);
        }
    }

    /// Restore state written by [`snapshot_state`](Self::snapshot_state)
    /// into a freshly built node of the same plan.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let has_root = r.get_bool()?;
        let chain_len = r.get_u32()? as usize;
        if has_root != self.root.is_some() || chain_len != self.chain.len() {
            return Err(crate::snapshot::proto(format!(
                "hfta shape mismatch: snapshot root={has_root} chain={chain_len}, \
                 build root={} chain={}",
                self.root.is_some(),
                self.chain.len()
            )));
        }
        if let Some(root) = &mut self.root {
            let tag = r.get_u8()?;
            match (root, tag) {
                (Root::Merge(m), 0) => Operator::restore(m, r)?,
                (Root::Join(j), 1) => Operator::restore(&mut **j, r)?,
                (_, t) => {
                    return Err(crate::snapshot::proto(format!(
                        "hfta root tag {t} does not match build"
                    )))
                }
            }
        }
        for op in &mut self.chain {
            Operator::restore(op.as_mut(), r)?;
        }
        Ok(())
    }
}

/// Compile an HFTA plan.
pub fn build_hfta(plan: &Plan, ctx: &BuildCtx<'_>) -> Result<HftaNode, RuntimeError> {
    // Peel the single-input chain off the top.
    let mut chain_nodes: Vec<&Plan> = Vec::new();
    let mut node = plan;
    loop {
        match node {
            Plan::Project { input, .. } | Plan::Aggregate { input, .. } => {
                chain_nodes.push(node);
                node = input;
            }
            Plan::Filter { input, .. } => {
                chain_nodes.push(node);
                node = input;
            }
            _ => break,
        }
    }

    // Build chain operators bottom-up.
    let mut chain: Vec<Box<dyn Operator>> = Vec::new();
    for n in chain_nodes.iter().rev() {
        chain.push(build_chain_op(n, ctx)?);
    }

    match node {
        Plan::StreamScan { stream, .. } => Ok(HftaNode {
            inputs: vec![stream.clone()],
            root: None,
            chain,
        }),
        Plan::Join { left, right, window, residual, cols, .. } => {
            let (Plan::StreamScan { stream: ls, schema: lsch }, Plan::StreamScan { stream: rs, schema: rsch }) =
                (&**left, &**right)
            else {
                return Err(RuntimeError::msg(
                    "join inputs must be stream scans after splitting",
                ));
            };
            // Equality conjuncts across the two sides become the hash key
            // (the join-algorithm choice the paper's §2.1 alludes to);
            // everything else stays in the residual predicate.
            let n_left = lsch.len();
            let (eq_keys, remaining) = match residual {
                Some(r) => gs_gsql::plan::split_join_conjuncts(r, n_left),
                None => (Vec::new(), Vec::new()),
            };
            let cfg = JoinConfig {
                left_col: window.left_col,
                right_col: window.right_col,
                lo: window.lo,
                hi: window.hi,
                left_slack: order_slack(lsch, window.left_col),
                right_slack: order_slack(rsch, window.right_col),
                eq_keys,
                // The analyzer's imputation assumes immediate emission
                // (banded for band windows, already monotone for equality
                // windows over monotone inputs); sorted release is a
                // library-level option (JoinOp/EmitMode).
                emit: EmitMode::Banded,
                sort_out_col: 0,
            };
            let res = match and_fold_pexpr(remaining) {
                Some(r) => Some(ctx.prog(&r)?),
                None => None,
            };
            let mut projs = Vec::with_capacity(cols.len());
            for (_, e) in cols {
                projs.push(ctx.prog(e)?);
            }
            Ok(HftaNode {
                inputs: vec![ls.clone(), rs.clone()],
                root: Some(Root::Join(Box::new(JoinOp::new(cfg, res, projs)))),
                chain,
            })
        }
        Plan::Merge { inputs, on_col, .. } => {
            let mut names = Vec::with_capacity(inputs.len());
            let mut slacks = Vec::with_capacity(inputs.len());
            for i in inputs {
                let Plan::StreamScan { stream, schema } = i else {
                    return Err(RuntimeError::msg(
                        "merge inputs must be stream scans after splitting",
                    ));
                };
                names.push(stream.clone());
                slacks.push(order_slack(schema, *on_col));
            }
            Ok(HftaNode {
                inputs: names,
                root: Some(Root::Merge(MergeOp::new(inputs.len(), *on_col, slacks))),
                chain,
            })
        }
        other => Err(RuntimeError::msg(format!(
            "HFTA plan has an unexpected leaf: {other:?}"
        ))),
    }
}

fn build_chain_op(n: &Plan, ctx: &BuildCtx<'_>) -> Result<Box<dyn Operator>, RuntimeError> {
    match n {
        Plan::Filter { pred, .. } => Ok(Box::new(FilterOp::new(ctx.prog(pred)?))),
        Plan::Project { cols, .. } => {
            let mut progs = Vec::with_capacity(cols.len());
            let mut punct_map = Vec::new();
            for (j, (_, e)) in cols.iter().enumerate() {
                progs.push(ctx.prog(e)?);
                if let Some((i, div)) = col_and_divisor(e) {
                    punct_map.push((i, j, div));
                }
            }
            Ok(Box::new(SelectProject::new(None, progs, punct_map)))
        }
        Plan::Aggregate { group, aggs, flush_group_idx, schema, .. } => {
            let (core, punct_in) = build_agg_core(ctx, group, aggs, *flush_group_idx, schema)?;
            Ok(Box::new(AggregateOp::new(
                GroupAggregator::new(core),
                punct_in,
                *flush_group_idx,
            )))
        }
        other => Err(RuntimeError::msg(format!("not a chain operator: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::StreamItem;
    use crate::value::Value;
    use gs_gsql::analyze::analyze;
    use gs_gsql::catalog::InterfaceDef;
    use gs_gsql::parser::parse_query;
    use gs_gsql::split::split_query;
    use gs_packet::capture::LinkType;

    fn catalog() -> Catalog {
        let mut c = Catalog::with_builtins();
        c.add_interface(InterfaceDef { name: "eth0".into(), id: 0, link: LinkType::Ethernet });
        c.add_interface(InterfaceDef { name: "eth1".into(), id: 1, link: LinkType::Ethernet });
        c
    }

    fn deploy(c: &Catalog, src: &str) -> gs_gsql::split::DeployedQuery {
        let aq = analyze(&parse_query(src).unwrap(), c).unwrap();
        split_query(&aq, c).unwrap()
    }

    #[test]
    fn join_extracts_equality_conjuncts_into_hash_keys() {
        let c = catalog();
        let dq = deploy(
            &c,
            "DEFINE { query_name j; } \
             Select B.time FROM eth0.tcp B, eth1.tcp C \
             WHERE B.time = C.time and B.srcIP = C.srcIP and B.id = C.id and B.len > C.len",
        );
        let params = ParamBindings::new();
        let registry = UdfRegistry::with_builtins();
        let resolver = crate::udf::FileStore::new();
        let ctx = BuildCtx {
            catalog: &c,
            params: &params,
            registry: &registry,
            resolver: &resolver,
            lfta_table_size: 64,
        };
        let node = build_hfta(dq.hfta.as_ref().unwrap(), &ctx).unwrap();
        assert_eq!(node.inputs.len(), 2);
        // Drive it: equality keys and the residual `len >` must both bind.
        let mut node = node;
        let tup = |ts: u64, src: u64, id: u64, len: u64| {
            // LFTA identity projection emits the full tcp schema; build a
            // minimal tuple with the right arity instead.
            let schema = dq.hfta.as_ref().unwrap().upstream_streams();
            let _ = schema;
            let full = c.protocol_schema("tcp").unwrap();
            let mut vals: Vec<Value> = full
                .iter()
                .map(|col| match col.ty {
                    gs_gsql::types::DataType::Ip => Value::Ip(src as u32),
                    gs_gsql::types::DataType::Str => Value::Str(bytes::Bytes::new()),
                    gs_gsql::types::DataType::Bool => Value::Bool(false),
                    _ => Value::UInt(0),
                })
                .collect();
            let idx = |n: &str| full.iter().position(|x| x.name == n).unwrap();
            vals[idx("time")] = Value::UInt(ts);
            vals[idx("id")] = Value::UInt(id);
            vals[idx("len")] = Value::UInt(len);
            StreamItem::Tuple(crate::tuple::Tuple::new(vals))
        };
        let mut out = Vec::new();
        node.push(0, tup(1, 7, 3, 100), &mut out);
        node.push(1, tup(1, 7, 3, 50), &mut out); // matches: same keys, 100 > 50
        node.push(1, tup(1, 7, 4, 50), &mut out); // different id: no match
        node.push(1, tup(1, 8, 3, 50), &mut out); // different srcIP: no match
        node.push(1, tup(1, 7, 3, 200), &mut out); // residual fails: 100 > 200 is false
        let tuples: usize = out.iter().filter(|i| i.as_tuple().is_some()).count();
        assert_eq!(tuples, 1, "hash keys + residual must both apply");
    }

    #[test]
    fn lfta_sample_is_wired_from_spec() {
        let c = catalog();
        let aq = analyze(
            &parse_query(
                "DEFINE { query_name s; sample 0.25; } Select time From eth0.tcp",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        let dq = split_query(&aq, &c).unwrap();
        assert_eq!(dq.lftas[0].sample, Some(0.25));
        let params = ParamBindings::new();
        let registry = UdfRegistry::with_builtins();
        let resolver = crate::udf::FileStore::new();
        let ctx = BuildCtx {
            catalog: &c,
            params: &params,
            registry: &registry,
            resolver: &resolver,
            lfta_table_size: 64,
        };
        let mut lfta = build_lfta(&dq.lftas[0], &ctx).unwrap();
        let mut out = Vec::new();
        let mut kept = 0u64;
        for i in 0..4_000u64 {
            let f = gs_packet::builder::FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
            let p = gs_packet::CapPacket::full(i * 1_000_000, 0, LinkType::Ethernet, f);
            out.clear();
            lfta.push_packet(&p, &mut out);
            kept += out.len() as u64;
        }
        let frac = kept as f64 / 4_000.0;
        assert!((frac - 0.25).abs() < 0.04, "sampled fraction {frac}");
        assert_eq!(lfta.stats.sampled_out + kept, 4_000);
    }

    #[test]
    fn param_bound_prefilter_recompiles_at_build() {
        let c = catalog();
        let dq = deploy(
            &c,
            "DEFINE { query_name p; } Select time From eth0.tcp Where destPort = $port",
        );
        // Unbound at split time: the spec's prefilter has only guards.
        let registry = UdfRegistry::with_builtins();
        let resolver = crate::udf::FileStore::new();
        let params = ParamBindings::new().with("port", Value::UInt(443));
        let ctx = BuildCtx {
            catalog: &c,
            params: &params,
            registry: &registry,
            resolver: &resolver,
            lfta_table_size: 64,
        };
        let mut lfta = build_lfta(&dq.lftas[0], &ctx).unwrap();
        let yes = gs_packet::builder::FrameBuilder::tcp(1, 2, 9, 443).build_ethernet();
        let no = gs_packet::builder::FrameBuilder::tcp(1, 2, 9, 80).build_ethernet();
        let mut out = Vec::new();
        lfta.push_packet(&gs_packet::CapPacket::full(0, 0, LinkType::Ethernet, yes), &mut out);
        lfta.push_packet(&gs_packet::CapPacket::full(1, 0, LinkType::Ethernet, no), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            lfta.stats.prefiltered, 1,
            "the bound parameter must reach the recompiled BPF prefilter"
        );
    }
}
