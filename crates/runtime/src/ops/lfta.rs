//! The LFTA executor: the low-level query node that runs inside the run
//! time system at the capture point (paper §3).
//!
//! An LFTA is "a lightweight query which performs preliminary filtering,
//! projection, and aggregation" directly over raw packets, evaluated
//! "without additional data transfers". This executor:
//!
//! 1. optionally applies the compiled BPF prefilter (what the NIC would
//!    run when offload is available) and the snap length;
//! 2. interprets the packet through the Protocol's field accessors;
//! 3. evaluates the cheap selection predicate;
//! 4. either projects output tuples or folds into the direct-mapped
//!    pre-aggregation table;
//! 5. on heartbeat, emits punctuation (and flushes closed aggregation
//!    groups) from the capture clock, the paper's ordering-update tokens.

use crate::expr::{EvalScratch, PacketFields, Program};
use crate::ops::agg::{DirectMappedAggregator, DmStats};
use crate::punct::Punct;
use crate::snapshot::{proto, SnapError, SnapReader, SnapWriter};
use crate::stats::{Counter, StatSource};
use crate::tuple::{StreamItem, Tuple};
use crate::value::Value;
use gs_gsql::pushdown::Atom;
use gs_nic::bpf::BpfProgram;
use gs_packet::interp::ProtocolDef;
use gs_packet::{CapPacket, PacketView};
use std::sync::Arc;

/// What the LFTA does after filtering.
pub enum LftaKind {
    /// Project output tuples (selection/projection LFTA).
    Project(Vec<Program>),
    /// Pre-aggregate into the direct-mapped table.
    Aggregate(Box<DirectMappedAggregator>),
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LftaStats {
    /// Packets offered to the LFTA.
    pub packets_in: u64,
    /// Packets rejected by the BPF prefilter.
    pub prefiltered: u64,
    /// Packets dropped by analyst-requested sampling.
    pub sampled_out: u64,
    /// Packets rejected by the protocol prefilter or field interpretation.
    pub not_protocol: u64,
    /// Packets rejected by the selection predicate.
    pub filtered: u64,
    /// Output tuples emitted.
    pub tuples_out: u64,
}

/// Shared (atomic) mirror of [`LftaStats`] plus the pre-aggregation
/// table's eviction count, registered in the stats registry as
/// `lfta:<stream>`. The capture thread owns the plain counters and
/// publishes here via [`Lfta::publish_stats`] — on heartbeat rounds and
/// at end of capture — so readers cost the hot path nothing.
#[derive(Debug, Default)]
pub struct LftaCounters {
    /// Packets offered.
    pub packets_in: Counter,
    /// Packets rejected by the BPF prefilter.
    pub prefiltered: Counter,
    /// Packets dropped by analyst-requested sampling.
    pub sampled_out: Counter,
    /// Malformed / wrong-protocol packets.
    pub not_protocol: Counter,
    /// Packets rejected by the selection predicate.
    pub filtered: Counter,
    /// Output tuples emitted.
    pub tuples_out: Counter,
    /// Direct-mapped table collision evictions (aggregating LFTAs).
    pub dm_evictions: Counter,
}

impl StatSource for LftaCounters {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("packets_in", self.packets_in.get()),
            ("prefiltered", self.prefiltered.get()),
            ("sampled_out", self.sampled_out.get()),
            ("not_protocol", self.not_protocol.get()),
            ("filtered", self.filtered.get()),
            ("tuples_out", self.tuples_out.get()),
            ("dm_evictions", self.dm_evictions.get()),
        ]
    }
}

/// The split of an LFTA's selection predicate for cross-query sharing:
/// the shareable atoms (evaluated centrally, once per packet across all
/// queries) and the private residual (evaluated by this LFTA after
/// dispatch).
pub struct SharedSplit {
    /// Shareable atomic conjuncts, keyed for cross-query deduplication.
    pub atoms: Vec<Atom>,
    /// AND-fold of the non-shareable conjuncts; `None` when every
    /// conjunct atomized.
    pub residual: Option<Program>,
}

/// A compiled, instantiated LFTA.
pub struct Lfta {
    /// Registered output stream name.
    pub name: String,
    protocol: &'static ProtocolDef,
    /// Compiled BPF prefilter, shared (`Arc`) so queries with identical
    /// programs reference one compilation.
    prefilter: Option<Arc<BpfProgram>>,
    snaplen: Option<usize>,
    filter: Option<Program>,
    /// Predicate split for the shared prefilter; `None` when the build
    /// did not compute one (the full `filter` is then evaluated after
    /// shared dispatch, which is always correct).
    shared_split: Option<SharedSplit>,
    kind: LftaKind,
    /// Punctuation source: `(output column, scan field, divisor)` — the
    /// ordered output column equals `field / divisor` of the packet.
    punct_src: Option<(usize, usize, u64)>,
    /// Sampling threshold: keep the packet when its hash is below this
    /// (u64::MAX = keep everything).
    sample_threshold: u64,
    sample_seed: u64,
    scratch: EvalScratch,
    /// Execution counters.
    pub stats: LftaStats,
    shared: Arc<LftaCounters>,
}

impl Lfta {
    /// Assemble an LFTA from compiled parts.
    pub fn new(
        name: String,
        protocol: &'static ProtocolDef,
        prefilter: Option<Arc<BpfProgram>>,
        snaplen: Option<usize>,
        filter: Option<Program>,
        kind: LftaKind,
        punct_src: Option<(usize, usize, u64)>,
    ) -> Lfta {
        let sample_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        Lfta {
            name,
            protocol,
            prefilter,
            snaplen,
            filter,
            shared_split: None,
            kind,
            punct_src,
            sample_threshold: u64::MAX,
            sample_seed,
            scratch: EvalScratch::default(),
            stats: LftaStats::default(),
            shared: Arc::new(LftaCounters::default()),
        }
    }

    /// The shared counter block for stats registration.
    pub fn stats_handle(&self) -> Arc<LftaCounters> {
        self.shared.clone()
    }

    /// Publish the plain hot-path counters into the shared block. The
    /// engines call this on heartbeat rounds and at end of capture, so
    /// registry snapshots are at most one heartbeat stale.
    pub fn publish_stats(&self) {
        self.shared.packets_in.set(self.stats.packets_in);
        self.shared.prefiltered.set(self.stats.prefiltered);
        self.shared.sampled_out.set(self.stats.sampled_out);
        self.shared.not_protocol.set(self.stats.not_protocol);
        self.shared.filtered.set(self.stats.filtered);
        self.shared.tuples_out.set(self.stats.tuples_out);
        if let Some(dm) = self.dm_stats() {
            self.shared.dm_evictions.set(dm.evictions);
        }
    }

    /// Enable analyst-requested sampling at probability `p` in (0, 1).
    /// The decision is a deterministic hash of the packet timestamp and
    /// this LFTA's name, so runs are reproducible and different queries
    /// sample independently.
    pub fn set_sample(&mut self, p: f64) {
        let p = p.clamp(0.0, 1.0);
        self.sample_threshold = if p >= 1.0 { u64::MAX } else { (p * u64::MAX as f64) as u64 };
    }

    /// Whether analyst-requested sampling is active. Sampled LFTAs need
    /// the per-packet admission hash; unsampled ones can have their
    /// admission counted in bulk by the shared dispatcher.
    #[inline]
    pub fn sampling_enabled(&self) -> bool {
        self.sample_threshold != u64::MAX
    }

    #[inline]
    fn sampled_in(&self, cap: &CapPacket) -> bool {
        if self.sample_threshold == u64::MAX {
            return true;
        }
        let mut h = self.sample_seed ^ cap.ts_ns ^ (u64::from(cap.iface) << 48);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h < self.sample_threshold
    }

    /// Process one captured packet, appending output items.
    pub fn push_packet(&mut self, cap: &CapPacket, out: &mut Vec<StreamItem>) {
        if !self.admit(cap) {
            return;
        }
        if let Some(f) = &self.prefilter {
            if !f.accepts(&cap.data) {
                self.stats.prefiltered += 1;
                return;
            }
        }
        self.push_accepted(cap, out);
    }

    /// Shared-dispatch entry: account a packet offered to this LFTA and
    /// run the sampling decision. Returns `false` when the packet is
    /// sampled out (already counted).
    #[inline]
    pub fn admit(&mut self, cap: &CapPacket) -> bool {
        self.stats.packets_in += 1;
        if !self.sampled_in(cap) {
            self.stats.sampled_out += 1;
            return false;
        }
        true
    }

    /// Shared-dispatch entry: the central pass ran this LFTA's BPF
    /// program and it rejected the packet.
    #[inline]
    pub fn note_prefiltered(&mut self) {
        self.stats.prefiltered += 1;
    }

    /// Shared-dispatch entry: the central protocol match rejected the
    /// packet.
    #[inline]
    pub fn note_not_protocol(&mut self) {
        self.stats.not_protocol += 1;
    }

    /// Shared-dispatch entry: a required shared atom was false.
    #[inline]
    pub fn note_filtered(&mut self) {
        self.stats.filtered += 1;
    }

    /// Run the private stages after admission and prefiltering: snap,
    /// parse, protocol match, full predicate, then the projection or
    /// pre-aggregation tail. The shared dispatcher falls back to this
    /// when its full-packet parse cannot stand in for this LFTA's
    /// snapped parse.
    pub fn push_accepted(&mut self, cap: &CapPacket, out: &mut Vec<StreamItem>) {
        let snapped;
        let cap = match self.snaplen {
            Some(s) if cap.data.len() > s => {
                snapped = cap.snap(s);
                &snapped
            }
            _ => cap,
        };
        let view = PacketView::parse(cap.clone());
        if !(self.protocol.matches)(&view) {
            self.stats.not_protocol += 1;
            return;
        }
        let fields = PacketFields::new(&view, self.protocol.fields);
        if let Some(f) = &self.filter {
            if !f.eval_bool(&fields, &mut self.scratch) {
                self.stats.filtered += 1;
                return;
            }
        }
        self.run_tail(&fields, out);
    }

    /// Shared-dispatch tail: sampling, prefilter, protocol match and the
    /// shared atoms have already been applied and accounted centrally;
    /// evaluate the private residual predicate over the shared parse and
    /// run the projection/aggregation stage.
    pub fn push_matched(&mut self, view: &PacketView, out: &mut Vec<StreamItem>) {
        let fields = PacketFields::new(view, self.protocol.fields);
        let residual = match &self.shared_split {
            Some(split) => split.residual.as_ref(),
            // No split computed: no atoms were shared for this LFTA, so
            // the full predicate is the residual.
            None => self.filter.as_ref(),
        };
        if let Some(f) = residual {
            if !f.eval_bool(&fields, &mut self.scratch) {
                self.stats.filtered += 1;
                return;
            }
        }
        self.run_tail(&fields, out);
    }

    fn run_tail(&mut self, fields: &PacketFields<'_>, out: &mut Vec<StreamItem>) {
        let before = out.len();
        match &mut self.kind {
            LftaKind::Project(progs) => {
                let mut vals = Vec::with_capacity(progs.len());
                for p in progs.iter() {
                    match p.eval(fields, &mut self.scratch) {
                        Some(v) => vals.push(v),
                        None => {
                            self.stats.not_protocol += 1;
                            return;
                        }
                    }
                }
                out.push(StreamItem::Tuple(Tuple::new(vals)));
            }
            LftaKind::Aggregate(dm) => dm.update(fields, out),
        }
        self.stats.tuples_out += (out.len() - before) as u64;
    }

    /// Heartbeat: the capture clock has reached `field_value` (in the
    /// punctuation source field's units, normally the 1-second `time`
    /// attribute). Emits an ordering-update token and flushes closed
    /// pre-aggregation groups.
    pub fn heartbeat(&mut self, field_value: u64, out: &mut Vec<StreamItem>) {
        let Some((out_col, _, div)) = self.punct_src else { return };
        let bound = field_value / div.max(1);
        if let LftaKind::Aggregate(dm) = &mut self.kind {
            let before = out.len();
            dm.flush_below(bound, out);
            self.stats.tuples_out += (out.len() - before) as u64;
        }
        out.push(StreamItem::Punct(Punct::new(out_col, Value::UInt(bound))));
    }

    /// End of capture: flush aggregation state.
    pub fn finish(&mut self, out: &mut Vec<StreamItem>) {
        if let LftaKind::Aggregate(dm) = &mut self.kind {
            let before = out.len();
            dm.finish(out);
            self.stats.tuples_out += (out.len() - before) as u64;
        }
    }

    /// Pre-aggregation table statistics, when this LFTA aggregates.
    pub fn dm_stats(&self) -> Option<DmStats> {
        match &self.kind {
            LftaKind::Aggregate(dm) => Some(dm.stats),
            LftaKind::Project(_) => None,
        }
    }

    /// The protocol this LFTA interprets.
    pub fn protocol_name(&self) -> &'static str {
        self.protocol.name
    }

    /// The protocol definition this LFTA interprets.
    pub fn protocol_def(&self) -> &'static ProtocolDef {
        self.protocol
    }

    /// The compiled BPF prefilter, when one exists.
    pub fn prefilter_program(&self) -> Option<&Arc<BpfProgram>> {
        self.prefilter.as_ref()
    }

    /// Re-point the prefilter at a canonical shared handle — `intern`
    /// maps a program to its deduplicated `Arc` (see
    /// `ops::prefilter::PrefilterCache`), so queries with structurally
    /// equal programs share one compilation.
    pub fn intern_prefilter(&mut self, intern: &mut dyn FnMut(Arc<BpfProgram>) -> Arc<BpfProgram>) {
        if let Some(p) = self.prefilter.take() {
            self.prefilter = Some(intern(p));
        }
    }

    /// The NIC snap length, when the query allows truncation.
    pub fn snaplen(&self) -> Option<usize> {
        self.snaplen
    }

    /// The predicate split computed for the shared prefilter, if any.
    pub fn shared_split(&self) -> Option<&SharedSplit> {
        self.shared_split.as_ref()
    }

    /// Install the predicate split for shared dispatch (build time only).
    pub fn set_shared_split(&mut self, split: SharedSplit) {
        self.shared_split = Some(split);
    }

    /// Serialize the LFTA's mutable state: the direct-mapped table (for
    /// aggregating LFTAs) and the execution counters. Projection LFTAs
    /// are stateless beyond counters, recorded with a kind tag so a
    /// mismatched restore is rejected.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        match &self.kind {
            LftaKind::Project(_) => w.put_u8(0),
            LftaKind::Aggregate(dm) => {
                w.put_u8(1);
                dm.snapshot_into(w);
            }
        }
        w.put_u64(self.stats.packets_in);
        w.put_u64(self.stats.prefiltered);
        w.put_u64(self.stats.sampled_out);
        w.put_u64(self.stats.not_protocol);
        w.put_u64(self.stats.filtered);
        w.put_u64(self.stats.tuples_out);
    }

    /// Restore state written by [`snapshot_state`](Self::snapshot_state)
    /// into a freshly built LFTA of the same shape.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.get_u8()?;
        match (&mut self.kind, tag) {
            (LftaKind::Project(_), 0) => {}
            (LftaKind::Aggregate(dm), 1) => dm.restore_from(r)?,
            (_, t) => return Err(proto(format!("lfta kind tag {t} does not match build"))),
        }
        self.stats.packets_in = r.get_u64()?;
        self.stats.prefiltered = r.get_u64()?;
        self.stats.sampled_out = r.get_u64()?;
        self.stats.not_protocol = r.get_u64()?;
        self.stats.filtered = r.get_u64()?;
        self.stats.tuples_out = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::AggCore;
    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::ast::{AggFunc, BinOp};
    use gs_gsql::plan::{Literal, PExpr};
    use gs_gsql::types::DataType;
    use gs_packet::builder::FrameBuilder;
    use gs_packet::capture::LinkType;

    fn prog(pe: &PExpr) -> Program {
        Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
            .unwrap()
    }

    fn tcp() -> &'static ProtocolDef {
        gs_packet::interp::protocol("tcp").unwrap()
    }

    fn field(name: &str) -> PExpr {
        PExpr::Col { index: tcp().field_index(name).unwrap(), ty: DataType::UInt }
    }

    fn pkt(ts_sec: u64, dport: u16, payload: &[u8]) -> CapPacket {
        let f = FrameBuilder::tcp(0x0a000001, 0x0a000002, 999, dport).payload(payload).build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, 0, LinkType::Ethernet, f)
    }

    fn port80_filter() -> Program {
        prog(&PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(field("destPort")),
            right: Box::new(PExpr::Lit(Literal::UInt(80))),
            ty: DataType::Bool,
        })
    }

    #[test]
    fn projection_lfta_filters_and_projects() {
        let mut lfta = Lfta::new(
            "t".into(),
            tcp(),
            None,
            None,
            Some(port80_filter()),
            LftaKind::Project(vec![prog(&field("time")), prog(&field("destPort"))]),
            Some((0, tcp().field_index("time").unwrap(), 1)),
        );
        let mut out = Vec::new();
        lfta.push_packet(&pkt(3, 80, b"x"), &mut out);
        lfta.push_packet(&pkt(4, 81, b"x"), &mut out);
        let udp = FrameBuilder::udp(1, 2, 9, 80).build_ethernet();
        lfta.push_packet(&CapPacket::full(0, 0, LinkType::Ethernet, udp), &mut out);
        assert_eq!(out.len(), 1);
        let t = out[0].as_tuple().unwrap();
        assert_eq!(t.get(0), &Value::UInt(3));
        assert_eq!(t.get(1), &Value::UInt(80));
        assert_eq!(lfta.stats.packets_in, 3);
        assert_eq!(lfta.stats.filtered, 1);
        assert_eq!(lfta.stats.not_protocol, 1);
        assert_eq!(lfta.stats.tuples_out, 1);
    }

    #[test]
    fn bpf_prefilter_short_circuits() {
        let mut lfta = Lfta::new(
            "t".into(),
            tcp(),
            Some(Arc::new(gs_nic::bpf::tcp_dst_port_filter(80))),
            None,
            None,
            LftaKind::Project(vec![prog(&field("destPort"))]),
            None,
        );
        let mut out = Vec::new();
        lfta.push_packet(&pkt(0, 80, b"x"), &mut out);
        lfta.push_packet(&pkt(0, 443, b"x"), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(lfta.stats.prefiltered, 1);
    }

    #[test]
    fn snaplen_truncates_payload_but_keeps_headers() {
        let mut lfta = Lfta::new(
            "t".into(),
            tcp(),
            None,
            Some(60),
            None,
            LftaKind::Project(vec![prog(&PExpr::Call {
                udf: "str_len".into(),
                args: vec![PExpr::Col {
                    index: tcp().field_index("payload").unwrap(),
                    ty: DataType::Str,
                }],
                ret: DataType::UInt,
                partial: false,
            })]),
            None,
        );
        let mut out = Vec::new();
        lfta.push_packet(&pkt(0, 80, &[7u8; 500]), &mut out);
        // 60 bytes capture - 54 header = 6 payload bytes visible.
        assert_eq!(out[0].as_tuple().unwrap().get(0), &Value::UInt(6));
    }

    #[test]
    fn aggregation_lfta_preaggregates_and_heartbeats() {
        // Group by time (ordered), count(*).
        let core = AggCore::new(
            vec![prog(&field("time"))],
            vec![(AggFunc::Count, None, DataType::UInt)],
            Some(0),
            0,
        );
        let mut lfta = Lfta::new(
            "agg".into(),
            tcp(),
            None,
            None,
            Some(port80_filter()),
            LftaKind::Aggregate(Box::new(DirectMappedAggregator::new(core, 64))),
            Some((0, tcp().field_index("time").unwrap(), 1)),
        );
        let mut out = Vec::new();
        lfta.push_packet(&pkt(1, 80, b"a"), &mut out);
        lfta.push_packet(&pkt(1, 80, b"b"), &mut out);
        assert!(out.is_empty(), "group 1 still open");
        lfta.push_packet(&pkt(2, 80, b"c"), &mut out);
        assert_eq!(out.len(), 1, "time advance flushes the closed second");
        let t = out[0].as_tuple().unwrap();
        assert_eq!(t.values(), &[Value::UInt(1), Value::UInt(2)]);

        // Heartbeat at time 5 flushes the open group and punctuates.
        out.clear();
        lfta.heartbeat(5, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_tuple().unwrap().values(), &[Value::UInt(2), Value::UInt(1)]);
        assert!(matches!(&out[1], StreamItem::Punct(p) if p.low == Value::UInt(5)));
        assert!(lfta.dm_stats().unwrap().outputs >= 2);
    }

    #[test]
    fn heartbeat_translates_bucket_divisor() {
        let mut lfta = Lfta::new(
            "t".into(),
            tcp(),
            None,
            None,
            None,
            LftaKind::Project(vec![prog(&PExpr::Binary {
                op: BinOp::Div,
                left: Box::new(field("time")),
                right: Box::new(PExpr::Lit(Literal::UInt(60))),
                ty: DataType::UInt,
            })]),
            Some((0, tcp().field_index("time").unwrap(), 60)),
        );
        let mut out = Vec::new();
        lfta.heartbeat(180, &mut out);
        assert!(matches!(&out[0], StreamItem::Punct(p) if p.col == 0 && p.low == Value::UInt(3)));
    }

    #[test]
    fn snapshot_restore_continues_exactly() {
        // Cut an aggregating LFTA mid-window; the restored one must
        // continue the open groups (same emissions, same counters) as if
        // capture never stopped.
        let mk = || {
            let core = AggCore::new(
                vec![prog(&field("time"))],
                vec![(AggFunc::Count, None, DataType::UInt)],
                Some(0),
                0,
            );
            Lfta::new(
                "agg".into(),
                tcp(),
                None,
                None,
                Some(port80_filter()),
                LftaKind::Aggregate(Box::new(DirectMappedAggregator::new(core, 64))),
                Some((0, tcp().field_index("time").unwrap(), 1)),
            )
        };
        let packets: Vec<CapPacket> =
            (0..20).map(|i| pkt(i / 4, if i % 3 == 0 { 80 } else { 81 }, b"x")).collect();
        let (head, tail) = packets.split_at(9); // cut inside time bucket 2

        let mut cont = mk();
        let mut cont_out = Vec::new();
        for p in &packets {
            cont.push_packet(p, &mut cont_out);
        }
        cont.finish(&mut cont_out);

        let mut first = mk();
        let mut split_out = Vec::new();
        for p in head {
            first.push_packet(p, &mut split_out);
        }
        let mut w = crate::snapshot::SnapWriter::new();
        first.snapshot_state(&mut w);
        let sealed = w.seal();

        let mut second = mk();
        let mut r = crate::snapshot::SnapReader::open(&sealed).expect("open");
        second.restore_state(&mut r).expect("restore");
        r.finish().expect("payload fully consumed");
        for p in tail {
            second.push_packet(p, &mut split_out);
        }
        second.finish(&mut split_out);

        assert_eq!(cont_out, split_out);
        assert_eq!(second.stats, cont.stats);
        assert_eq!(second.dm_stats(), cont.dm_stats());

        // A projection LFTA must refuse an aggregate snapshot.
        let mut proj = Lfta::new(
            "p".into(),
            tcp(),
            None,
            None,
            None,
            LftaKind::Project(vec![prog(&field("destPort"))]),
            None,
        );
        let mut r = crate::snapshot::SnapReader::open(&sealed).expect("open");
        assert!(proj.restore_state(&mut r).is_err());
    }

    #[test]
    fn garbage_packets_are_counted_not_crashed() {
        let mut lfta = Lfta::new(
            "t".into(),
            tcp(),
            None,
            None,
            None,
            LftaKind::Project(vec![prog(&field("destPort"))]),
            None,
        );
        let mut out = Vec::new();
        let garbage = CapPacket::full(0, 0, LinkType::Ethernet, bytes::Bytes::from_static(&[1, 2, 3]));
        lfta.push_packet(&garbage, &mut out);
        assert!(out.is_empty());
        assert_eq!(lfta.stats.not_protocol, 1);
    }
}
