//! The two-stream window join.
//!
//! "The join predicate must contain a constraint on an ordered attribute
//! from each table which can be used to define a join window. For example,
//! `B.ts = C.ts` or `B.ts >= C.ts - 1 and B.ts <= C.ts + 1`." (paper §2.1)
//!
//! Symmetric probe-then-insert hash join: equality conjuncts beyond the
//! window (e.g. `B.srcIP = C.srcIP`) become the hash key, so each arriving
//! tuple probes only the bucket it can match; the window constraint then
//! prunes by the ordered attribute, and whatever is left of the predicate
//! runs as a residual. Each matching pair is produced exactly once, by
//! whichever tuple arrives second. Ordered-attribute watermarks — advanced
//! by tuples and by punctuation — garbage-collect buffer entries that no
//! future tuple can match, bounding state without sliding windows.

use crate::expr::{EvalScratch, Program};
use crate::ops::Operator;
use crate::snapshot::{proto, SnapError, SnapReader, SnapWriter};
use crate::stats::OpCounters;
use crate::tuple::{StreamItem, Tuple};
use crate::value::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of a window join.
pub struct JoinConfig {
    /// Ordered column index in the left schema.
    pub left_col: usize,
    /// Ordered column index in the right schema.
    pub right_col: usize,
    /// Matches require `left ∈ [right + lo, right + hi]`.
    pub lo: i64,
    /// See `lo`.
    pub hi: i64,
    /// Banded slack of the left ordered column.
    pub left_slack: u64,
    /// Banded slack of the right ordered column.
    pub right_slack: u64,
    /// Equality pairs `(left col, right col)` used as the hash key.
    pub eq_keys: Vec<(usize, usize)>,
    /// Output-ordering mode (the §5 optimization dimension: "the choice of
    /// operator implementation affects the attribute ordering properties
    /// of its output ... monotonically increasing requires more buffer
    /// space").
    pub emit: EmitMode,
    /// For [`EmitMode::Sorted`], the output column carrying the left
    /// ordered attribute (tuples are held and released in its order).
    pub sort_out_col: usize,
}

/// How join results are released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitMode {
    /// Emit each match immediately: minimal buffering, output ordering is
    /// banded-increasing(window width).
    #[default]
    Banded,
    /// Hold matches and release them in nondecreasing order of the left
    /// ordered attribute: monotone output at the cost of buffer space.
    Sorted,
}

type Key = Box<[Value]>;

use crate::ops::OrderedTupleEntry as PendingEntry;

/// One side's buffer: hash buckets plus a global insertion-order queue
/// for watermark GC. Bucket deques are insertion-ordered, so the entry a
/// GC record refers to is always its bucket's front.
#[derive(Default)]
struct Side {
    buckets: HashMap<Key, VecDeque<(u64, Tuple)>>,
    order: VecDeque<(u64, Key)>,
    /// Multiset of buffered ordered values (banded inputs buffer out of
    /// insertion order, so the true minimum is not `order.front()`).
    ts_counts: BTreeMap<u64, usize>,
    /// Amortization for the straggler compaction: a full scan is allowed
    /// only when this reaches zero, then recharged to the scan's size.
    compact_countdown: usize,
    watermark: Option<u64>,
    done: bool,
    len: usize,
    /// Entries discarded by window GC (no future match possible).
    gc_dropped: u64,
}

impl Side {
    fn insert(&mut self, key: Key, ts: u64, t: Tuple) {
        self.buckets.entry(key.clone()).or_default().push_back((ts, t));
        self.order.push_back((ts, key));
        *self.ts_counts.entry(ts).or_insert(0) += 1;
        self.len += 1;
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.order.clear();
        self.ts_counts.clear();
        self.len = 0;
    }

    /// Smallest buffered ordered value.
    fn min_ts(&self) -> Option<u64> {
        self.ts_counts.keys().next().copied()
    }

    fn forget_ts(&mut self, ts: u64) {
        if let Some(c) = self.ts_counts.get_mut(&ts) {
            *c -= 1;
            if *c == 0 {
                self.ts_counts.remove(&ts);
            }
        }
    }

    /// Drop entries whose ordered value satisfies `dead`. The scan walks
    /// the insertion order from the front; with banded inputs a live entry
    /// may precede dead ones, so the walk continues past live entries up
    /// to the band (bounded work: at most the entries within one band of
    /// the front are re-examined).
    fn gc(&mut self, dead: impl Fn(u64) -> bool) {
        // Fast path: pop dead entries from the front.
        while let Some(&(ts, _)) = self.order.front() {
            if !dead(ts) {
                break;
            }
            let (ts, key) = self.order.pop_front().expect("peeked front");
            self.remove_bucket_entry(ts, &key);
        }
        // Slow path: dead stragglers parked behind a live front (possible
        // only for banded inputs). Deferred removal is safe — a dead entry
        // can never match and only costs memory — so the O(n) compaction is
        // amortized to O(1) per call by allowing one scan per n calls.
        if self.ts_counts.keys().next().is_some_and(|&min| dead(min)) {
            if self.compact_countdown > 0 {
                self.compact_countdown -= 1;
                return;
            }
            let mut order = std::mem::take(&mut self.order);
            self.compact_countdown = order.len();
            for (ts, key) in order.drain(..) {
                if dead(ts) {
                    self.remove_bucket_entry(ts, &key);
                } else {
                    self.order.push_back((ts, key));
                }
            }
        }
    }

    fn remove_bucket_entry(&mut self, ts: u64, key: &Key) {
        if let Some(bucket) = self.buckets.get_mut(key) {
            // Remove the specific (ts, _) entry: the front in FIFO death
            // order, else the first matching ts (banded stragglers).
            if let Some(pos) = bucket.iter().position(|(t, _)| *t == ts) {
                bucket.remove(pos);
            }
            if bucket.is_empty() {
                self.buckets.remove(key);
            }
        }
        self.forget_ts(ts);
        self.len -= 1;
        self.gc_dropped += 1;
    }

    /// Serialize the buffer in insertion order. The i-th occurrence of a
    /// key in `order` corresponds to the i-th entry of that key's bucket
    /// (both are insertion-ordered and kept 1:1 consistent), so pairing
    /// each order record with its tuple is a per-key cursor walk.
    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u32(self.order.len() as u32);
        let mut cursors: HashMap<&Key, usize> = HashMap::new();
        for (ts, key) in &self.order {
            let i = cursors.entry(key).or_insert(0);
            let (bts, tuple) =
                &self.buckets.get(key).expect("order/bucket consistency")[*i];
            debug_assert_eq!(bts, ts, "order/bucket entries pair in insertion order");
            *i += 1;
            w.put_u64(*ts);
            w.put_values(key);
            w.put_tuple(tuple);
        }
        w.put_u64(self.compact_countdown as u64);
        w.put_opt_u64(self.watermark);
        w.put_bool(self.done);
        w.put_u64(self.gc_dropped);
    }

    /// Rebuild the buffer by replaying [`insert`](Side::insert) in the
    /// serialized insertion order (restores buckets, order queue,
    /// ts-multiset, and length together).
    fn restore_from(&mut self, r: &mut SnapReader<'_>, key_arity: usize) -> Result<(), SnapError> {
        let n = r.get_count(13)?; // ts + key count + >=1-byte tuple
        self.clear();
        for _ in 0..n {
            let ts = r.get_u64()?;
            let key: Key = r.get_values()?.into_boxed_slice();
            if key.len() != key_arity {
                return Err(proto(format!(
                    "join key arity {} != {key_arity}",
                    key.len()
                )));
            }
            let tuple = r.get_tuple()?;
            self.insert(key, ts, tuple);
        }
        self.compact_countdown = r.get_u64()? as usize;
        self.watermark = r.get_opt_u64()?;
        self.done = r.get_bool()?;
        self.gc_dropped = r.get_u64()?;
        Ok(())
    }
}

/// The join operator. Residual predicate and projections run over the
/// concatenated tuple (left fields then right fields).
pub struct JoinOp {
    cfg: JoinConfig,
    residual: Option<Program>,
    projections: Vec<Program>,
    left: Side,
    right: Side,
    scratch: EvalScratch,
    /// Result tuples held back by [`EmitMode::Sorted`], keyed by the sort
    /// value (min-heap via `Reverse`).
    pending: std::collections::BinaryHeap<std::cmp::Reverse<PendingEntry>>,
    pending_seq: u64,
    /// Peak buffered tuples across both sides.
    pub peak_buffered: usize,
    /// Peak result tuples held for ordered release (Sorted mode only).
    pub peak_pending: usize,
    /// Output tuples produced.
    pub produced: u64,
    tuples_in: u64,
    batches: u64,
    puncts: u64,
    stats: Arc<OpCounters>,
}

impl JoinOp {
    /// Build a join.
    pub fn new(cfg: JoinConfig, residual: Option<Program>, projections: Vec<Program>) -> JoinOp {
        JoinOp {
            cfg,
            residual,
            projections,
            left: Side::default(),
            right: Side::default(),
            scratch: EvalScratch::default(),
            pending: std::collections::BinaryHeap::new(),
            pending_seq: 0,
            peak_buffered: 0,
            peak_pending: 0,
            produced: 0,
            tuples_in: 0,
            batches: 0,
            puncts: 0,
            stats: Arc::new(OpCounters::default()),
        }
    }

    /// Tuples currently buffered on both sides.
    pub fn buffered(&self) -> usize {
        self.left.len + self.right.len
    }

    fn key_of(&self, t: &Tuple, left: bool) -> Key {
        self.cfg
            .eq_keys
            .iter()
            .map(|&(l, r)| t.get(if left { l } else { r }).clone())
            .collect()
    }

    fn emit_match(&mut self, l: &Tuple, r: &Tuple, out: &mut Vec<StreamItem>) {
        let joined = l.concat(r);
        if let Some(res) = &self.residual {
            if !res.eval_bool(&joined, &mut self.scratch) {
                return;
            }
        }
        let mut vals = Vec::with_capacity(self.projections.len());
        for p in &self.projections {
            match p.eval(&joined, &mut self.scratch) {
                Some(v) => vals.push(v),
                None => return,
            }
        }
        self.produced += 1;
        let tuple = Tuple::new(vals);
        match self.cfg.emit {
            EmitMode::Banded => out.push(StreamItem::Tuple(tuple)),
            EmitMode::Sorted => {
                // `sort_out_col` must project the left ordered attribute;
                // a non-integer column keys everything at 0, which defers
                // release until end of stream (safe, never wrong-ordered).
                let sort_val = tuple.values().get(self.cfg.sort_out_col).and_then(|v| v.as_uint());
                debug_assert!(
                    sort_val.is_some(),
                    "EmitMode::Sorted requires sort_out_col to be an integer column"
                );
                let v = sort_val.unwrap_or(0);
                self.pending_seq += 1;
                self.pending.push(std::cmp::Reverse(PendingEntry {
                    v,
                    seq: self.pending_seq,
                    tuple,
                }));
                self.peak_pending = self.peak_pending.max(self.pending.len());
            }
        }
    }

    /// Release held results whose sort value can no longer be undercut by
    /// a future match: future left arrivals emit at `>= left_wm - slack`,
    /// and buffered left tuples may still pair at their own values.
    fn release_sorted(&mut self, out: &mut Vec<StreamItem>) {
        if self.cfg.emit != EmitMode::Sorted {
            return;
        }
        let mut bound = match (self.left.watermark, self.left.done) {
            (_, true) => u64::MAX,
            (Some(wm), false) => wm.saturating_sub(self.cfg.left_slack),
            (None, false) => return,
        };
        if let Some(min_buf) = self.left.min_ts() {
            bound = bound.min(min_buf);
        }
        while let Some(std::cmp::Reverse(e)) = self.pending.peek() {
            if e.v > bound {
                break;
            }
            let std::cmp::Reverse(e) = self.pending.pop().expect("peeked entry");
            out.push(StreamItem::Tuple(e.tuple));
        }
    }

    /// `left ∈ [right + lo, right + hi]`, in i128 to dodge overflow at
    /// the u64 edges.
    fn window_match(&self, lv: u64, rv: u64) -> bool {
        let d = i128::from(lv) - i128::from(rv);
        i128::from(self.cfg.lo) <= d && d <= i128::from(self.cfg.hi)
    }

    /// Drop buffer entries no future opposite tuple can match.
    fn gc(&mut self) {
        // Future left values are >= left_wm - left_slack =: fl. A right
        // entry r matches left values in [r+lo, r+hi]; it is dead once
        // r + hi < fl.
        if let Some(wm) = self.left.watermark {
            if !self.left.done {
                let fl = i128::from(wm.saturating_sub(self.cfg.left_slack));
                let hi = i128::from(self.cfg.hi);
                self.right.gc(|rv| i128::from(rv) + hi < fl);
            }
        }
        if self.left.done {
            self.right.clear();
        }
        // Future right values are >= right_wm - right_slack =: fr. A left
        // entry l matches right values in [l-hi, l-lo]; dead once
        // l - lo < fr.
        if let Some(wm) = self.right.watermark {
            if !self.right.done {
                let fr = i128::from(wm.saturating_sub(self.cfg.right_slack));
                let lo = i128::from(self.cfg.lo);
                self.left.gc(|lv| i128::from(lv) - lo < fr);
            }
        }
        if self.right.done {
            self.left.clear();
        }
    }

    /// Probe-and-insert for one tuple, without GC or sorted release (the
    /// callers decide whether those run per item or per batch; deferring
    /// them never changes results — GC only removes entries the window
    /// predicate already rejects, and release order comes from the heap).
    fn absorb_tuple(&mut self, is_left: bool, t: Tuple, out: &mut Vec<StreamItem>) {
        self.tuples_in += 1;
        let ord_col = if is_left { self.cfg.left_col } else { self.cfg.right_col };
        let Some(v) = t.get(ord_col).as_uint() else { return };
        let side = if is_left { &mut self.left } else { &mut self.right };
        side.watermark = Some(side.watermark.map_or(v, |w| w.max(v)));

        // Probe the opposite side's bucket.
        let key = self.key_of(&t, is_left);
        let opposite = if is_left { &self.right } else { &self.left };
        let matches: Vec<Tuple> = opposite
            .buckets
            .get(&key)
            .map(|bucket| {
                bucket
                    .iter()
                    .filter(|(ov, _)| {
                        if is_left {
                            self.window_match(v, *ov)
                        } else {
                            self.window_match(*ov, v)
                        }
                    })
                    .map(|(_, o)| o.clone())
                    .collect()
            })
            .unwrap_or_default();
        for o in &matches {
            if is_left {
                self.emit_match(&t, o, out);
            } else {
                self.emit_match(o, &t, out);
            }
        }

        let opposite_done = if is_left { self.right.done } else { self.left.done };
        if !opposite_done {
            let side = if is_left { &mut self.left } else { &mut self.right };
            side.insert(key, v, t);
        }
    }

    /// Punctuation on the window column advances the side's watermark,
    /// enabling GC of the opposite buffer even when the side is silent.
    fn absorb_punct(&mut self, port: usize, p: &crate::punct::Punct) -> bool {
        self.puncts += 1;
        let Some(low) = p.low.as_uint() else { return false };
        if port == 0 && p.col == self.cfg.left_col {
            // Future left values >= low: express as watermark with the
            // slack pre-compensated.
            let wm = low.saturating_add(self.cfg.left_slack);
            self.left.watermark = Some(self.left.watermark.map_or(wm, |w| w.max(wm)));
        } else if port == 1 && p.col == self.cfg.right_col {
            let wm = low.saturating_add(self.cfg.right_slack);
            self.right.watermark = Some(self.right.watermark.map_or(wm, |w| w.max(wm)));
        }
        true
    }

    fn push_side(&mut self, is_left: bool, t: Tuple, out: &mut Vec<StreamItem>) {
        self.absorb_tuple(is_left, t, out);
        self.gc();
        self.release_sorted(out);
        self.peak_buffered = self.peak_buffered.max(self.buffered());
    }

    /// Mark one side exhausted (its buffer side can then be dropped as the
    /// other side advances).
    pub fn finish_input(&mut self, port: usize) {
        if port == 0 {
            self.left.done = true;
        } else {
            self.right.done = true;
        }
        self.gc();
    }

}

impl Operator for JoinOp {
    fn n_inputs(&self) -> usize {
        2
    }

    fn push(&mut self, port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        match item {
            StreamItem::Tuple(t) => self.push_side(port == 0, t, out),
            StreamItem::Punct(p) => {
                if self.absorb_punct(port, &p) {
                    self.gc();
                    self.release_sorted(out);
                }
            }
        }
    }

    fn push_batch(&mut self, port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        // Probe-and-insert every item first, then GC / sorted-release once
        // for the whole batch. Deferring GC is safe: dead buffer entries
        // always fail the window predicate, so they can never produce a
        // spurious match, they only linger until batch end.
        self.batches += 1;
        for item in items {
            match item {
                StreamItem::Tuple(t) => self.absorb_tuple(port == 0, t, out),
                StreamItem::Punct(p) => {
                    self.absorb_punct(port, &p);
                }
            }
        }
        self.gc();
        self.release_sorted(out);
        self.peak_buffered = self.peak_buffered.max(self.buffered());
    }

    fn finish(&mut self, out: &mut Vec<StreamItem>) {
        self.left.done = true;
        self.right.done = true;
        self.left.clear();
        self.right.clear();
        self.release_sorted(out);
    }

    fn kind(&self) -> &'static str {
        "join"
    }

    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        Some(self.stats.clone())
    }

    fn publish_stats(&self) {
        self.stats.tuples_in.set(self.tuples_in);
        self.stats.tuples_out.set(self.produced);
        self.stats.batches_in.set(self.batches);
        self.stats.puncts_in.set(self.puncts);
        self.stats.gc_dropped.set(self.left.gc_dropped + self.right.gc_dropped);
        self.stats.peak_held.set(self.peak_buffered as u64);
    }

    /// Both window buffers, the sorted-release heap, and the counters.
    fn snapshot(&self, w: &mut SnapWriter) {
        self.left.snapshot_into(w);
        self.right.snapshot_into(w);
        w.put_u32(self.pending.len() as u32);
        for std::cmp::Reverse(e) in self.pending.iter() {
            w.put_u64(e.v);
            w.put_u64(e.seq);
            w.put_tuple(&e.tuple);
        }
        w.put_u64(self.pending_seq);
        w.put_u64(self.peak_buffered as u64);
        w.put_u64(self.peak_pending as u64);
        w.put_u64(self.produced);
        w.put_u64(self.tuples_in);
        w.put_u64(self.batches);
        w.put_u64(self.puncts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let arity = self.cfg.eq_keys.len();
        self.left.restore_from(r, arity)?;
        self.right.restore_from(r, arity)?;
        let k = r.get_count(17)?;
        self.pending.clear();
        for _ in 0..k {
            let v = r.get_u64()?;
            let seq = r.get_u64()?;
            let tuple = r.get_tuple()?;
            self.pending.push(std::cmp::Reverse(PendingEntry { v, seq, tuple }));
        }
        self.pending_seq = r.get_u64()?;
        self.peak_buffered = (r.get_u64()? as usize).max(self.buffered());
        self.peak_pending = (r.get_u64()? as usize).max(self.pending.len());
        self.produced = r.get_u64()?;
        self.tuples_in = r.get_u64()?;
        self.batches = r.get_u64()?;
        self.puncts = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::ast::BinOp;
    use gs_gsql::plan::PExpr;
    use gs_gsql::types::DataType;

    fn prog(pe: &PExpr) -> Program {
        Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
            .unwrap()
    }

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    fn config(lo: i64, hi: i64, eq_keys: Vec<(usize, usize)>) -> JoinConfig {
        JoinConfig {
            left_col: 0,
            right_col: 0,
            lo,
            hi,
            left_slack: 0,
            right_slack: 0,
            eq_keys,
            emit: EmitMode::Banded,
            sort_out_col: 0,
        }
    }

    /// Join on ts (col 0 both sides), projecting (l.ts, l.v, r.v) where
    /// tuples are (ts, v) pairs.
    fn join(lo: i64, hi: i64, residual_on_v: bool) -> JoinOp {
        let residual = residual_on_v.then(|| {
            prog(&PExpr::Binary {
                op: BinOp::Eq,
                left: Box::new(col(1)),
                right: Box::new(col(3)),
                ty: DataType::Bool,
            })
        });
        JoinOp::new(
            config(lo, hi, vec![]),
            residual,
            vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
        )
    }

    fn tup(ts: u64, v: u64) -> StreamItem {
        StreamItem::Tuple(Tuple::new(vec![Value::UInt(ts), Value::UInt(v)]))
    }

    fn rows(out: &[StreamItem]) -> Vec<(u64, u64, u64)> {
        out.iter()
            .filter_map(|i| i.as_tuple())
            .map(|t| {
                (
                    t.get(0).as_uint().unwrap(),
                    t.get(1).as_uint().unwrap(),
                    t.get(2).as_uint().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn equality_window_matches_same_ts() {
        let mut j = join(0, 0, false);
        let mut out = Vec::new();
        j.push(0, tup(1, 10), &mut out);
        j.push(1, tup(1, 20), &mut out);
        j.push(1, tup(2, 21), &mut out);
        j.push(0, tup(2, 11), &mut out);
        assert_eq!(rows(&out), vec![(1, 10, 20), (2, 11, 21)]);
        assert_eq!(j.produced, 2);
    }

    #[test]
    fn band_window_matches_within_band() {
        let mut j = join(-1, 1, false);
        let mut out = Vec::new();
        j.push(0, tup(5, 1), &mut out);
        j.push(1, tup(4, 2), &mut out); // 5-4 = 1 <= 1 ✓
        j.push(1, tup(6, 3), &mut out); // 5-6 = -1 ✓
        j.push(1, tup(7, 4), &mut out); // 5-7 = -2 ✗
        let r = rows(&out);
        assert_eq!(r, vec![(5, 1, 2), (5, 1, 3)]);
    }

    #[test]
    fn no_duplicate_pairs() {
        let mut j = join(0, 0, false);
        let mut out = Vec::new();
        // Same-ts tuples arriving in both orders must pair exactly once.
        j.push(0, tup(3, 1), &mut out);
        j.push(1, tup(3, 2), &mut out);
        j.push(0, tup(3, 5), &mut out); // pairs with the buffered right
        assert_eq!(rows(&out).len(), 2);
    }

    #[test]
    fn residual_predicate_filters() {
        let mut j = join(0, 0, true);
        let mut out = Vec::new();
        j.push(0, tup(1, 7), &mut out);
        j.push(1, tup(1, 7), &mut out);
        j.push(1, tup(1, 8), &mut out);
        assert_eq!(rows(&out), vec![(1, 7, 7)], "only v-equal pairs survive");
    }

    #[test]
    fn hash_keys_prune_probes_with_same_results() {
        // The same v-equality expressed as a hash key instead of residual.
        let mk_hash = || {
            JoinOp::new(
                config(0, 0, vec![(1, 1)]),
                None,
                vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
            )
        };
        let mut hash_join = mk_hash();
        let mut residual_join = join(0, 0, true);
        let data: Vec<(usize, u64, u64)> = (0..200)
            .map(|i| ((i % 2), (i / 10) as u64, (i % 7) as u64))
            .collect();
        let mut out_h = Vec::new();
        let mut out_r = Vec::new();
        for &(port, ts, v) in &data {
            hash_join.push(port, tup(ts, v), &mut out_h);
            residual_join.push(port, tup(ts, v), &mut out_r);
        }
        let mut rh = rows(&out_h);
        let mut rr = rows(&out_r);
        rh.sort();
        rr.sort();
        assert_eq!(rh, rr, "hash keys must not change join semantics");
        assert!(!rh.is_empty());
    }

    #[test]
    fn watermarks_bound_buffers() {
        let mut j = join(0, 0, false);
        let mut out = Vec::new();
        for ts in 0..1000u64 {
            j.push(0, tup(ts, 0), &mut out);
            j.push(1, tup(ts, 0), &mut out);
        }
        // With an equality window and synchronized sides, buffers stay tiny.
        assert!(j.peak_buffered <= 4, "peak {}", j.peak_buffered);
        assert_eq!(j.produced, 1000);
    }

    #[test]
    fn punctuation_gcs_a_silent_side() {
        let mut j = join(0, 0, false);
        let mut out = Vec::new();
        for ts in 0..100u64 {
            j.push(1, tup(ts, 0), &mut out);
        }
        assert_eq!(j.buffered(), 100, "right side waits for left matches");
        // The left side is silent but punctuates: everything below 1000.
        j.push(0, StreamItem::Punct(crate::punct::Punct::new(0, Value::UInt(1_000))), &mut out);
        assert_eq!(j.buffered(), 0);
    }

    #[test]
    fn banded_slack_retains_window() {
        let mut j = JoinOp::new(
            JoinConfig {
                left_col: 0,
                right_col: 0,
                lo: 0,
                hi: 0,
                left_slack: 5,
                right_slack: 0,
                eq_keys: vec![],
                emit: EmitMode::Banded,
                sort_out_col: 0,
            },
            None,
            vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
        );
        let mut out = Vec::new();
        j.push(1, tup(10, 1), &mut out);
        j.push(0, tup(14, 2), &mut out); // no match, but left watermark = 14
        // left is banded(5): future left can still be 9 or 10 — right@10
        // must survive GC.
        j.push(0, tup(10, 3), &mut out);
        assert_eq!(rows(&out), vec![(10, 3, 1)]);
    }

    #[test]
    fn finish_input_clears_opposite_buffer() {
        let mut j = join(0, 0, false);
        let mut out = Vec::new();
        j.push(1, tup(1, 0), &mut out);
        j.push(1, tup(2, 0), &mut out);
        j.finish_input(0);
        assert_eq!(j.buffered(), 0, "no left tuples can ever match");
    }

    #[test]
    fn sorted_emission_is_monotone_where_banded_is_not() {
        // Band window ±2 over out-of-order-within-band arrivals.
        let mk = |emit| {
            JoinOp::new(
                JoinConfig {
                    left_col: 0,
                    right_col: 0,
                    lo: -2,
                    hi: 2,
                    left_slack: 2,
                    right_slack: 0,
                    eq_keys: vec![],
                    emit,
                    sort_out_col: 0,
                },
                None,
                vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
            )
        };
        let feed = |j: &mut JoinOp| {
            let mut out = Vec::new();
            for ts in [5u64, 3, 6, 4, 8, 7, 10, 9, 14, 12, 16, 15] {
                j.push(0, tup(ts, 1), &mut out);
                j.push(1, tup(ts, 2), &mut out);
            }
            j.finish(&mut out);
            rows(&out).iter().map(|r| r.0).collect::<Vec<u64>>()
        };
        let mut banded = mk(EmitMode::Banded);
        let banded_vals = feed(&mut banded);
        let mut sorted = mk(EmitMode::Sorted);
        let sorted_vals = feed(&mut sorted);

        // Same multiset of results...
        let norm = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(norm(banded_vals.clone()), norm(sorted_vals.clone()));
        // ...but only Sorted is monotone, and it pays with buffering.
        assert!(
            banded_vals.windows(2).any(|w| w[0] > w[1]),
            "banded emission should be out of order on this input: {banded_vals:?}"
        );
        assert!(
            sorted_vals.windows(2).all(|w| w[0] <= w[1]),
            "sorted emission must be monotone: {sorted_vals:?}"
        );
        assert!(
            sorted.peak_pending > 0,
            "monotone output requires extra buffer space (the paper's trade-off)"
        );
    }

    #[test]
    fn sorted_emission_equality_window() {
        let mut j = JoinOp::new(
            JoinConfig {
                left_col: 0,
                right_col: 0,
                lo: 0,
                hi: 0,
                left_slack: 0,
                right_slack: 0,
                eq_keys: vec![],
                emit: EmitMode::Sorted,
                sort_out_col: 0,
            },
            None,
            vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
        );
        let mut out = Vec::new();
        for ts in 0..50u64 {
            j.push(0, tup(ts, 0), &mut out);
            j.push(1, tup(ts, 0), &mut out);
        }
        j.finish(&mut out);
        let vals: Vec<u64> = rows(&out).iter().map(|r| r.0).collect();
        assert_eq!(vals.len(), 50);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn push_batch_matches_item_pushes() {
        for emit in [EmitMode::Banded, EmitMode::Sorted] {
            let mk = || {
                JoinOp::new(
                    JoinConfig {
                        left_col: 0,
                        right_col: 0,
                        lo: -1,
                        hi: 1,
                        left_slack: 1,
                        right_slack: 1,
                        eq_keys: vec![],
                        emit,
                        sort_out_col: 0,
                    },
                    None,
                    vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
                )
            };
            // Banded-within-1 arrivals on both sides, plus a punctuation
            // mid-stream on the left.
            let left: Vec<StreamItem> = [1u64, 3, 2, 4, 6, 5, 9, 8]
                .iter()
                .map(|&ts| tup(ts, 1))
                .chain([StreamItem::Punct(crate::punct::Punct::new(0, Value::UInt(8)))])
                .collect();
            let right: Vec<StreamItem> =
                [2u64, 1, 3, 5, 4, 7, 8, 10].iter().map(|&ts| tup(ts, 2)).collect();

            let mut item_j = mk();
            let mut item_out = Vec::new();
            for it in left.iter().cloned() {
                item_j.push(0, it, &mut item_out);
            }
            for it in right.iter().cloned() {
                item_j.push(1, it, &mut item_out);
            }
            item_j.finish(&mut item_out);

            let mut batch_j = mk();
            let mut batch_out = Vec::new();
            batch_j.push_batch(0, left, &mut batch_out);
            batch_j.push_batch(1, right, &mut batch_out);
            batch_j.finish(&mut batch_out);

            let norm = |out: &[StreamItem]| {
                let mut r = rows(out);
                r.sort();
                r
            };
            assert_eq!(norm(&item_out), norm(&batch_out), "emit mode {emit:?}");
            assert_eq!(item_j.produced, batch_j.produced);
            if emit == EmitMode::Sorted {
                // The batch path must preserve the sorted-release contract.
                let vals: Vec<u64> = rows(&batch_out).iter().map(|r| r.0).collect();
                assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
            }
        }
    }

    #[test]
    fn snapshot_restore_continues_exactly() {
        use crate::snapshot::{SnapReader, SnapWriter};
        // Both emit modes, band window, hash key: cut mid-window with
        // tuples buffered on both sides (and, in Sorted mode, results
        // held in the release heap); restore into a fresh join and feed
        // the tail — the combined output must equal the uninterrupted
        // run's, in the same order.
        for emit in [EmitMode::Banded, EmitMode::Sorted] {
            let mk = || {
                JoinOp::new(
                    JoinConfig {
                        left_col: 0,
                        right_col: 0,
                        lo: -1,
                        hi: 1,
                        left_slack: 1,
                        right_slack: 1,
                        eq_keys: vec![(1, 1)],
                        emit,
                        sort_out_col: 0,
                    },
                    None,
                    vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
                )
            };
            let feed: Vec<(usize, u64, u64)> = vec![
                (0, 1, 7),
                (1, 2, 7),
                (0, 3, 8),
                (1, 3, 8),
                (0, 2, 7),
                (1, 4, 7),
                (0, 5, 8),
                (1, 5, 8),
                (0, 6, 7),
                (1, 7, 7),
            ];
            let (head, tail) = feed.split_at(5);

            let mut cont = mk();
            let mut cont_out = Vec::new();
            for &(p, ts, v) in &feed {
                cont.push(p, tup(ts, v), &mut cont_out);
            }
            cont.finish(&mut cont_out);

            let mut first = mk();
            let mut split_out = Vec::new();
            for &(p, ts, v) in head {
                first.push(p, tup(ts, v), &mut split_out);
            }
            assert!(first.buffered() > 0, "cut point holds window state");
            let mut w = SnapWriter::new();
            Operator::snapshot(&first, &mut w);
            let sealed = w.seal();

            let mut second = mk();
            let mut r = SnapReader::open(&sealed).expect("open");
            Operator::restore(&mut second, &mut r).expect("restore");
            r.finish().expect("payload fully consumed");
            assert_eq!(second.buffered(), first.buffered());
            for &(p, ts, v) in tail {
                second.push(p, tup(ts, v), &mut split_out);
            }
            second.finish(&mut split_out);

            assert_eq!(rows(&cont_out), rows(&split_out), "emit mode {emit:?}");
            assert_eq!(second.produced, cont.produced);
            assert_eq!(second.peak_buffered, cont.peak_buffered);
        }
    }

    #[test]
    fn gc_keeps_bucket_order_consistent() {
        // Interleave two keys, GC part of the window, and check no stale
        // matches appear.
        let mut j = JoinOp::new(
            config(0, 0, vec![(1, 1)]),
            None,
            vec![prog(&col(0)), prog(&col(1)), prog(&col(3))],
        );
        let mut out = Vec::new();
        j.push(1, tup(1, 7), &mut out);
        j.push(1, tup(1, 8), &mut out);
        j.push(1, tup(2, 7), &mut out);
        // Left advances to 2: right entries at ts 1 die.
        j.push(0, tup(2, 9), &mut out);
        assert!(rows(&out).is_empty());
        assert_eq!(j.right.len, 1, "only the ts-2 right entry survives");
        j.push(0, tup(2, 7), &mut out);
        assert_eq!(rows(&out), vec![(2, 7, 7)]);
    }
}
