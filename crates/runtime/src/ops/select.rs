//! Selection / projection over tuple streams.
//!
//! Both operators here have native columnar paths: filtering rewrites
//! the batch's selection vector in place (no data movement), and
//! projection evaluates each output column with the vector kernels,
//! falling back to row-at-a-time evaluation when a program has no
//! kernel.

use crate::batch::{ColStep, ColumnBatch, RowView};
use crate::expr::vector::VecVal;
use crate::expr::{EvalScratch, Program};
use crate::ops::Operator;
use crate::punct::Punct;
use crate::stats::OpCounters;
use crate::tuple::{StreamItem, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// Live-row indices passing `pred`: one vectorized pass when a kernel
/// exists, otherwise a row-at-a-time pass — same selection either way.
fn filter_keep(pred: &Program, cb: &ColumnBatch, scratch: &mut EvalScratch) -> Vec<u32> {
    let n = cb.n_rows();
    match pred.eval_vec(cb) {
        Some(v) => (0..n).filter(|&i| v.truthy(i)).map(|i| i as u32).collect(),
        None => (0..n)
            .filter(|&i| pred.eval_bool(&RowView::new(cb, i), scratch))
            .map(|i| i as u32)
            .collect(),
    }
}

/// Filter + project in one pass. Punctuation is translated through the
/// projection when the punctuated column survives as an identity (or
/// divided-bucket) projection; otherwise it is dropped, which is always
/// safe (punctuation is an optimization, never required for correctness).
pub struct SelectProject {
    filter: Option<Program>,
    projections: Vec<Program>,
    /// `(input col, output col, divisor)` triples for punctuation
    /// translation: output value = input value / divisor.
    punct_map: Vec<(usize, usize, u64)>,
    scratch: EvalScratch,
    /// Tuples seen / kept (diagnostics).
    pub seen: u64,
    /// Tuples that passed the filter and projected successfully.
    pub kept: u64,
    batches: u64,
    puncts: u64,
    stats: Arc<OpCounters>,
}

impl SelectProject {
    /// Build from compiled programs.
    pub fn new(
        filter: Option<Program>,
        projections: Vec<Program>,
        punct_map: Vec<(usize, usize, u64)>,
    ) -> SelectProject {
        SelectProject {
            filter,
            projections,
            punct_map,
            scratch: EvalScratch::default(),
            seen: 0,
            kept: 0,
            batches: 0,
            puncts: 0,
            stats: Arc::new(OpCounters::default()),
        }
    }
}

impl SelectProject {
    fn push_tuple(&mut self, t: &Tuple, out: &mut Vec<StreamItem>) {
        self.seen += 1;
        if let Some(f) = &self.filter {
            if !f.eval_bool(t, &mut self.scratch) {
                return;
            }
        }
        // Short-circuiting collect: a partial UDF / missing field
        // discards the tuple.
        let scratch = &mut self.scratch;
        let projected: Option<Tuple> =
            self.projections.iter().map(|p| p.eval(t, scratch)).collect();
        if let Some(tuple) = projected {
            self.kept += 1;
            out.push(StreamItem::Tuple(tuple));
        }
    }

    fn push_punct(&mut self, p: &Punct, out: &mut Vec<StreamItem>) {
        self.puncts += 1;
        let mut ps = Vec::new();
        self.translate_punct(p, &mut ps);
        out.extend(ps.into_iter().map(StreamItem::Punct));
    }

    fn translate_punct(&self, p: &Punct, out: &mut Vec<Punct>) {
        for (in_col, out_col, div) in &self.punct_map {
            if p.col == *in_col {
                if let Some(v) = p.low.as_uint() {
                    out.push(Punct::new(*out_col, Value::UInt(v / div.max(&1))));
                }
            }
        }
    }
}

impl Operator for SelectProject {
    fn push(&mut self, _port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        match item {
            StreamItem::Tuple(t) => self.push_tuple(&t, out),
            StreamItem::Punct(p) => self.push_punct(&p, out),
        }
    }

    fn push_batch(&mut self, _port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        // One reservation for the common all-tuples-pass case; the match
        // dispatch stays, but counter updates and projected-tuple pushes
        // hit a pre-grown vector.
        self.batches += 1;
        out.reserve(items.len());
        for item in items {
            match item {
                StreamItem::Tuple(t) => self.push_tuple(&t, out),
                StreamItem::Punct(p) => self.push_punct(&p, out),
            }
        }
    }

    fn col_capable(&self) -> bool {
        true
    }

    fn push_cols(&mut self, cols: ColumnBatch, punct: Option<Punct>) -> ColStep {
        self.batches += 1;
        let n = cols.n_rows();
        self.seen += n as u64;
        // Filter pass: rewrite the selection vector.
        let cb = match &self.filter {
            None => cols,
            Some(f) => {
                let keep = filter_keep(f, &cols, &mut self.scratch);
                if keep.len() == n {
                    cols
                } else {
                    cols.narrow(keep)
                }
            }
        };
        let m = cb.n_rows();
        // Vectorized projections; any kernel miss falls the whole batch
        // back to row evaluation (output columns must stay aligned).
        let mut vecs = Vec::with_capacity(self.projections.len());
        let all_vec = self.projections.iter().all(|p| match p.eval_vec(&cb) {
            Some(v) => {
                vecs.push(v);
                true
            }
            None => false,
        });
        if all_vec {
            // A row where any projection failed is discarded — the row
            // path's short-circuiting collect.
            let keep: Option<Vec<u32>> = if vecs.iter().any(VecVal::any_invalid) {
                Some(
                    (0..m)
                        .filter(|&i| vecs.iter().all(|v| v.valid(i)))
                        .map(|i| i as u32)
                        .collect(),
                )
            } else {
                None
            };
            self.kept += keep.as_ref().map_or(m, Vec::len) as u64;
            let out_cols =
                vecs.into_iter().map(|v| v.into_column(keep.as_deref(), m)).collect();
            let out_cb = ColumnBatch::from_columns(out_cols);
            let mut ps = Vec::new();
            if let Some(p) = &punct {
                self.puncts += 1;
                self.translate_punct(p, &mut ps);
            }
            return if ps.len() <= 1 {
                ColStep::Cols(out_cb, ps.pop())
            } else {
                // One input token translating to several output tokens
                // cannot ride a columnar batch — materialize.
                let mut items = out_cb.into_items(None);
                items.extend(ps.into_iter().map(StreamItem::Punct));
                ColStep::Rows(items)
            };
        }
        let mut out = Vec::with_capacity(m + 1);
        for i in 0..m {
            let rv = RowView::new(&cb, i);
            let scratch = &mut self.scratch;
            let projected: Option<Tuple> =
                self.projections.iter().map(|p| p.eval(&rv, scratch)).collect();
            if let Some(t) = projected {
                self.kept += 1;
                out.push(StreamItem::Tuple(t));
            }
        }
        if let Some(p) = punct {
            self.push_punct(&p, &mut out);
        }
        ColStep::Rows(out)
    }

    fn finish(&mut self, _out: &mut Vec<StreamItem>) {}

    fn kind(&self) -> &'static str {
        "select"
    }

    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        Some(self.stats.clone())
    }

    fn publish_stats(&self) {
        self.stats.tuples_in.set(self.seen);
        self.stats.tuples_out.set(self.kept);
        self.stats.batches_in.set(self.batches);
        self.stats.puncts_in.set(self.puncts);
    }
}

/// Pure filter: drops tuples failing the predicate, passes punctuation
/// through unchanged (the schema is unchanged, so bounds stay valid).
pub struct FilterOp {
    pred: Program,
    scratch: EvalScratch,
    /// Tuples seen.
    pub seen: u64,
    /// Tuples kept.
    pub kept: u64,
    batches: u64,
    puncts: u64,
    stats: Arc<OpCounters>,
}

impl FilterOp {
    /// Build from a compiled boolean program.
    pub fn new(pred: Program) -> FilterOp {
        FilterOp {
            pred,
            scratch: EvalScratch::default(),
            seen: 0,
            kept: 0,
            batches: 0,
            puncts: 0,
            stats: Arc::new(OpCounters::default()),
        }
    }
}

impl Operator for FilterOp {
    fn push(&mut self, _port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        match item {
            StreamItem::Tuple(t) => {
                self.seen += 1;
                if self.pred.eval_bool(&t, &mut self.scratch) {
                    self.kept += 1;
                    out.push(StreamItem::Tuple(t));
                }
            }
            p @ StreamItem::Punct(_) => {
                self.puncts += 1;
                out.push(p);
            }
        }
    }

    fn push_batch(&mut self, _port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        self.batches += 1;
        out.reserve(items.len());
        for item in items {
            match item {
                StreamItem::Tuple(t) => {
                    self.seen += 1;
                    if self.pred.eval_bool(&t, &mut self.scratch) {
                        self.kept += 1;
                        out.push(StreamItem::Tuple(t));
                    }
                }
                p @ StreamItem::Punct(_) => {
                    self.puncts += 1;
                    out.push(p);
                }
            }
        }
    }

    fn col_capable(&self) -> bool {
        true
    }

    fn push_cols(&mut self, cols: ColumnBatch, punct: Option<Punct>) -> ColStep {
        self.batches += 1;
        let n = cols.n_rows();
        self.seen += n as u64;
        if punct.is_some() {
            self.puncts += 1;
        }
        let keep = filter_keep(&self.pred, &cols, &mut self.scratch);
        self.kept += keep.len() as u64;
        let cb = if keep.len() == n { cols } else { cols.narrow(keep) };
        ColStep::Cols(cb, punct)
    }

    fn finish(&mut self, _out: &mut Vec<StreamItem>) {}

    fn kind(&self) -> &'static str {
        "filter"
    }

    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        Some(self.stats.clone())
    }

    fn publish_stats(&self) {
        self.stats.tuples_in.set(self.seen);
        self.stats.tuples_out.set(self.kept);
        self.stats.batches_in.set(self.batches);
        self.stats.puncts_in.set(self.puncts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::ast::BinOp;
    use gs_gsql::plan::{Literal, PExpr};
    use gs_gsql::types::DataType;

    fn prog(pe: &PExpr) -> Program {
        Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
            .unwrap()
    }

    fn col(i: usize) -> PExpr {
        PExpr::Col { index: i, ty: DataType::UInt }
    }

    #[test]
    fn filters_and_projects() {
        let filter = prog(&PExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(col(0)),
            right: Box::new(PExpr::Lit(Literal::UInt(10))),
            ty: DataType::Bool,
        });
        let mut op = SelectProject::new(Some(filter), vec![prog(&col(1))], vec![]);
        let mut out = Vec::new();
        op.push(0, StreamItem::Tuple(Tuple::new(vec![Value::UInt(11), Value::UInt(7)])), &mut out);
        op.push(0, StreamItem::Tuple(Tuple::new(vec![Value::UInt(9), Value::UInt(8)])), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_tuple().unwrap().get(0), &Value::UInt(7));
        assert_eq!((op.seen, op.kept), (2, 1));
    }

    #[test]
    fn punct_translated_through_identity_and_bucket() {
        let mut op = SelectProject::new(None, vec![prog(&col(0))], vec![(0, 0, 60)]);
        let mut out = Vec::new();
        op.push(0, StreamItem::Punct(Punct::new(0, Value::UInt(120))), &mut out);
        assert_eq!(out, vec![StreamItem::Punct(Punct::new(0, Value::UInt(2)))]);
        // Punct on an untranslated column is dropped.
        out.clear();
        op.push(0, StreamItem::Punct(Punct::new(5, Value::UInt(9))), &mut out);
        assert!(out.is_empty());
    }
}
