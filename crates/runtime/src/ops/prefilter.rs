//! The cross-query shared prefilter: evaluate each packet once, dispatch
//! to N LFTAs by bitmask.
//!
//! The paper's §3 prefilter is per-LFTA: every registered query re-parses
//! the packet and re-evaluates its own BPF program and predicate, so
//! per-packet cost grows linearly with query count. This module factors
//! the distinct work across all registered LFTAs into one shared pass:
//!
//! 1. one `PacketView` parse per packet (instead of one per LFTA);
//! 2. each *distinct* compiled BPF program runs once (queries with equal
//!    programs share the verdict);
//! 3. each *distinct* protocol match runs once;
//! 4. each *distinct* predicate atom (see `gs_gsql::pushdown::extract_atoms`)
//!    evaluates once, setting a bit in a per-packet matched mask;
//! 5. LFTA `k` runs its tail only if its precomputed required-atom mask is
//!    a subset of the matched mask — its own prefilter, parse and shared
//!    conjuncts are skipped because the pass hands it the parsed view and
//!    the verdicts.
//!
//! Per-LFTA counters are replayed exactly: the pass charges `prefiltered`,
//! `not_protocol` and `filtered` from the memoized verdicts in the same
//! order the private path would have, so shared-on and shared-off runs are
//! output- and counter-identical (pinned by `gs-tests/prop_prefilter`).

use crate::expr::{EvalScratch, FieldSource, PacketFields, Program};
use crate::ops::lfta::Lfta;
use crate::params::ParamBindings;
use crate::stats::{Counter, StatSource, StatsRegistry};
use crate::tuple::StreamItem;
use crate::udf::{FileStore, UdfRegistry};
use crate::value::Value;
use gs_gsql::ast::BinOp;
use gs_gsql::plan::{Literal, PExpr};
use gs_gsql::types::DataType;
use gs_nic::bpf::{BpfProgram, JeqFamily};
use gs_packet::capture::LinkType;
use gs_packet::interp::ProtocolDef;
use gs_packet::view::{Network, Transport};
use gs_packet::{CapPacket, PacketView};
use std::sync::Arc;

/// Deduplication cache for compiled BPF prefilters: structurally equal
/// programs collapse to one shared `Arc`, so a hundred instantiations of
/// the same query text carry one compilation.
#[derive(Default)]
pub struct PrefilterCache {
    progs: Vec<Arc<BpfProgram>>,
}

impl PrefilterCache {
    /// Create an empty cache.
    pub fn new() -> PrefilterCache {
        PrefilterCache::default()
    }

    /// Return the canonical shared handle for `prog`.
    pub fn intern(&mut self, prog: Arc<BpfProgram>) -> Arc<BpfProgram> {
        if let Some(existing) = self.progs.iter().find(|e| ***e == *prog) {
            return existing.clone();
        }
        self.progs.push(prog.clone());
        prog
    }

    /// Number of distinct programs interned.
    pub fn len(&self) -> usize {
        self.progs.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.progs.is_empty()
    }
}

/// Host-side slot holding an LFTA. Each engine's per-LFTA bookkeeping
/// struct implements this so [`SharedPrefilter::dispatch`] can drive the
/// executors without owning them.
pub trait LftaSlot {
    /// The LFTA in this slot.
    fn lfta_mut(&mut self) -> &mut Lfta;
}

/// The threaded manager keeps `(lfta, interface id)` pairs.
impl LftaSlot for (Lfta, u16) {
    fn lfta_mut(&mut self) -> &mut Lfta {
        &mut self.0
    }
}

/// Aggregate counters of the shared pass, registered as `prefilter:shared`.
#[derive(Debug, Default)]
pub struct SharedCounters {
    /// Packets offered to the shared pass.
    pub packets: Counter,
    /// Shared `PacketView` parses performed.
    pub parses: Counter,
    /// Total atom evaluations across all atoms.
    pub atom_evals: Counter,
    /// LFTA tails dispatched (required mask satisfied).
    pub dispatch_hits: Counter,
    /// Packets an LFTA handled privately because the shared full-packet
    /// parse could not stand in for its snapped parse.
    pub snap_fallbacks: Counter,
    /// Distinct atoms in the table (gauge).
    pub atoms: Counter,
    /// Distinct BPF programs (gauge).
    pub progs: Counter,
    /// Registered LFTAs (gauge).
    pub lftas: Counter,
}

impl StatSource for SharedCounters {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("packets", self.packets.get()),
            ("parses", self.parses.get()),
            ("atom_evals", self.atom_evals.get()),
            ("dispatch_hits", self.dispatch_hits.get()),
            ("snap_fallbacks", self.snap_fallbacks.get()),
            ("atoms", self.atoms.get()),
            ("progs", self.progs.get()),
            ("lftas", self.lftas.get()),
        ]
    }
}

/// Per-atom counters, registered as `prefilter:atom:<i>`.
#[derive(Debug, Default)]
pub struct AtomCounters {
    /// Evaluations — at most once per packet, and only when some LFTA
    /// that survived its earlier stages actually required the atom.
    pub evals: Counter,
    /// True verdicts.
    pub hits: Counter,
}

impl StatSource for AtomCounters {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("evals", self.evals.get()), ("hits", self.hits.get())]
    }
}

/// Per-LFTA dispatch counters, registered as `prefilter:lfta:<stream>`.
#[derive(Debug, Default)]
pub struct DispatchCounters {
    /// Packets whose required-atom mask was satisfied (tail dispatched).
    pub hits: Counter,
}

impl StatSource for DispatchCounters {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![("hits", self.hits.get())]
    }
}

/// One deduplicated predicate atom in the shared table.
struct SharedAtom {
    /// Canonical cross-query identity (protocol-prefixed).
    key: String,
    /// The normalized expression (kept for explain output).
    expr: PExpr,
    /// Protocol whose schema the expression's columns index. Dispatch
    /// only consults an atom after its group's protocol check passed, so
    /// no per-atom protocol gate is needed.
    proto: &'static ProtocolDef,
    prog: Program,
    /// Constant-compare fast path (`col cmp uint-literal`): the field is
    /// read once per packet into a shared slot and each atom is one
    /// integer compare, instead of one interpreted program run each.
    fast: Option<FastCmp>,
    evals: u64,
    hits: u64,
    shared: Arc<AtomCounters>,
}

/// A `col cmp k` atom routed through the shared field-slot cache.
#[derive(Clone, Copy)]
struct FastCmp {
    /// Index into [`SharedPrefilter::field_slots`].
    slot: usize,
    op: BinOp,
    k: u64,
}

/// Per-packet memo of one atom's verdict: atoms evaluate lazily, on the
/// first group or entry that actually needs them (most packets fail the
/// BPF stage of most groups, so most atoms are never consulted).
#[derive(Clone, Copy, PartialEq)]
enum AtomState {
    Unset,
    True,
    False,
}

/// Per-packet memo of one field slot's value.
#[derive(Clone, Copy)]
enum SlotVal {
    /// Not read yet this packet.
    Unset,
    /// Accessor returned `None`: program evaluation would abort, so every
    /// comparison over the slot is false.
    Missing,
    UInt(u64),
    /// Non-UInt value (never produced by UInt-typed columns in practice);
    /// atoms over the slot fall back to exact program evaluation.
    Other,
}

/// Exactly `eval_bin`'s comparison on two `Value::UInt`s.
#[inline]
fn cmp_holds(op: BinOp, v: u64, k: u64) -> bool {
    match op {
        BinOp::Eq => v == k,
        BinOp::Ne => v != k,
        BinOp::Lt => v < k,
        BinOp::Le => v <= k,
        BinOp::Gt => v > k,
        BinOp::Ge => v >= k,
        _ => unreachable!("fast path admits comparisons only"),
    }
}

/// Recognize `Col(uint) cmp Lit(uint)` — the shape `extract_atoms`
/// produces for pushable conjuncts.
fn fast_cmp_shape(expr: &PExpr) -> Option<(usize, BinOp, u64)> {
    let PExpr::Binary { op, left, right, .. } = expr else { return None };
    if !matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
        return None;
    }
    let PExpr::Col { index, ty: DataType::UInt } = **left else { return None };
    let PExpr::Lit(Literal::UInt(k)) = **right else { return None };
    Some((index, *op, k))
}

/// Per-LFTA dispatch entry, parallel to the engine's LFTA vector.
struct Entry {
    /// LFTA stream name (stats registration and explain output).
    name: String,
    /// Interface the LFTA listens on.
    iface: u16,
    /// Index of its BPF program in the distinct-program table.
    prog: Option<usize>,
    /// Index of its protocol in the distinct-protocol table.
    proto: usize,
    snaplen: Option<usize>,
    /// Required-atom bitmask (`u64` words over the atom table).
    required: Vec<u64>,
    /// Atom indices (for explain output; `required` is derived from it).
    atom_ids: Vec<usize>,
    /// The LFTA runs fully privately after admission+prefilter (no usable
    /// predicate split) — always correct, never faster.
    private: bool,
    /// Analyst-requested sampling is on: admission must run the LFTA's
    /// own per-packet hash instead of the batched counter below.
    sampled: bool,
    // Pending per-LFTA counter deltas, accumulated contiguously here (one
    // cache-friendly row per entry instead of a scattered write into each
    // `Lfta` struct per packet) and folded into `Lfta::stats` by
    // `flush_stats` before any counter is read.
    packets_in: u64,
    prefiltered: u64,
    not_protocol: u64,
    filtered: u64,
    hits: u64,
    shared: Arc<DispatchCounters>,
}

/// Entries whose decision sequence is bitwise identical — same interface,
/// BPF program, snap length, protocol and required-atom mask — share one
/// group: the hot loop decides once per group and only walks the member
/// list on a hit (or snap fallback). With Q queries over D distinct
/// predicates the per-packet dispatch loop is O(D), not O(Q).
struct DispatchGroup {
    iface: u16,
    prog: Option<usize>,
    proto: usize,
    snaplen: Option<usize>,
    /// Required-atom mask, trailing zero words trimmed (entries
    /// registered at different times pad differently); the grouping key.
    required: Vec<u64>,
    /// The same requirement as sorted atom indices — what dispatch walks,
    /// so only the atoms a surviving group needs ever evaluate.
    required_ids: Vec<usize>,
    /// Entry indices sharing this signature.
    members: Vec<usize>,
}

/// The per-group decision row the hot loop reads — 12 packed bytes so
/// dozens of groups fit in a few cache lines (the full [`DispatchGroup`]
/// spans several lines and is only touched by surviving packets).
#[derive(Clone, Copy)]
struct GroupHot {
    /// Index into the registered-interface table.
    iface_idx: u16,
    /// Index into the distinct-protocol table.
    proto: u16,
    /// Index into the distinct-program table; `u32::MAX` = no program.
    prog: u32,
    /// Snap length; `u32::MAX` = none.
    snaplen: u32,
}

/// Batched counter deltas, parallel to the group table; each delta
/// applies to EVERY member on flush (identical signatures see identical
/// verdicts). A BPF-rejected packet writes nothing here: `packets_in`
/// is the per-interface packet count, and `prefiltered` is derived as
/// `iface packets - bpf_passed`, so the common all-reject packet costs
/// one read and one branch per group.
#[derive(Clone, Copy, Default)]
struct GroupDelta {
    /// Packets that passed the group's BPF stage (or had no program).
    bpf_passed: u64,
    not_protocol: u64,
    filtered: u64,
}

/// The shared cross-query prefilter pass. Build one per engine from the
/// registered LFTAs (in slot order), then call
/// [`dispatch`](SharedPrefilter::dispatch) once per packet.
pub struct SharedPrefilter {
    progs: Vec<Arc<BpfProgram>>,
    protos: Vec<&'static ProtocolDef>,
    atoms: Vec<SharedAtom>,
    entries: Vec<Entry>,
    /// Interfaces any entry listens on (skip everything else early).
    ifaces: Vec<u16>,
    /// Packets dispatched per interface since the last flush — the
    /// shared `packets_in` delta for every group on that interface.
    iface_packets: Vec<u64>,
    /// Same-shape distinct programs factored behind one probe each
    /// (member indices into `progs`); recomputed on registration.
    families: Vec<(JeqFamily, Vec<usize>)>,
    /// Distinct programs interpreted individually.
    loose_progs: Vec<usize>,
    /// Distinct `(proto_idx, column)` pairs read by fast-path atoms.
    field_slots: Vec<(usize, usize)>,
    /// Same-signature entries dispatched as one decision; recomputed on
    /// registration.
    groups: Vec<DispatchGroup>,
    /// Packed per-group decision rows (parallel to `groups`).
    group_hot: Vec<GroupHot>,
    /// Batched per-group counter deltas (parallel to `groups`).
    group_deltas: Vec<GroupDelta>,
    /// Entries dispatched individually (private, sampled — anything whose
    /// per-packet decision is not purely signature-determined).
    loose_entries: Vec<usize>,
    /// Registrations since the last family/group rebuild; the derived
    /// tables recompute lazily on the next dispatch (or describe), so a
    /// hundred `add_lfta` calls cost one rebuild, not a hundred.
    dirty: bool,
    // Per-packet scratch: distinct-program/protocol verdicts, memoized
    // field-slot values, and the matched-atom bitmask.
    prog_verdicts: Vec<bool>,
    proto_verdicts: Vec<bool>,
    field_vals: Vec<SlotVal>,
    atom_state: Vec<AtomState>,
    /// Slots whose tail ran this packet (so hosts visit only the
    /// handful of out-vectors that can be non-empty, not all N).
    hit_slots: Vec<usize>,
    scratch: EvalScratch,
    packets: u64,
    parses: u64,
    dispatch_hits: u64,
    snap_fallbacks: u64,
    shared: Arc<SharedCounters>,
}

impl Default for SharedPrefilter {
    fn default() -> SharedPrefilter {
        SharedPrefilter::new()
    }
}

impl SharedPrefilter {
    /// An empty pass; add LFTAs in slot order with [`add_lfta`].
    ///
    /// [`add_lfta`]: SharedPrefilter::add_lfta
    pub fn new() -> SharedPrefilter {
        SharedPrefilter {
            progs: Vec::new(),
            protos: Vec::new(),
            atoms: Vec::new(),
            entries: Vec::new(),
            ifaces: Vec::new(),
            iface_packets: Vec::new(),
            families: Vec::new(),
            loose_progs: Vec::new(),
            field_slots: Vec::new(),
            groups: Vec::new(),
            group_hot: Vec::new(),
            group_deltas: Vec::new(),
            loose_entries: Vec::new(),
            dirty: false,
            prog_verdicts: Vec::new(),
            proto_verdicts: Vec::new(),
            field_vals: Vec::new(),
            atom_state: Vec::new(),
            hit_slots: Vec::new(),
            scratch: EvalScratch::default(),
            packets: 0,
            parses: 0,
            dispatch_hits: 0,
            snap_fallbacks: 0,
            shared: Arc::new(SharedCounters::default()),
        }
    }

    /// Register one LFTA. Call in the exact order of the engine's LFTA
    /// vector — dispatch addresses slots by index.
    pub fn add_lfta(&mut self, lfta: &Lfta, iface: u16) {
        let prog = lfta.prefilter_program().map(|p| {
            match self.progs.iter().position(|e| Arc::ptr_eq(e, p) || **e == **p) {
                Some(i) => i,
                None => {
                    self.progs.push(p.clone());
                    self.progs.len() - 1
                }
            }
        });
        let proto_def = lfta.protocol_def();
        let proto = match self.protos.iter().position(|e| std::ptr::eq(*e, proto_def)) {
            Some(i) => i,
            None => {
                self.protos.push(proto_def);
                self.protos.len() - 1
            }
        };
        let mut atom_ids = Vec::new();
        let mut private = false;
        if let Some(split) = lfta.shared_split() {
            for atom in &split.atoms {
                let id = match self.atoms.iter().position(|a| a.key == atom.key) {
                    Some(i) => i,
                    None => {
                        // Atoms are UDF-free closed expressions; compile
                        // with empty bindings. A failure (should not
                        // happen) demotes the whole entry to private
                        // execution rather than dropping the conjunct.
                        let compiled = Program::compile(
                            &atom.expr,
                            &ParamBindings::new(),
                            &UdfRegistry::with_builtins(),
                            &FileStore::new(),
                        );
                        match compiled {
                            Ok(p) => {
                                let fast = fast_cmp_shape(&atom.expr).map(|(col, op, k)| {
                                    let pair = (proto, col);
                                    let slot = match self
                                        .field_slots
                                        .iter()
                                        .position(|&s| s == pair)
                                    {
                                        Some(i) => i,
                                        None => {
                                            self.field_slots.push(pair);
                                            self.field_slots.len() - 1
                                        }
                                    };
                                    FastCmp { slot, op, k }
                                });
                                self.atoms.push(SharedAtom {
                                    key: atom.key.clone(),
                                    expr: atom.expr.clone(),
                                    proto: proto_def,
                                    prog: p,
                                    fast,
                                    evals: 0,
                                    hits: 0,
                                    shared: Arc::new(AtomCounters::default()),
                                });
                                self.atoms.len() - 1
                            }
                            Err(_) => {
                                private = true;
                                break;
                            }
                        }
                    }
                };
                atom_ids.push(id);
            }
        }
        if private {
            atom_ids.clear();
        }
        let words = self.atoms.len().div_ceil(64).max(1);
        let mut required = vec![0u64; words];
        for &id in &atom_ids {
            required[id / 64] |= 1u64 << (id % 64);
        }
        if !self.ifaces.contains(&iface) {
            self.ifaces.push(iface);
            self.iface_packets.push(0);
        }
        self.entries.push(Entry {
            name: lfta.name.clone(),
            iface,
            prog,
            proto,
            snaplen: lfta.snaplen(),
            required,
            atom_ids,
            private,
            sampled: lfta.sampling_enabled(),
            packets_in: 0,
            prefiltered: 0,
            not_protocol: 0,
            filtered: 0,
            hits: 0,
            shared: Arc::new(DispatchCounters::default()),
        });
        self.dirty = true;
    }

    /// Recompute the derived dispatch tables — BPF probe families and
    /// signature groups — after registrations. Runs once per batch of
    /// `add_lfta` calls, on the next dispatch.
    fn finalize(&mut self) {
        let refs: Vec<&BpfProgram> = self.progs.iter().map(|p| p.as_ref()).collect();
        let (families, loose) = JeqFamily::factor_all(&refs);
        self.families = families;
        self.loose_progs = loose;
        self.rebuild_groups();
        self.dirty = false;
    }

    /// Recompute the signature groups over the current entry set.
    fn rebuild_groups(&mut self) {
        self.groups.clear();
        self.loose_entries.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if e.private || e.sampled {
                self.loose_entries.push(i);
                continue;
            }
            let mut required = e.required.clone();
            while required.last() == Some(&0) {
                required.pop();
            }
            match self.groups.iter_mut().find(|g| {
                g.iface == e.iface
                    && g.prog == e.prog
                    && g.proto == e.proto
                    && g.snaplen == e.snaplen
                    && g.required == required
            }) {
                Some(g) => g.members.push(i),
                None => {
                    let mut required_ids = e.atom_ids.clone();
                    required_ids.sort_unstable();
                    required_ids.dedup();
                    self.groups.push(DispatchGroup {
                        iface: e.iface,
                        prog: e.prog,
                        proto: e.proto,
                        snaplen: e.snaplen,
                        required,
                        required_ids,
                        members: vec![i],
                    })
                }
            }
        }
        self.group_hot = self
            .groups
            .iter()
            .map(|g| GroupHot {
                iface_idx: {
                    let k = self.ifaces.iter().position(|&f| f == g.iface);
                    u16::try_from(k.expect("group iface is registered")).unwrap()
                },
                proto: u16::try_from(g.proto).expect("distinct protocols fit u16"),
                prog: g.prog.map_or(u32::MAX, |p| p as u32),
                snaplen: g.snaplen.map_or(u32::MAX, |s| u32::try_from(s).unwrap_or(u32::MAX - 1)),
            })
            .collect();
        // Registration happens before any dispatch, so resetting the
        // delta rows here never discards pending counts.
        self.group_deltas = vec![GroupDelta::default(); self.groups.len()];
    }

    /// Number of registered LFTAs.
    pub fn n_lftas(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct BPF programs.
    pub fn n_progs(&self) -> usize {
        self.progs.len()
    }

    /// Number of distinct predicate atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Process one packet: run each distinct BPF program, protocol match
    /// and atom once, then dispatch every listening LFTA off the memoized
    /// verdicts. `slots` must be the LFTA vector this pass was built from
    /// (same order); `outs[i]` receives slot `i`'s output items.
    pub fn dispatch<S: LftaSlot>(
        &mut self,
        cap: &CapPacket,
        slots: &mut [S],
        outs: &mut [Vec<StreamItem>],
    ) {
        debug_assert_eq!(slots.len(), self.entries.len());
        debug_assert!(outs.len() >= self.entries.len());
        if self.dirty {
            self.finalize();
        }
        self.packets += 1;
        self.hit_slots.clear();
        let Some(iface_idx) = self.ifaces.iter().position(|&f| f == cap.iface) else {
            return;
        };
        self.iface_packets[iface_idx] += 1;
        self.parses += 1;
        let view = PacketView::parse(cap.clone());

        // Shared evaluation: every distinct program/protocol/atom once.
        // Same-shape programs (the pushdown-generated `field cmp const`
        // family) share one probe run of their common prefix; only the
        // final comparison is replayed per member, host-side.
        self.prog_verdicts.clear();
        self.prog_verdicts.resize(self.progs.len(), false);
        for (fam, members) in &self.families {
            if let Some(a) = fam.probe(&cap.data) {
                for (t, &pi) in fam.tests().iter().zip(members) {
                    self.prog_verdicts[pi] = t.verdict(a);
                }
            }
        }
        for &pi in &self.loose_progs {
            self.prog_verdicts[pi] = self.progs[pi].accepts(&cap.data);
        }
        self.proto_verdicts.clear();
        for p in &self.protos {
            self.proto_verdicts.push((p.matches)(&view));
        }
        self.field_vals.clear();
        self.field_vals.resize(self.field_slots.len(), SlotVal::Unset);
        self.atom_state.clear();
        self.atom_state.resize(self.atoms.len(), AtomState::Unset);

        // Dispatch: replay each LFTA's decision sequence off the verdicts.
        // Same-signature entries decide once per group; counter deltas
        // accumulate in the group (or loose entry) rows and are folded
        // back by `flush_stats`. Atoms evaluate lazily — only when a
        // group survives to its predicate stage.
        let SharedPrefilter {
            entries,
            atoms,
            protos,
            field_slots,
            groups,
            group_hot,
            group_deltas,
            loose_entries,
            prog_verdicts,
            proto_verdicts,
            field_vals,
            atom_state,
            hit_slots,
            scratch,
            dispatch_hits,
            snap_fallbacks,
            ..
        } = self;
        let mut atom_true = |j: usize| -> bool {
            match atom_state[j] {
                AtomState::True => true,
                AtomState::False => false,
                AtomState::Unset => {
                    let a = &mut atoms[j];
                    let v = match a.fast {
                        // Constant-compare fast path: read the field once
                        // per packet into its slot, then one integer
                        // compare per atom.
                        Some(fc) => {
                            if let SlotVal::Unset = field_vals[fc.slot] {
                                let (pi, col) = field_slots[fc.slot];
                                let fields = PacketFields::new(&view, protos[pi].fields);
                                field_vals[fc.slot] = match fields.field(col) {
                                    None => SlotVal::Missing,
                                    Some(Value::UInt(u)) => SlotVal::UInt(u),
                                    Some(_) => SlotVal::Other,
                                };
                            }
                            match field_vals[fc.slot] {
                                SlotVal::UInt(u) => cmp_holds(fc.op, u, fc.k),
                                // Program evaluation aborts (to false) on
                                // a missing field — identical verdict.
                                SlotVal::Missing => false,
                                _ => {
                                    let fields = PacketFields::new(&view, a.proto.fields);
                                    a.prog.eval_bool(&fields, scratch)
                                }
                            }
                        }
                        None => {
                            let fields = PacketFields::new(&view, a.proto.fields);
                            a.prog.eval_bool(&fields, scratch)
                        }
                    };
                    a.evals += 1;
                    if v {
                        a.hits += 1;
                    }
                    atom_state[j] = if v { AtomState::True } else { AtomState::False };
                    v
                }
            }
        };
        for (gi, h) in group_hot.iter().enumerate() {
            if usize::from(h.iface_idx) != iface_idx {
                continue;
            }
            // The common all-reject packet costs one verdict load and a
            // branch per group: admission and the prefiltered count are
            // reconstructed from `iface_packets` and `bpf_passed` at
            // flush time.
            if h.prog != u32::MAX && !prog_verdicts[h.prog as usize] {
                continue;
            }
            let d = &mut group_deltas[gi];
            d.bpf_passed += 1;
            if h.snaplen != u32::MAX {
                // The shared full-packet parse stands in for a snapped
                // parse only when every parsed header lies within the
                // snap length; otherwise each member replays its private
                // path exactly (snap, re-parse, full predicate).
                let s = h.snaplen as usize;
                if cap.data.len() > s && !headers_within(&view, s) {
                    let members = &groups[gi].members;
                    *snap_fallbacks += members.len() as u64;
                    for &i in members {
                        hit_slots.push(i);
                        slots[i].lfta_mut().push_accepted(cap, &mut outs[i]);
                    }
                    continue;
                }
            }
            if !proto_verdicts[usize::from(h.proto)] {
                d.not_protocol += 1;
                continue;
            }
            if !groups[gi].required_ids.iter().all(|&j| atom_true(j)) {
                d.filtered += 1;
                continue;
            }
            for &i in &groups[gi].members {
                entries[i].hits += 1;
                *dispatch_hits += 1;
                hit_slots.push(i);
                slots[i].lfta_mut().push_matched(&view, &mut outs[i]);
            }
        }
        // Private and sampled entries replay individually (their decision
        // depends on per-packet state the signature cannot capture).
        for &i in loose_entries.iter() {
            let e = &mut entries[i];
            if e.iface != cap.iface {
                continue;
            }
            let lfta = slots[i].lfta_mut();
            if e.sampled {
                if !lfta.admit(cap) {
                    continue;
                }
            } else {
                e.packets_in += 1;
            }
            if let Some(pj) = e.prog {
                if !prog_verdicts[pj] {
                    e.prefiltered += 1;
                    continue;
                }
            }
            if e.private {
                hit_slots.push(i);
                lfta.push_accepted(cap, &mut outs[i]);
                continue;
            }
            if let Some(s) = e.snaplen {
                if cap.data.len() > s && !headers_within(&view, s) {
                    *snap_fallbacks += 1;
                    hit_slots.push(i);
                    lfta.push_accepted(cap, &mut outs[i]);
                    continue;
                }
            }
            if !proto_verdicts[e.proto] {
                e.not_protocol += 1;
                continue;
            }
            if !e.atom_ids.iter().all(|&j| atom_true(j)) {
                e.filtered += 1;
                continue;
            }
            e.hits += 1;
            *dispatch_hits += 1;
            hit_slots.push(i);
            lfta.push_matched(&view, &mut outs[i]);
        }
    }

    /// Slot indices whose tail ran for the last dispatched packet — the
    /// only out-vectors that can hold output. Each index appears at most
    /// once.
    pub fn hit_slots(&self) -> &[usize] {
        &self.hit_slots
    }

    /// Fold the contiguously-accumulated per-entry counter deltas into
    /// each LFTA's `stats` block. Must run before those counters are
    /// observed (stats publication, heartbeats, the end-of-run gather);
    /// `slots` must be the LFTA vector dispatch runs over.
    pub fn flush_stats<S: LftaSlot>(&mut self, slots: &mut [S]) {
        for ((g, h), d) in
            self.groups.iter().zip(self.group_hot.iter()).zip(self.group_deltas.iter_mut())
        {
            let p = self.iface_packets[usize::from(h.iface_idx)];
            if p == 0 && d.not_protocol == 0 && d.filtered == 0 {
                continue;
            }
            // Identical signatures saw identical verdicts: the group
            // delta applies to every member. Admission and prefilter
            // counts are reconstructed from the interface packet count.
            let prefiltered = if g.prog.is_some() { p - d.bpf_passed } else { 0 };
            for &i in &g.members {
                let stats = &mut slots[i].lfta_mut().stats;
                stats.packets_in += p;
                stats.prefiltered += prefiltered;
                stats.not_protocol += d.not_protocol;
                stats.filtered += d.filtered;
            }
            *d = GroupDelta::default();
        }
        for v in self.iface_packets.iter_mut() {
            *v = 0;
        }
        for (e, slot) in self.entries.iter_mut().zip(slots.iter_mut()) {
            if e.packets_in == 0 && e.prefiltered == 0 && e.not_protocol == 0 && e.filtered == 0
            {
                continue;
            }
            let stats = &mut slot.lfta_mut().stats;
            stats.packets_in += e.packets_in;
            stats.prefiltered += e.prefiltered;
            stats.not_protocol += e.not_protocol;
            stats.filtered += e.filtered;
            e.packets_in = 0;
            e.prefiltered = 0;
            e.not_protocol = 0;
            e.filtered = 0;
        }
    }

    /// Register the pass's counter blocks: the `prefilter:shared`
    /// aggregate, one `prefilter:atom:<i>` node per distinct atom, and
    /// one `prefilter:lfta:<stream>` node per registered LFTA.
    pub fn register_stats(&self, registry: &StatsRegistry) {
        registry.register("prefilter:shared".to_string(), self.shared.clone());
        for (j, a) in self.atoms.iter().enumerate() {
            registry.register(format!("prefilter:atom:{j}"), a.shared.clone());
        }
        for e in &self.entries {
            registry.register(format!("prefilter:lfta:{}", e.name), e.shared.clone());
        }
    }

    /// Publish the plain hot-path counters into the shared blocks.
    pub fn publish_stats(&self) {
        self.shared.packets.set(self.packets);
        self.shared.parses.set(self.parses);
        self.shared.dispatch_hits.set(self.dispatch_hits);
        self.shared.snap_fallbacks.set(self.snap_fallbacks);
        self.shared.atoms.set(self.atoms.len() as u64);
        self.shared.progs.set(self.progs.len() as u64);
        self.shared.lftas.set(self.entries.len() as u64);
        let mut total_evals = 0;
        for a in &self.atoms {
            a.shared.evals.set(a.evals);
            a.shared.hits.set(a.hits);
            total_evals += a.evals;
        }
        self.shared.atom_evals.set(total_evals);
        for e in &self.entries {
            e.shared.hits.set(e.hits);
        }
    }

    /// Render the shared plan: the deduplicated atom table and each
    /// LFTA's bitmask assignment. `label` renders an atom expression
    /// (callers with catalog access pretty-print against the protocol
    /// schema; `|e, _| format!("{e:?}")` works without one).
    pub fn describe(&mut self, label: &dyn Fn(&PExpr, &'static ProtocolDef) -> String) -> String {
        use std::fmt::Write;
        if self.dirty {
            self.finalize();
        }
        let mut s = String::new();
        let _ = writeln!(
            s,
            "shared prefilter: {} LFTAs, {} distinct BPF programs, {} distinct atoms",
            self.entries.len(),
            self.progs.len(),
            self.atoms.len()
        );
        if !self.families.is_empty() {
            let covered: usize = self.families.iter().map(|(_, m)| m.len()).sum();
            let _ = writeln!(
                s,
                "  bpf probe families: {} probes cover {} programs ({} loose)",
                self.families.len(),
                covered,
                self.loose_progs.len()
            );
        }
        if !self.groups.is_empty() {
            let grouped: usize = self.groups.iter().map(|g| g.members.len()).sum();
            let _ = writeln!(
                s,
                "  dispatch groups: {} signatures over {} LFTAs ({} dispatched loose)",
                self.groups.len(),
                grouped,
                self.loose_entries.len()
            );
        }
        for (j, a) in self.atoms.iter().enumerate() {
            let _ = writeln!(s, "  atom[{j}] ({}): {}", a.proto.name, label(&a.expr, a.proto));
        }
        for e in &self.entries {
            let bits = if e.atom_ids.is_empty() {
                "-".to_string()
            } else {
                let mut ids: Vec<usize> = e.atom_ids.clone();
                ids.sort_unstable();
                let strs: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
                format!("{{{}}}", strs.join(","))
            };
            let mode = if e.private { " (private)" } else { "" };
            let bpf = match e.prog {
                Some(p) => format!("bpf#{p}"),
                None => "no-bpf".to_string(),
            };
            let _ = writeln!(
                s,
                "  lfta {} iface {} {} proto {} atoms {}{}",
                e.name, e.iface, bpf, self.protos[e.proto].name, bits, mode
            );
        }
        s
    }
}

/// Whether every parsed header of `view` lies within `snaplen` bytes, so
/// a parse of the snapped packet would decode identically (snapped
/// queries never read the payload — the splitter only assigns a snap
/// length to payload-free queries). Conservative `false` falls back to
/// the exact private path.
fn headers_within(view: &PacketView, snaplen: usize) -> bool {
    match &view.transport {
        Transport::Tcp(_, off) | Transport::Udp(_, off) => return *off <= snaplen,
        Transport::Icmp(_) | Transport::Other => {}
    }
    let l2 = match view.cap.link {
        LinkType::Ethernet => 14usize,
        LinkType::RawIp => 0,
        // Record links are never snapped; be conservative.
        _ => return false,
    };
    match &view.net {
        Network::V4(h) => {
            let l4 = l2 + usize::from(h.header_len);
            let end = match &view.transport {
                Transport::Icmp(_) => l4 + 8,
                _ => l4,
            };
            end <= snaplen
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::lfta::{LftaKind, SharedSplit};
    use gs_gsql::ast::BinOp;
    use gs_gsql::plan::Literal;
    use gs_gsql::pushdown::extract_atoms;
    use gs_gsql::types::DataType;
    use gs_nic::bpf::tcp_dst_port_filter;
    use gs_packet::builder::FrameBuilder;

    struct Slot(Lfta);
    impl LftaSlot for Slot {
        fn lfta_mut(&mut self) -> &mut Lfta {
            &mut self.0
        }
    }

    fn tcp() -> &'static ProtocolDef {
        gs_packet::interp::protocol("tcp").unwrap()
    }

    fn prog(pe: &PExpr) -> Program {
        Program::compile(pe, &ParamBindings::new(), &UdfRegistry::with_builtins(), &FileStore::new())
            .unwrap()
    }

    fn field(name: &str) -> PExpr {
        PExpr::Col { index: tcp().field_index(name).unwrap(), ty: DataType::UInt }
    }

    fn port_eq(port: u64) -> PExpr {
        PExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(field("destPort")),
            right: Box::new(PExpr::Lit(Literal::UInt(port))),
            ty: DataType::Bool,
        }
    }

    fn pkt(ts_sec: u64, dport: u16) -> CapPacket {
        let f = FrameBuilder::tcp(0x0a000001, 0x0a000002, 999, dport)
            .payload(b"x")
            .build_ethernet();
        CapPacket::full(ts_sec * 1_000_000_000, 0, LinkType::Ethernet, f)
    }

    /// Two port-80 LFTAs share one atom and one BPF program; a port-25
    /// LFTA gets its own bit.
    fn mk_lfta(name: &str, port: u64) -> Lfta {
        let pred = port_eq(port);
        let split = extract_atoms("tcp", std::slice::from_ref(&pred), &Default::default());
        let mut l = Lfta::new(
            name.into(),
            tcp(),
            Some(Arc::new(tcp_dst_port_filter(port as u16))),
            None,
            Some(prog(&pred)),
            LftaKind::Project(vec![prog(&field("destPort"))]),
            None,
        );
        l.set_shared_split(SharedSplit { atoms: split.atoms, residual: None });
        l
    }

    #[test]
    fn atoms_and_programs_dedupe_across_lftas() {
        let mut sp = SharedPrefilter::new();
        let slots = vec![
            Slot(mk_lfta("a", 80)),
            Slot(mk_lfta("b", 80)),
            Slot(mk_lfta("c", 25)),
        ];
        for s in &slots {
            sp.add_lfta(&s.0, 0);
        }
        assert_eq!(sp.n_lftas(), 3);
        assert_eq!(sp.n_atoms(), 2, "the two port-80 atoms collapse");
        assert_eq!(sp.n_progs(), 2, "the two port-80 BPF programs collapse");
    }

    #[test]
    fn dispatch_matches_private_push_packet() {
        let mut sp = SharedPrefilter::new();
        let mut shared_slots =
            vec![Slot(mk_lfta("a", 80)), Slot(mk_lfta("b", 80)), Slot(mk_lfta("c", 25))];
        for s in &shared_slots {
            sp.add_lfta(&s.0, 0);
        }
        let mut private = vec![mk_lfta("a", 80), mk_lfta("b", 80), mk_lfta("c", 25)];
        let pkts: Vec<CapPacket> =
            (0..30).map(|i| pkt(i, if i % 3 == 0 { 80 } else { 25 + (i % 2) as u16 * 55 })).collect();
        let mut shared_out = vec![Vec::new(); 3];
        let mut private_out: Vec<Vec<StreamItem>> = vec![Vec::new(); 3];
        for p in &pkts {
            sp.dispatch(p, &mut shared_slots, &mut shared_out);
            for (l, o) in private.iter_mut().zip(private_out.iter_mut()) {
                l.push_packet(p, o);
            }
        }
        sp.flush_stats(&mut shared_slots);
        for i in 0..3 {
            assert_eq!(shared_out[i].len(), private_out[i].len(), "lfta {i} outputs");
            assert_eq!(shared_slots[i].0.stats, private[i].stats, "lfta {i} counters");
        }
        assert!(sp.dispatch_hits > 0);
    }

    fn port_cmp(op: BinOp, port: u64) -> PExpr {
        PExpr::Binary {
            op,
            left: Box::new(field("destPort")),
            right: Box::new(PExpr::Lit(Literal::UInt(port))),
            ty: DataType::Bool,
        }
    }

    fn mk_lfta_pred(name: &str, pred: PExpr) -> Lfta {
        let split = extract_atoms("tcp", std::slice::from_ref(&pred), &Default::default());
        let mut l = Lfta::new(
            name.into(),
            tcp(),
            None,
            None,
            Some(prog(&pred)),
            LftaKind::Project(vec![prog(&field("destPort"))]),
            None,
        );
        l.set_shared_split(SharedSplit { atoms: split.atoms, residual: None });
        l
    }

    /// Every comparison operator routes through the constant-compare fast
    /// path and stays output- and counter-identical to private execution.
    #[test]
    fn fast_path_matches_program_eval_for_all_comparisons() {
        let ops = [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge];
        let mut sp = SharedPrefilter::new();
        let mut slots: Vec<Slot> = ops
            .iter()
            .enumerate()
            .map(|(i, &op)| Slot(mk_lfta_pred(&format!("q{i}"), port_cmp(op, 80))))
            .collect();
        for s in &slots {
            sp.add_lfta(&s.0, 0);
        }
        assert_eq!(sp.n_atoms(), ops.len());
        assert!(sp.atoms.iter().all(|a| a.fast.is_some()), "all atoms take the fast path");
        assert_eq!(sp.field_slots.len(), 1, "six atoms share one destPort read");
        let mut private: Vec<Lfta> = ops
            .iter()
            .enumerate()
            .map(|(i, &op)| mk_lfta_pred(&format!("q{i}"), port_cmp(op, 80)))
            .collect();
        let mut shared_out = vec![Vec::new(); ops.len()];
        let mut private_out: Vec<Vec<StreamItem>> = vec![Vec::new(); ops.len()];
        for i in 0..40u64 {
            let p = pkt(i, [25u16, 79, 80, 81, 443][i as usize % 5]);
            sp.dispatch(&p, &mut slots, &mut shared_out);
            for (l, o) in private.iter_mut().zip(private_out.iter_mut()) {
                l.push_packet(&p, o);
            }
        }
        sp.flush_stats(&mut slots);
        for i in 0..ops.len() {
            assert_eq!(shared_out[i].len(), private_out[i].len(), "op {i} outputs");
            assert_eq!(slots[i].0.stats, private[i].stats, "op {i} counters");
        }
    }

    #[test]
    fn snap_fallback_preserves_exactness() {
        // An LFTA with a tiny snaplen: headers do not fit, so the shared
        // pass must replay the private snapped parse.
        let mut l = mk_lfta("s", 80);
        let mut l2 = Lfta::new(
            "s".into(),
            tcp(),
            None,
            Some(20), // cuts into the IP header
            None,
            LftaKind::Project(vec![prog(&field("time"))]),
            None,
        );
        l2.set_shared_split(SharedSplit { atoms: Vec::new(), residual: None });
        let _ = &mut l;
        let mut sp = SharedPrefilter::new();
        sp.add_lfta(&l2, 0);
        let mut slots = vec![Slot(l2)];
        let mut priv_l = Lfta::new(
            "s".into(),
            tcp(),
            None,
            Some(20),
            None,
            LftaKind::Project(vec![prog(&field("time"))]),
            None,
        );
        let mut shared_out = vec![Vec::new()];
        let mut priv_out = Vec::new();
        for i in 0..5 {
            let p = pkt(i, 80);
            sp.dispatch(&p, &mut slots, &mut shared_out);
            priv_l.push_packet(&p, &mut priv_out);
        }
        sp.flush_stats(&mut slots);
        assert_eq!(shared_out[0].len(), priv_out.len());
        assert_eq!(slots[0].0.stats, priv_l.stats);
        assert!(sp.snap_fallbacks > 0, "tiny snaplen must take the fallback");
    }

    #[test]
    fn describe_lists_atoms_and_masks() {
        let mut sp = SharedPrefilter::new();
        let slots = vec![Slot(mk_lfta("a", 80)), Slot(mk_lfta("c", 25))];
        for s in &slots {
            sp.add_lfta(&s.0, 0);
        }
        let d = sp.describe(&|e, _| format!("{e:?}"));
        assert!(d.contains("2 LFTAs"), "{d}");
        assert!(d.contains("atom[0]"), "{d}");
        assert!(d.contains("lfta a"), "{d}");
        assert!(d.contains("{0}"), "{d}");
        assert!(d.contains("{1}"), "{d}");
    }

    #[test]
    fn cache_interns_equal_programs() {
        let mut c = PrefilterCache::new();
        let a = c.intern(Arc::new(tcp_dst_port_filter(80)));
        let b = c.intern(Arc::new(tcp_dst_port_filter(80)));
        let d = c.intern(Arc::new(tcp_dst_port_filter(25)));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(c.len(), 2);
    }
}
