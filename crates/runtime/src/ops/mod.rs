//! Stream operators.
//!
//! Operators are push-based state machines: tuples (and punctuation) go
//! in, zero or more items come out. They are synchronous and scheduler
//! agnostic — the engine can run them inline in a capture loop (LFTAs),
//! single-threaded for deterministic tests, or one-per-thread connected
//! by channels (the deployment configuration).

pub mod agg;
pub mod build;
pub mod defrag;
pub mod join;
pub mod lfta;
pub mod merge;
pub mod prefilter;
pub mod router;
pub mod select;

use crate::batch::{ColStep, ColumnBatch};
use crate::punct::Punct;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};
use crate::stats::OpCounters;
use crate::tuple::{StreamItem, Tuple};
use std::sync::Arc;

/// Heap entry ordering tuples by an ordered-attribute value with an
/// insertion sequence as tiebreak; shared by the merge operator's input
/// buffers and the join's sorted-release queue.
pub(crate) struct OrderedTupleEntry {
    pub(crate) v: u64,
    pub(crate) seq: u64,
    pub(crate) tuple: Tuple,
}

impl PartialEq for OrderedTupleEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.v, self.seq) == (other.v, other.seq)
    }
}
impl Eq for OrderedTupleEntry {}
impl PartialOrd for OrderedTupleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedTupleEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.v, self.seq).cmp(&(other.v, other.seq))
    }
}

/// A push-based stream operator.
pub trait Operator: Send {
    /// Number of input ports (1 except for join/merge).
    fn n_inputs(&self) -> usize {
        1
    }

    /// Feed one item into `port`; outputs are appended to `out`.
    fn push(&mut self, port: usize, item: StreamItem, out: &mut Vec<StreamItem>);

    /// Feed a whole batch into `port`; outputs are appended to `out`.
    ///
    /// Semantically identical to pushing each item in order — a batch of
    /// one IS a plain push — but hot operators override it to hoist
    /// per-call setup (group-table lookups for runs of equal keys, merge
    /// heap drains, join GC) out of the inner loop. Overrides may emit
    /// fewer intermediate punctuation tokens than the item-at-a-time
    /// path (punctuation is an optimization, never required for
    /// correctness) but must produce the same data tuples.
    fn push_batch(&mut self, port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        for item in items {
            self.push(port, item, out);
        }
    }

    /// Whether the operator has a native columnar path — i.e. its
    /// [`push_cols`](Operator::push_cols) does better than the row
    /// fallback. Only meaningful for single-input operators.
    fn col_capable(&self) -> bool {
        false
    }

    /// Feed a columnar batch (always port 0 — multi-input operators are
    /// row boundaries) with its at-most-one trailing punctuation rider.
    ///
    /// Semantically identical to materializing the rows and calling
    /// [`push_batch`](Operator::push_batch) — which is exactly what the
    /// default does. Columnar overrides return [`ColStep::Cols`] when
    /// their output can stay columnar, [`ColStep::Rows`] when it is
    /// row-shaped (aggregation emissions).
    fn push_cols(&mut self, cols: ColumnBatch, punct: Option<Punct>) -> ColStep {
        let mut out = Vec::new();
        self.push_batch(0, cols.into_items(punct), &mut out);
        ColStep::Rows(out)
    }

    /// All inputs are exhausted: flush any remaining state.
    fn finish(&mut self, out: &mut Vec<StreamItem>);

    /// Short tag naming the operator kind in stats registrations
    /// (`hfta:<query>/<i>:<kind>`).
    fn kind(&self) -> &'static str {
        "op"
    }

    /// The operator's shared counter block, when it keeps one. The
    /// engine registers it in the [`StatsRegistry`](crate::stats::StatsRegistry)
    /// at build time.
    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        None
    }

    /// Publish internal plain counters into the shared block (plain
    /// stores — operators are single-writer). Called by the scheduler at
    /// batch granularity; until the first call the shared block reads
    /// zero.
    fn publish_stats(&self) {}

    /// Serialize the operator's mutable state into `w` so an identically
    /// built operator can [`restore`](Operator::restore) it and continue
    /// as if the stream had never stopped. Called only at a quiescent
    /// point (between batches, all inputs drained up to a consistent
    /// cut), so per-call transients (the hash-agg hot entry, scratch
    /// buffers) never need encoding. Stateless operators keep the no-op
    /// default.
    fn snapshot(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restore state previously written by [`snapshot`](Operator::snapshot)
    /// into a freshly built operator of the same shape. On error the
    /// operator may be partially modified and must be discarded (the
    /// engine falls back to a fresh build + empty-window replay).
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Run a chain of single-input operators over one item: the output of each
/// stage feeds the next. `scratch` vectors are caller-provided to avoid
/// per-item allocation.
pub fn cascade(
    ops: &mut [Box<dyn Operator>],
    item: StreamItem,
    out: &mut Vec<StreamItem>,
) {
    debug_assert!(ops.iter().all(|o| o.n_inputs() == 1));
    let mut cur = vec![item];
    let mut next = Vec::new();
    for op in ops.iter_mut() {
        for it in cur.drain(..) {
            op.push(0, it, &mut next);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    out.extend(cur);
}

/// Run a chain of single-input operators over a whole batch: each stage
/// consumes the previous stage's output vector via [`Operator::push_batch`],
/// so per-stage setup amortizes over the batch instead of repeating per
/// item.
pub fn cascade_batch(
    ops: &mut [Box<dyn Operator>],
    items: Vec<StreamItem>,
    out: &mut Vec<StreamItem>,
) {
    debug_assert!(ops.iter().all(|o| o.n_inputs() == 1));
    let mut cur = items;
    let mut next = Vec::new();
    for op in ops.iter_mut() {
        op.push_batch(0, std::mem::take(&mut cur), &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    out.extend(cur);
}

/// Finish a chain: flush each stage, feeding its tail output onward.
pub fn cascade_finish(ops: &mut [Box<dyn Operator>], out: &mut Vec<StreamItem>) {
    let mut pending: Vec<StreamItem> = Vec::new();
    for i in 0..ops.len() {
        let mut flushed = Vec::new();
        ops[i].finish(&mut flushed);
        pending.extend(flushed);
        // Feed everything pending through the REMAINING stages.
        let mut cur = std::mem::take(&mut pending);
        let mut next = Vec::new();
        for op in ops[i + 1..].iter_mut() {
            for it in cur.drain(..) {
                op.push(0, it, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        if i + 1 < ops.len() {
            // `cur` now holds items that already passed through all later
            // stages; hold them until those stages have also finished.
            out.extend(cur);
        } else {
            out.extend(cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;

    /// Doubles every uint in a 1-field tuple; flushes a sentinel.
    struct Doubler;
    impl Operator for Doubler {
        fn push(&mut self, _p: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
            if let StreamItem::Tuple(t) = item {
                let v = t.get(0).as_uint().unwrap();
                out.push(StreamItem::Tuple(Tuple::new(vec![Value::UInt(v * 2)])));
            }
        }
        fn finish(&mut self, out: &mut Vec<StreamItem>) {
            out.push(StreamItem::Tuple(Tuple::new(vec![Value::UInt(999)])));
        }
    }

    #[test]
    fn cascade_applies_in_order() {
        let mut ops: Vec<Box<dyn Operator>> = vec![Box::new(Doubler), Box::new(Doubler)];
        let mut out = Vec::new();
        cascade(&mut ops, StreamItem::Tuple(Tuple::new(vec![Value::UInt(3)])), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_tuple().unwrap().get(0), &Value::UInt(12));
    }

    #[test]
    fn cascade_batch_matches_item_cascade() {
        let items: Vec<StreamItem> =
            (0..5u64).map(|v| StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)]))).collect();
        let mut item_ops: Vec<Box<dyn Operator>> = vec![Box::new(Doubler), Box::new(Doubler)];
        let mut item_out = Vec::new();
        for it in items.clone() {
            cascade(&mut item_ops, it, &mut item_out);
        }
        let mut batch_ops: Vec<Box<dyn Operator>> = vec![Box::new(Doubler), Box::new(Doubler)];
        let mut batch_out = Vec::new();
        cascade_batch(&mut batch_ops, items, &mut batch_out);
        assert_eq!(item_out, batch_out);
    }

    #[test]
    fn default_push_batch_is_push_per_item() {
        let mut op = Doubler;
        let mut out = Vec::new();
        op.push_batch(
            0,
            vec![
                StreamItem::Tuple(Tuple::new(vec![Value::UInt(1)])),
                StreamItem::Tuple(Tuple::new(vec![Value::UInt(2)])),
            ],
            &mut out,
        );
        let vals: Vec<u64> =
            out.iter().filter_map(|i| i.as_tuple().map(|t| t.get(0).as_uint().unwrap())).collect();
        assert_eq!(vals, vec![2, 4]);
    }

    #[test]
    fn cascade_finish_propagates_flushes() {
        let mut ops: Vec<Box<dyn Operator>> = vec![Box::new(Doubler), Box::new(Doubler)];
        let mut out = Vec::new();
        cascade_finish(&mut ops, &mut out);
        // First stage's sentinel passes through the second (999*2), then
        // the second stage's own sentinel.
        let vals: Vec<u64> =
            out.iter().filter_map(|i| i.as_tuple().map(|t| t.get(0).as_uint().unwrap())).collect();
        assert_eq!(vals, vec![1998, 999]);
    }
}
