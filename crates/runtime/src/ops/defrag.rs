//! IP defragmentation: the paper's example of a user-written query node.
//!
//! "Users can write their own query nodes to implement special operators
//! by following this API. For example, we have implemented a special IP
//! defragmentation operator in this manner and have built a query tree
//! using it." (paper §3)
//!
//! The operator consumes captured IPv4 packets and emits whole datagrams:
//! non-fragments pass through untouched; fragments are reassembled keyed
//! by (src, dst, protocol, id) and emitted once complete. Incomplete
//! reassemblies are garbage-collected after a timeout, like a real IP
//! stack.

use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::ip::Ipv4Header;
use gs_packet::PacketView;
use std::collections::HashMap;

/// Reassembly timeout (seconds of capture time), mirroring the classic
/// IP reassembly timer.
pub const REASSEMBLY_TIMEOUT_SEC: u64 = 30;

/// Largest reassembled payload: the output datagram's `total_len` field
/// is 16 bits and the rebuilt header is a fixed 20 bytes, so any
/// fragment reaching past `65_535 - 20` bytes describes a datagram that
/// cannot be encoded — it is rejected, never silently wrapped.
pub const MAX_PAYLOAD_LEN: u32 = u16::MAX as u32 - 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: u32,
    dst: u32,
    protocol: u8,
    id: u16,
}

struct Reassembly {
    /// (offset, payload bytes) pieces seen so far, kept offset-sorted
    /// and disjoint: arriving fragments are trimmed against existing
    /// coverage before insertion (see [`Reassembly::insert`]).
    pieces: Vec<(u32, Vec<u8>)>,
    /// Total datagram payload length, known once the last fragment is seen.
    total_len: Option<u32>,
    /// First-fragment header (offset 0), template for the output packet.
    first_header: Option<Ipv4Header>,
    /// Capture metadata from the first-arriving fragment.
    ts_ns: u64,
    iface: u16,
    started_sec: u64,
}

impl Reassembly {
    /// Add `data` at byte offset `off`, keeping `pieces` sorted and
    /// disjoint. Ranges already covered are trimmed off the arriving
    /// fragment — the *first* arrival of any byte wins, so a duplicated
    /// or overlapping fragment (retransmission, or a deliberate
    /// overlap-evasion train) can never rewrite bytes that an earlier
    /// fragment already contributed.
    fn insert(&mut self, off: u32, data: &[u8]) {
        let end = off + data.len() as u32;
        if off == end {
            return;
        }
        let mut cur = off;
        let mut add: Vec<(u32, Vec<u8>)> = Vec::new();
        for (s, d) in &self.pieces {
            let pe = *s + d.len() as u32;
            if pe <= cur {
                continue;
            }
            if *s >= end {
                break;
            }
            if *s > cur {
                // The gap before this piece is genuinely new coverage.
                add.push((cur, data[(cur - off) as usize..(*s - off) as usize].to_vec()));
            }
            cur = cur.max(pe);
            if cur >= end {
                break;
            }
        }
        if cur < end {
            add.push((cur, data[(cur - off) as usize..(end - off) as usize].to_vec()));
        }
        if !add.is_empty() {
            self.pieces.extend(add);
            self.pieces.sort_unstable_by_key(|p| p.0);
        }
    }

    fn covered(&self) -> Option<u32> {
        let total = self.total_len?;
        self.first_header.as_ref()?;
        // Pieces are sorted and disjoint: a hole is the only way a
        // piece can start past the running end.
        let mut end = 0u32;
        for (s, d) in &self.pieces {
            if *s > end {
                return None; // hole
            }
            end = *s + d.len() as u32;
        }
        (end >= total).then_some(total)
    }
}

/// Counters for the defragmenter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Packets consumed.
    pub packets_in: u64,
    /// Non-fragment packets passed through.
    pub passthrough: u64,
    /// Datagrams reassembled.
    pub reassembled: u64,
    /// Reassemblies abandoned on timeout.
    pub timed_out: u64,
    /// Fragments describing a datagram too large for a 16-bit
    /// `total_len` (payload past [`MAX_PAYLOAD_LEN`]); the whole
    /// reassembly is dropped rather than emitted with a wrapped length.
    pub oversized: u64,
}

/// The defragmentation node.
///
/// ```
/// use gs_runtime::ops::defrag::Defragmenter;
/// use gs_packet::builder::FrameBuilder;
/// use gs_packet::capture::{CapPacket, LinkType};
///
/// let mut d = Defragmenter::new();
/// let whole = CapPacket::full(
///     0, 0, LinkType::RawIp,
///     FrameBuilder::tcp(1, 2, 9, 80).payload(b"unfragmented").build_raw_ip(),
/// );
/// let mut out = Vec::new();
/// d.push(whole, &mut out);
/// assert_eq!(out.len(), 1, "whole datagrams pass straight through");
/// ```
pub struct Defragmenter {
    table: HashMap<FragKey, Reassembly>,
    /// Counters.
    pub stats: DefragStats,
}

impl Default for Defragmenter {
    fn default() -> Self {
        Defragmenter::new()
    }
}

impl Defragmenter {
    /// New, empty defragmenter.
    pub fn new() -> Defragmenter {
        Defragmenter { table: HashMap::new(), stats: DefragStats::default() }
    }

    /// Reassemblies currently in progress.
    pub fn pending(&self) -> usize {
        self.table.len()
    }

    /// Consume one captured packet; emits completed datagrams into `out`.
    pub fn push(&mut self, cap: CapPacket, out: &mut Vec<CapPacket>) {
        self.stats.packets_in += 1;
        self.gc(cap.time_sec().into());
        let view = PacketView::parse(cap.clone());
        let Some(ih) = view.ipv4().copied() else {
            // Not IPv4 (or malformed): pass through untouched.
            self.stats.passthrough += 1;
            out.push(cap);
            return;
        };
        if !ih.is_fragment() {
            self.stats.passthrough += 1;
            out.push(cap);
            return;
        }

        let l3 = match cap.link {
            LinkType::Ethernet => gs_packet::ether::HEADER_LEN,
            _ => 0,
        };
        let hdr_end = l3 + usize::from(ih.header_len);
        let Some(payload) = cap.data.get(hdr_end..) else { return };
        let key = FragKey { src: ih.src, dst: ih.dst, protocol: ih.protocol, id: ih.id };
        if ih.frag_offset() + payload.len() as u32 > MAX_PAYLOAD_LEN {
            // This fragment reaches past what the rebuilt header's
            // 16-bit total_len can describe (a "ping of death" train):
            // the datagram is invalid as a whole, so poison it — drop
            // any partial state and count the rejection.
            self.stats.oversized += 1;
            self.table.remove(&key);
            return;
        }
        let entry = self.table.entry(key).or_insert_with(|| Reassembly {
            pieces: Vec::new(),
            total_len: None,
            first_header: None,
            ts_ns: cap.ts_ns,
            iface: cap.iface,
            started_sec: cap.time_sec().into(),
        });
        entry.insert(ih.frag_offset(), payload);
        if ih.frag_offset() == 0 && entry.first_header.is_none() {
            entry.first_header = Some(ih);
        }
        if !ih.more_fragments() && entry.total_len.is_none() {
            entry.total_len = Some(ih.frag_offset() + payload.len() as u32);
        }

        if let Some(total) = entry.covered() {
            let entry = self.table.remove(&key).expect("entry just updated");
            let header = entry.first_header.expect("covered() checked it");
            // Rebuild the datagram: fresh IPv4 header (no frag bits) plus
            // the reassembled payload. Pieces are disjoint, so no copy
            // can rewrite another's bytes.
            let mut payload = vec![0u8; total as usize];
            for (off, d) in &entry.pieces {
                let s = *off as usize;
                let e = (s + d.len()).min(payload.len());
                payload[s..e].copy_from_slice(&d[..e - s]);
            }
            let mut ip_bytes = Vec::with_capacity(20 + payload.len());
            let out_header = Ipv4Header {
                header_len: 20,
                flags_frag: 0,
                total_len: (20 + payload.len()) as u16,
                checksum: 0,
                ..header
            };
            out_header.encode(&mut ip_bytes).expect("fixed 20-byte header");
            ip_bytes.extend_from_slice(&payload);
            self.stats.reassembled += 1;
            out.push(CapPacket::full(entry.ts_ns, entry.iface, LinkType::RawIp, ip_bytes.into()));
        }
    }

    /// Drop reassemblies older than the timeout relative to `now_sec`.
    pub fn gc(&mut self, now_sec: u64) {
        let before = self.table.len();
        self.table.retain(|_, r| now_sec.saturating_sub(r.started_sec) < REASSEMBLY_TIMEOUT_SEC);
        self.stats.timed_out += (before - self.table.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_packet::builder::FrameBuilder;

    /// Split a TCP datagram into `n`-byte fragments.
    fn fragments(payload: &[u8], chunk: usize, id: u16, ts: u64) -> Vec<CapPacket> {
        // Build the full transport section first (TCP header + payload).
        let whole = FrameBuilder::tcp(0x0a000001, 0x0a000002, 1000, 80)
            .payload(payload)
            .ip_id(id)
            .build_raw_ip();
        let transport = &whole[20..];
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < transport.len() {
            let end = (off + chunk).min(transport.len());
            let more = end < transport.len();
            let frag = FrameBuilder::tcp(0x0a000001, 0x0a000002, 1000, 80)
                .ip_id(id)
                .payload(&transport[off..end])
                .fragment((off / 8) as u16, more)
                .build_raw_ip();
            // Note: fragment() with offset 0 still emits the TCP header via
            // the builder only when offset==0; we bypass by reusing raw
            // transport bytes, so rebuild the first fragment by hand.
            let frag = if off == 0 {
                let mut b = Vec::new();
                Ipv4Header {
                    header_len: 20,
                    tos: 0,
                    total_len: (20 + end - off) as u16,
                    id,
                    flags_frag: if more { gs_packet::ip::FLAG_MF } else { 0 },
                    ttl: 64,
                    protocol: gs_packet::ip::PROTO_TCP,
                    checksum: 0,
                    src: 0x0a000001,
                    dst: 0x0a000002,
                }
                .encode(&mut b)
                .unwrap();
                b.extend_from_slice(&transport[off..end]);
                bytes::Bytes::from(b)
            } else {
                frag
            };
            out.push(CapPacket::full(ts + off as u64, 0, LinkType::RawIp, frag));
            off = end;
        }
        out
    }

    #[test]
    fn passthrough_for_whole_packets() {
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        let p = CapPacket::full(
            0,
            0,
            LinkType::RawIp,
            FrameBuilder::tcp(1, 2, 3, 4).payload(b"whole").build_raw_ip(),
        );
        d.push(p.clone(), &mut out);
        assert_eq!(out, vec![p]);
        assert_eq!(d.stats.passthrough, 1);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn reassembles_in_order_fragments() {
        let payload: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        for f in fragments(&payload, 64, 42, 1_000_000_000) {
            d.push(f, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(d.stats.reassembled, 1);
        let v = PacketView::parse(out.pop().unwrap());
        let th = v.tcp().expect("transport visible after reassembly");
        assert_eq!(th.dst_port, 80);
        assert_eq!(v.payload().unwrap().as_ref(), &payload[..]);
        assert!(!v.ipv4().unwrap().is_fragment());
    }

    #[test]
    fn reassembles_out_of_order_and_duplicates() {
        let payload: Vec<u8> = (0..160u32).map(|i| (i * 7) as u8).collect();
        let mut frags = fragments(&payload, 48, 7, 0);
        frags.reverse();
        frags.push(frags[0].clone()); // duplicate last-arriving fragment
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        for f in frags {
            d.push(f, &mut out);
        }
        assert_eq!(d.stats.reassembled, 1);
        let v = PacketView::parse(out.remove(0));
        assert_eq!(v.payload().unwrap().as_ref(), &payload[..]);
    }

    #[test]
    fn interleaved_flows_do_not_mix() {
        let pa: Vec<u8> = vec![0xAA; 100];
        let pb: Vec<u8> = vec![0xBB; 100];
        let fa = fragments(&pa, 40, 1, 0);
        let fb = fragments(&pb, 40, 2, 0);
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        for (a, b) in fa.into_iter().zip(fb) {
            d.push(a, &mut out);
            d.push(b, &mut out);
        }
        assert_eq!(d.stats.reassembled, 2);
        for pkt in out {
            let v = PacketView::parse(pkt);
            let pay = v.payload().unwrap();
            assert!(pay.iter().all(|&b| b == pay[0]), "flows must not interleave bytes");
        }
    }

    #[test]
    fn hole_never_emits_and_times_out() {
        let payload = vec![1u8; 200];
        let frags = fragments(&payload, 64, 9, 0);
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        // Drop the middle fragment.
        for (i, f) in frags.into_iter().enumerate() {
            if i != 1 {
                d.push(f, &mut out);
            }
        }
        assert!(out.is_empty());
        assert_eq!(d.pending(), 1);
        d.gc(REASSEMBLY_TIMEOUT_SEC + 1);
        assert_eq!(d.pending(), 0);
        assert_eq!(d.stats.timed_out, 1);
    }

    /// Hand-built raw-IP fragment: `off` is the byte offset (multiple
    /// of 8 unless it is the last fragment), `more` the MF flag.
    fn raw_frag(id: u16, off: u32, data: &[u8], more: bool) -> CapPacket {
        let mut b = Vec::new();
        Ipv4Header {
            header_len: 20,
            tos: 0,
            total_len: (20 + data.len()) as u16,
            id,
            flags_frag: ((off / 8) as u16) | if more { gs_packet::ip::FLAG_MF } else { 0 },
            ttl: 64,
            protocol: gs_packet::ip::PROTO_TCP,
            checksum: 0,
            src: 0x0a000001,
            dst: 0x0a000002,
        }
        .encode(&mut b)
        .unwrap();
        b.extend_from_slice(data);
        CapPacket::full(0, 0, LinkType::RawIp, bytes::Bytes::from(b))
    }

    #[test]
    fn overlapping_fragments_first_arrival_wins() {
        // A covers [0, 16) with 0xAA; B covers [8, 24) with 0xBB and is
        // the last fragment. The overlap [8, 16) must keep A's bytes —
        // a later fragment may never rewrite accepted coverage.
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        d.push(raw_frag(11, 0, &[0xAA; 16], true), &mut out);
        d.push(raw_frag(11, 8, &[0xBB; 16], false), &mut out);
        assert_eq!(d.stats.reassembled, 1);
        let pkt = out.pop().expect("complete datagram");
        let mut want = vec![0xAA; 16];
        want.extend_from_slice(&[0xBB; 8]);
        assert_eq!(&pkt.data[20..], &want[..], "overlap region keeps first-arrival bytes");
    }

    #[test]
    fn duplicated_and_overlapping_train_reassembles_once() {
        // A train with mid-stream duplicates and an overlapping filler:
        // [0,48) dup, [40,88) overlapping the first, [48,96) dup, then
        // the last piece [96,120). Every byte must come from its first
        // arrival and exactly one datagram must emerge.
        let payload: Vec<u8> = (0..120u32).map(|i| (i * 3) as u8).collect();
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        let train: Vec<(u32, &[u8], bool)> = vec![
            (0, &payload[0..48], true),
            (0, &payload[0..48], true),        // exact duplicate
            (40, &payload[40..88], true),      // overlaps [40,48)
            (48, &payload[48..96], true),      // overlaps [48,88)
            (48, &payload[48..96], true),      // duplicate of the above
            (96, &payload[96..120], false),
        ];
        for (off, data, more) in train {
            d.push(raw_frag(12, off, data, more), &mut out);
        }
        assert_eq!(d.stats.reassembled, 1, "exactly one datagram");
        assert_eq!(d.pending(), 0);
        let pkt = out.pop().expect("complete datagram");
        assert_eq!(&pkt.data[20..], &payload[..]);
    }

    #[test]
    fn oversized_datagram_rejected_at_length_boundary() {
        // 65,515 payload bytes is the largest datagram a 20-byte header
        // and 16-bit total_len can describe; it must reassemble with
        // total_len == 65,535, not wrap.
        let max = super::MAX_PAYLOAD_LEN as usize; // 65,515
        let payload: Vec<u8> = (0..max).map(|i| i as u8).collect();
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        let chunk = 8192usize;
        let mut off = 0usize;
        while off < max {
            let end = (off + chunk).min(max);
            d.push(raw_frag(13, off as u32, &payload[off..end], end < max), &mut out);
            off = end;
        }
        assert_eq!(d.stats.reassembled, 1);
        let v = PacketView::parse(out.pop().unwrap());
        assert_eq!(v.ipv4().unwrap().total_len, u16::MAX, "largest encodable datagram");

        // One byte more and the total_len would wrap to 0: the fragment
        // must be rejected and any partial state for the datagram
        // dropped.
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        d.push(raw_frag(14, 0, &[1u8; 64], true), &mut out);
        assert_eq!(d.pending(), 1);
        let tail = vec![2u8; 4];
        d.push(raw_frag(14, 65_512, &tail, false), &mut out); // ends at 65,516
        assert!(out.is_empty(), "no wrapped-length datagram is emitted");
        assert_eq!(d.stats.oversized, 1);
        assert_eq!(d.pending(), 0, "poisoned reassembly is dropped");
    }

    #[test]
    fn tcp_header_visible_only_after_reassembly() {
        // The motivating case: queries on destPort cannot see non-first
        // fragments; after defragmentation they can see the whole flow.
        let payload = vec![3u8; 120];
        let frags = fragments(&payload, 48, 5, 0);
        // Raw fragments: only the first has a visible TCP header.
        let with_tcp = frags
            .iter()
            .filter(|f| PacketView::parse((*f).clone()).tcp().is_some())
            .count();
        assert_eq!(with_tcp, 1);
        let mut d = Defragmenter::new();
        let mut out = Vec::new();
        for f in frags {
            d.push(f, &mut out);
        }
        assert!(PacketView::parse(out.pop().unwrap()).tcp().is_some());
    }
}
