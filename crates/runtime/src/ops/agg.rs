//! Group-by / aggregation.
//!
//! Two engines share one core:
//!
//! - [`GroupAggregator`]: the exact hash aggregation HFTAs run, with
//!   ordered-attribute flushing — "When a tuple arrives for aggregation
//!   whose ordered attribute is larger than that in any current group, we
//!   can deduce that all of the current groups are closed ... All of the
//!   closed groups are flushed to the output" (paper §2.1);
//! - [`DirectMappedAggregator`]: the LFTA's small direct-mapped table —
//!   "Hash table collisions result in a tuple computed from the ejected
//!   group being written to the output stream. Because of temporal
//!   locality, aggregation even with a small hash table is effective in
//!   early data reduction" (paper §3).
//!
//! Both are generic over [`FieldSource`], so the same code aggregates
//! materialized tuples (HFTA) and raw packets through the interpretation
//! library (LFTA).

use crate::batch::{ColStep, ColumnBatch};
use crate::expr::vector::VecVal;
use crate::expr::{EvalScratch, FieldSource, Program};
use crate::ops::Operator;
use crate::punct::Punct;
use crate::snapshot::{proto, SnapError, SnapReader, SnapWriter};
use crate::stats::OpCounters;
use crate::tuple::{StreamItem, Tuple};
use crate::value::Value;
use gs_gsql::ast::AggFunc;
use gs_gsql::types::DataType;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One aggregate accumulator.
#[derive(Debug, Clone)]
pub enum Acc {
    /// Tuple count.
    Count(u64),
    /// Integer sum (wrapping).
    SumU(u64),
    /// Float sum.
    SumF(f64),
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
}

impl Acc {
    /// Fresh accumulator for a spec.
    pub fn new(func: AggFunc, ty: DataType) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if ty == DataType::Float {
                    Acc::SumF(0.0)
                } else {
                    Acc::SumU(0)
                }
            }
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            // `avg` is split into sum+count by the planner; an unsplit avg
            // (pure-HFTA aggregation) accumulates as a float sum and the
            // surrounding plan divides.
            AggFunc::Avg => Acc::SumF(0.0),
        }
    }

    /// Fold one argument value (`None` only for `count(*)`).
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(c) => *c += 1,
            Acc::SumU(s) => {
                if let Some(v) = v.and_then(|v| v.as_uint()) {
                    *s = s.wrapping_add(v);
                }
            }
            Acc::SumF(s) => {
                if let Some(v) = v.and_then(|v| v.as_float()) {
                    *s += v;
                }
            }
            Acc::Min(m) => {
                if let Some(v) = v {
                    let better =
                        m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_lt());
                    if better {
                        *m = Some(v.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(v) = v {
                    let better =
                        m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_gt());
                    if better {
                        *m = Some(v.clone());
                    }
                }
            }
        }
    }

    /// The accumulated value.
    pub fn value(&self) -> Value {
        match self {
            Acc::Count(c) => Value::UInt(*c),
            Acc::SumU(s) => Value::UInt(*s),
            Acc::SumF(s) => Value::Float(*s),
            // Empty min/max can only be emitted if every contributing
            // tuple's argument failed to evaluate; emit zero.
            Acc::Min(m) | Acc::Max(m) => m.clone().unwrap_or(Value::UInt(0)),
        }
    }

    /// Serialize this accumulator (variant tag + payload).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        match self {
            Acc::Count(c) => {
                w.put_u8(0);
                w.put_u64(*c);
            }
            Acc::SumU(s) => {
                w.put_u8(1);
                w.put_u64(*s);
            }
            Acc::SumF(s) => {
                w.put_u8(2);
                w.put_f64(*s);
            }
            Acc::Min(m) | Acc::Max(m) => {
                w.put_u8(if matches!(self, Acc::Min(_)) { 3 } else { 4 });
                match m {
                    Some(v) => {
                        w.put_u8(1);
                        w.put_value(v);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }

    /// Decode one accumulator.
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Acc, SnapError> {
        let opt_value = |r: &mut SnapReader<'_>| -> Result<Option<Value>, SnapError> {
            match r.get_u8()? {
                0 => Ok(None),
                1 => Ok(Some(r.get_value()?)),
                b => Err(proto(format!("bad option byte {b}"))),
            }
        };
        match r.get_u8()? {
            0 => Ok(Acc::Count(r.get_u64()?)),
            1 => Ok(Acc::SumU(r.get_u64()?)),
            2 => Ok(Acc::SumF(r.get_f64()?)),
            3 => Ok(Acc::Min(opt_value(r)?)),
            4 => Ok(Acc::Max(opt_value(r)?)),
            t => Err(proto(format!("bad accumulator tag {t}"))),
        }
    }
}

/// Serialize one `(group key, accumulators)` pair.
fn snap_group(w: &mut SnapWriter, key: &[Value], accs: &[Acc]) {
    w.put_values(key);
    w.put_u32(accs.len() as u32);
    for a in accs {
        a.snapshot(w);
    }
}

/// Decode one `(group key, accumulators)` pair, validating the shape
/// against the restoring operator's core (a mismatched snapshot must be
/// rejected, not folded into a differently-shaped table).
fn read_group(
    r: &mut SnapReader<'_>,
    core: &AggCore,
) -> Result<(Box<[Value]>, Vec<Acc>), SnapError> {
    let key = r.get_values()?.into_boxed_slice();
    if key.len() != core.group_progs.len() {
        return Err(proto(format!(
            "group key arity {} != {}",
            key.len(),
            core.group_progs.len()
        )));
    }
    let n = r.get_count(2)?;
    if n != core.aggs.len() {
        return Err(proto(format!("accumulator count {n} != {}", core.aggs.len())));
    }
    let mut accs = Vec::with_capacity(n);
    for _ in 0..n {
        accs.push(Acc::restore(r)?);
    }
    Ok((key, accs))
}

/// Shared configuration: compiled group and aggregate expressions.
pub struct AggCore {
    group_progs: Vec<Program>,
    aggs: Vec<(AggFunc, Option<Program>, DataType)>,
    /// Index within the group key of the ordered (flush) attribute.
    flush_idx: Option<usize>,
    /// Banded slack of the flush attribute (0 for monotone).
    slack: u64,
}

impl AggCore {
    /// Build the core.
    pub fn new(
        group_progs: Vec<Program>,
        aggs: Vec<(AggFunc, Option<Program>, DataType)>,
        flush_idx: Option<usize>,
        slack: u64,
    ) -> AggCore {
        AggCore { group_progs, aggs, flush_idx, slack }
    }

    fn eval_key<S: FieldSource>(
        &self,
        src: &S,
        scratch: &mut EvalScratch,
    ) -> Option<Box<[Value]>> {
        let mut key = Vec::with_capacity(self.group_progs.len());
        for p in &self.group_progs {
            key.push(p.eval(src, scratch)?);
        }
        Some(key.into_boxed_slice())
    }

    /// Allocation-free variant of [`eval_key`](Self::eval_key): evaluates
    /// the group key into a reused buffer. Returns false when any group
    /// expression fails (the record is skipped, matching `eval_key`'s
    /// `None`). The batched hot path compares this buffer against the
    /// current group and only materializes a boxed key on a key change.
    fn eval_key_into<S: FieldSource>(
        &self,
        src: &S,
        scratch: &mut EvalScratch,
        buf: &mut Vec<Value>,
    ) -> bool {
        buf.clear();
        for p in &self.group_progs {
            match p.eval(src, scratch) {
                Some(v) => buf.push(v),
                None => return false,
            }
        }
        true
    }

    fn fresh_accs(&self) -> Vec<Acc> {
        self.aggs.iter().map(|(f, _, ty)| Acc::new(*f, *ty)).collect()
    }

    fn update_accs<S: FieldSource>(
        &self,
        accs: &mut [Acc],
        src: &S,
        scratch: &mut EvalScratch,
    ) {
        for (acc, (_, arg, _)) in accs.iter_mut().zip(&self.aggs) {
            match arg {
                None => acc.update(None),
                Some(p) => {
                    // A failed argument does not contribute; the tuple
                    // still counts for other aggregates.
                    let v = p.eval(src, scratch);
                    if matches!(acc, Acc::Count(_)) {
                        if v.is_some() {
                            acc.update(None);
                        }
                    } else {
                        acc.update(v.as_ref());
                    }
                }
            }
        }
    }

    fn flush_value(&self, key: &[Value]) -> Option<u64> {
        let i = self.flush_idx?;
        key.get(i).and_then(|v| v.as_uint())
    }

    fn emit(key: &[Value], accs: &[Acc], out: &mut Vec<StreamItem>) {
        let mut vals = Vec::with_capacity(key.len() + accs.len());
        vals.extend_from_slice(key);
        vals.extend(accs.iter().map(|a| a.value()));
        out.push(StreamItem::Tuple(Tuple::new(vals)));
    }
}

fn hash_key(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Spill the batched paths' cached hot `(key, accs)` entry back into the
/// group table.
///
/// Invariant (the hot-entry seam): while a batch is being folded, the
/// current group's accumulators live *outside* `groups`. Every
/// table-wide operation — watermark flush (`close_below`), punctuation
/// (`advance_bound`), and batch end (after which `publish_stats`, a
/// GS_STATS snapshot, eviction, or `finish` may inspect the table) —
/// MUST be preceded by a spill, or the hot group is invisible to the
/// flush: it would survive its own close, be double-emitted later, or be
/// missing from open-group accounting.
#[inline]
fn spill_hot(
    groups: &mut HashMap<Box<[Value]>, Vec<Acc>>,
    hot: &mut Option<(Box<[Value]>, Vec<Acc>)>,
) {
    if let Some((k, a)) = hot.take() {
        groups.insert(k, a);
    }
}

/// Fold rows `i..j` of a vector-evaluated argument into one accumulator.
///
/// Exactly equivalent to calling [`Acc::update`] per row in order —
/// integer sums use closed forms (wrapping arithmetic distributes mod
/// 2^64), float sums fold sequentially because float addition is not
/// associative and the result must match the row path bit-for-bit.
fn fold_run(acc: &mut Acc, argv: Option<&VecVal>, i: usize, j: usize) {
    let Some(argv) = argv else {
        // count(*): every row of the run counts.
        if let Acc::Count(c) = acc {
            *c += (j - i) as u64;
        }
        return;
    };
    match acc {
        Acc::Count(c) => {
            // count(expr): rows whose argument failed don't count.
            *c += (i..j).filter(|&r| argv.valid(r)).count() as u64;
        }
        Acc::SumU(s) => match argv {
            VecVal::Scalar(v) => {
                if let Some(x) = v.as_uint() {
                    *s = s.wrapping_add(x.wrapping_mul((j - i) as u64));
                }
            }
            _ => {
                for r in i..j {
                    if let Some(x) = argv.get(r).and_then(|v| v.as_uint()) {
                        *s = s.wrapping_add(x);
                    }
                }
            }
        },
        Acc::SumF(s) => match argv {
            VecVal::Scalar(v) => {
                if let Some(x) = v.as_float() {
                    for _ in i..j {
                        *s += x;
                    }
                }
            }
            _ => {
                for r in i..j {
                    if let Some(x) = argv.get(r).and_then(|v| v.as_float()) {
                        *s += x;
                    }
                }
            }
        },
        Acc::Min(_) | Acc::Max(_) => {
            for r in i..j {
                let v = argv.get(r);
                acc.update(v.as_ref());
            }
        }
    }
}

/// Sort closed groups so the flush attribute is nondecreasing in the
/// output (the imputed ordering property of the aggregate's output),
/// breaking flush-value ties by the full group key. The tie-break makes
/// the emission order a *total* deterministic function of the group set
/// rather than of hash-table iteration order — so a run restored from a
/// checkpoint emits byte-for-byte what the uninterrupted run emits, and
/// two runs over the same trace always agree.
fn sort_closed(closed: &mut [(Box<[Value]>, Vec<Acc>)], flush_idx: Option<usize>) {
    let key_cmp = |a: &[Value], b: &[Value]| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    closed.sort_by(|(a, _), (b, _)| {
        let primary = match flush_idx {
            Some(i) => a[i].total_cmp(&b[i]),
            None => std::cmp::Ordering::Equal,
        };
        primary.then_with(|| key_cmp(a, b))
    });
}

// ---------------------------------------------------------------------
// Exact aggregation (HFTA).
// ---------------------------------------------------------------------

/// Exact hash aggregation with ordered flushing.
pub struct GroupAggregator {
    core: AggCore,
    groups: HashMap<Box<[Value]>, Vec<Acc>>,
    watermark: Option<u64>,
    scratch: EvalScratch,
    /// Groups emitted so far.
    pub emitted: u64,
    /// Peak number of simultaneously open groups.
    pub peak_groups: usize,
}

impl GroupAggregator {
    /// Build an exact aggregator.
    pub fn new(core: AggCore) -> GroupAggregator {
        GroupAggregator {
            core,
            groups: HashMap::new(),
            watermark: None,
            scratch: EvalScratch::default(),
            emitted: 0,
            peak_groups: 0,
        }
    }

    /// Fold one input record.
    pub fn update<S: FieldSource>(&mut self, src: &S, out: &mut Vec<StreamItem>) {
        let Some(key) = self.core.eval_key(src, &mut self.scratch) else { return };
        if let Some(v) = self.core.flush_value(&key) {
            if self.watermark.is_none_or(|w| v > w) {
                self.watermark = Some(v);
                self.close_below(v.saturating_sub(self.core.slack), out);
            }
        }
        let accs = self.groups.entry(key).or_insert_with(|| self.core.fresh_accs());
        self.core.update_accs(accs, src, &mut self.scratch);
        self.peak_groups = self.peak_groups.max(self.groups.len());
    }

    /// Punctuation: future flush values are `>= bound`; close groups below.
    pub fn advance_bound(&mut self, bound: u64, out: &mut Vec<StreamItem>) {
        self.close_below(bound, out);
    }

    fn close_below(&mut self, bound: u64, out: &mut Vec<StreamItem>) {
        if self.core.flush_idx.is_none() {
            return;
        }
        let mut closed: Vec<(Box<[Value]>, Vec<Acc>)> = Vec::new();
        self.groups.retain(|key, accs| {
            let keep = self
                .core
                .flush_value(key)
                .is_none_or(|gv| gv >= bound);
            if !keep {
                closed.push((key.clone(), std::mem::take(accs)));
            }
            keep
        });
        sort_closed(&mut closed, self.core.flush_idx);
        for (key, accs) in closed {
            self.emitted += 1;
            AggCore::emit(&key, &accs, out);
        }
    }

    /// Flush everything (end of stream).
    pub fn finish(&mut self, out: &mut Vec<StreamItem>) {
        let mut closed: Vec<(Box<[Value]>, Vec<Acc>)> = self.groups.drain().collect();
        sort_closed(&mut closed, self.core.flush_idx);
        for (key, accs) in closed {
            self.emitted += 1;
            AggCore::emit(&key, &accs, out);
        }
    }

    /// Currently open groups.
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    /// Serialize the open-group table, watermark, and emission counters.
    /// Only called at a quiescent point, so there is no hot entry to
    /// spill (see `spill_hot`: the hot entry exists only *within* one
    /// `push_batch`/`push_cols` call).
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u32(self.groups.len() as u32);
        for (key, accs) in &self.groups {
            snap_group(w, key, accs);
        }
        w.put_opt_u64(self.watermark);
        w.put_u64(self.emitted);
        w.put_u64(self.peak_groups as u64);
    }

    /// Restore state written by [`snapshot_into`](Self::snapshot_into).
    pub fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_count(4)?;
        self.groups.clear();
        self.groups.reserve(n);
        for _ in 0..n {
            let (key, accs) = read_group(r, &self.core)?;
            self.groups.insert(key, accs);
        }
        self.watermark = r.get_opt_u64()?;
        self.emitted = r.get_u64()?;
        self.peak_groups = r.get_u64()? as usize;
        self.peak_groups = self.peak_groups.max(self.groups.len());
        Ok(())
    }
}

/// HFTA aggregation as an [`Operator`], with punctuation translation.
pub struct AggregateOp {
    inner: GroupAggregator,
    /// Translation of input punctuation to flush-attribute bounds:
    /// `(input col, divisor)`.
    punct_in: Option<(usize, u64)>,
    /// Output column index of the flush attribute (for forwarded puncts).
    punct_out: Option<usize>,
    tuples_in: u64,
    batches: u64,
    puncts: u64,
    stats: Arc<OpCounters>,
}

impl AggregateOp {
    /// Wrap an aggregator.
    pub fn new(
        inner: GroupAggregator,
        punct_in: Option<(usize, u64)>,
        punct_out: Option<usize>,
    ) -> AggregateOp {
        AggregateOp {
            inner,
            punct_in,
            punct_out,
            tuples_in: 0,
            batches: 0,
            puncts: 0,
            stats: Arc::new(OpCounters::default()),
        }
    }

    /// Shared-state access for diagnostics.
    pub fn aggregator(&self) -> &GroupAggregator {
        &self.inner
    }
}

impl AggregateOp {
    fn push_punct(&mut self, p: &Punct, out: &mut Vec<StreamItem>) {
        self.puncts += 1;
        if let Some((col, div)) = self.punct_in {
            if p.col == col {
                if let Some(v) = p.low.as_uint() {
                    let bound = v / div.max(1);
                    self.inner.advance_bound(bound, out);
                    if let Some(oc) = self.punct_out {
                        out.push(StreamItem::Punct(Punct::new(oc, Value::UInt(bound))));
                    }
                }
            }
        }
    }
}

impl Operator for AggregateOp {
    fn push(&mut self, _port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        match item {
            StreamItem::Tuple(t) => {
                self.tuples_in += 1;
                self.inner.update(&t, out);
            }
            StreamItem::Punct(p) => self.push_punct(&p, out),
        }
    }

    /// Batched aggregation holds the current group's accumulators out of
    /// the hash table between consecutive tuples: network streams have
    /// strong temporal locality (the property the paper's direct-mapped
    /// LFTA table exploits, §3), so runs of equal keys pay one table
    /// lookup instead of one per tuple.
    fn push_batch(&mut self, _port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        // See `spill_hot`: the hot entry is spilled back into the table
        // before anything that inspects the whole group set.
        self.batches += 1;
        let mut hot: Option<(Box<[Value]>, Vec<Acc>)> = None;
        let mut keybuf: Vec<Value> = Vec::new();
        for item in items {
            match item {
                StreamItem::Tuple(t) => {
                    self.tuples_in += 1;
                    let agg = &mut self.inner;
                    if !agg.core.eval_key_into(&t, &mut agg.scratch, &mut keybuf) {
                        continue;
                    }
                    if let Some(v) = agg.core.flush_value(&keybuf) {
                        if agg.watermark.is_none_or(|w| v > w) {
                            agg.watermark = Some(v);
                            spill_hot(&mut agg.groups, &mut hot);
                            agg.close_below(v.saturating_sub(agg.core.slack), out);
                        }
                    }
                    if hot.as_ref().is_none_or(|(k, _)| k.as_ref() != keybuf.as_slice()) {
                        spill_hot(&mut agg.groups, &mut hot);
                        let key: Box<[Value]> = keybuf.clone().into_boxed_slice();
                        let accs = agg
                            .groups
                            .remove(&key)
                            .unwrap_or_else(|| agg.core.fresh_accs());
                        hot = Some((key, accs));
                    }
                    let (_, accs) = hot.as_mut().expect("hot entry set above");
                    agg.core.update_accs(accs, &t, &mut agg.scratch);
                    agg.peak_groups = agg.peak_groups.max(agg.groups.len() + 1);
                }
                StreamItem::Punct(p) => {
                    spill_hot(&mut self.inner.groups, &mut hot);
                    self.push_punct(&p, out);
                }
            }
        }
        spill_hot(&mut self.inner.groups, &mut hot);
    }

    fn col_capable(&self) -> bool {
        true
    }

    /// Columnar aggregation: group keys and aggregate arguments are
    /// vector-evaluated once for the whole batch, then runs of equal
    /// keys (network streams have strong temporal locality) each pay one
    /// hot-entry check and fold their argument slices with per-column
    /// loops. The hot-entry spill invariant (`spill_hot`) is identical
    /// to the row path's.
    fn push_cols(&mut self, cols: ColumnBatch, punct: Option<Punct>) -> ColStep {
        let keys: Option<Vec<VecVal>> = {
            let core = &self.inner.core;
            core.group_progs.iter().map(|p| p.eval_vec(&cols)).collect()
        };
        let args: Option<Vec<Option<VecVal>>> = {
            let core = &self.inner.core;
            core.aggs
                .iter()
                .map(|(_, arg, _)| match arg {
                    None => Some(None),
                    Some(p) => p.eval_vec(&cols).map(Some),
                })
                .collect()
        };
        let (Some(keys), Some(args)) = (keys, args) else {
            // A program without a vector kernel: whole batch via rows.
            let mut out = Vec::new();
            self.push_batch(0, cols.into_items(punct), &mut out);
            return ColStep::Rows(out);
        };
        self.batches += 1;
        let n = cols.n_rows();
        self.tuples_in += n as u64;
        let mut out = Vec::new();
        let mut hot: Option<(Box<[Value]>, Vec<Acc>)> = None;
        {
            let agg = &mut self.inner;
            let mut i = 0;
            while i < n {
                // A row whose key failed to evaluate is skipped, exactly
                // like the row path's `eval_key_into` miss.
                if !keys.iter().all(|k| k.valid(i)) {
                    i += 1;
                    continue;
                }
                // Extend the run of adjacent rows with this key.
                let mut j = i + 1;
                while j < n
                    && keys.iter().all(|k| k.valid(j))
                    && keys.iter().all(|k| k.rows_eq(i, j))
                {
                    j += 1;
                }
                // Watermark advance: every row of the run shares the
                // flush value, so one check covers the run.
                let fv = agg
                    .core
                    .flush_idx
                    .and_then(|fi| keys[fi].get(i))
                    .and_then(|v| v.as_uint());
                if let Some(v) = fv {
                    if agg.watermark.is_none_or(|w| v > w) {
                        agg.watermark = Some(v);
                        spill_hot(&mut agg.groups, &mut hot);
                        agg.close_below(v.saturating_sub(agg.core.slack), &mut out);
                    }
                }
                let differs = hot.as_ref().is_none_or(|(k, _)| {
                    k.iter().zip(&keys).any(|(kv, col)| col.get(i).as_ref() != Some(kv))
                });
                if differs {
                    spill_hot(&mut agg.groups, &mut hot);
                    let key: Box<[Value]> = keys
                        .iter()
                        .map(|k| k.get(i).expect("validity checked above"))
                        .collect::<Vec<_>>()
                        .into_boxed_slice();
                    let accs =
                        agg.groups.remove(&key).unwrap_or_else(|| agg.core.fresh_accs());
                    hot = Some((key, accs));
                }
                let (_, accs) = hot.as_mut().expect("hot entry set above");
                for (acc, argv) in accs.iter_mut().zip(&args) {
                    fold_run(acc, argv.as_ref(), i, j);
                }
                agg.peak_groups = agg.peak_groups.max(agg.groups.len() + 1);
                i = j;
            }
            spill_hot(&mut agg.groups, &mut hot);
        }
        if let Some(p) = punct {
            self.push_punct(&p, &mut out);
        }
        ColStep::Rows(out)
    }

    fn finish(&mut self, out: &mut Vec<StreamItem>) {
        self.inner.finish(out);
    }

    fn kind(&self) -> &'static str {
        "aggregate"
    }

    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        Some(self.stats.clone())
    }

    fn publish_stats(&self) {
        self.stats.tuples_in.set(self.tuples_in);
        self.stats.tuples_out.set(self.inner.emitted);
        self.stats.batches_in.set(self.batches);
        self.stats.puncts_in.set(self.puncts);
        self.stats.groups_evicted.set(self.inner.emitted);
        self.stats.peak_held.set(self.inner.peak_groups as u64);
    }

    fn snapshot(&self, w: &mut SnapWriter) {
        self.inner.snapshot_into(w);
        w.put_u64(self.tuples_in);
        w.put_u64(self.batches);
        w.put_u64(self.puncts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inner.restore_from(r)?;
        self.tuples_in = r.get_u64()?;
        self.batches = r.get_u64()?;
        self.puncts = r.get_u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Direct-mapped aggregation (LFTA).
// ---------------------------------------------------------------------

/// Statistics of a direct-mapped table (experiment E3 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmStats {
    /// Input records folded.
    pub inputs: u64,
    /// Partial tuples emitted (evictions + flushes + final drain).
    pub outputs: u64,
    /// Collision evictions specifically.
    pub evictions: u64,
}

struct Slot {
    key: Box<[Value]>,
    accs: Vec<Acc>,
}

/// The LFTA's fixed-size direct-mapped eviction hash.
pub struct DirectMappedAggregator {
    core: AggCore,
    slots: Vec<Option<Slot>>,
    mask: usize,
    watermark: Option<u64>,
    scratch: EvalScratch,
    /// Table statistics.
    pub stats: DmStats,
}

impl DirectMappedAggregator {
    /// Build a table with `size` slots (rounded up to a power of two).
    pub fn new(core: AggCore, size: usize) -> DirectMappedAggregator {
        let size = size.max(1).next_power_of_two();
        DirectMappedAggregator {
            core,
            slots: (0..size).map(|_| None).collect(),
            mask: size - 1,
            watermark: None,
            scratch: EvalScratch::default(),
            stats: DmStats::default(),
        }
    }

    /// Fold one input record, possibly emitting partials.
    pub fn update<S: FieldSource>(&mut self, src: &S, out: &mut Vec<StreamItem>) {
        let Some(key) = self.core.eval_key(src, &mut self.scratch) else { return };
        self.stats.inputs += 1;

        // Ordered-attribute advance closes every current group (§2.1).
        if let Some(v) = self.core.flush_value(&key) {
            if self.watermark.is_none_or(|w| v > w) {
                self.watermark = Some(v);
                self.flush_below(v.saturating_sub(self.core.slack), out);
            }
        }

        let idx = (hash_key(&key) as usize) & self.mask;
        match &mut self.slots[idx] {
            Some(slot) if slot.key == key => {
                self.core.update_accs(&mut slot.accs, src, &mut self.scratch);
            }
            occupied @ Some(_) => {
                // Collision: eject the resident group as a partial.
                let old = occupied.take().expect("checked occupied");
                self.stats.evictions += 1;
                self.stats.outputs += 1;
                AggCore::emit(&old.key, &old.accs, out);
                let mut accs = self.core.fresh_accs();
                self.core.update_accs(&mut accs, src, &mut self.scratch);
                *occupied = Some(Slot { key, accs });
            }
            empty @ None => {
                let mut accs = self.core.fresh_accs();
                self.core.update_accs(&mut accs, src, &mut self.scratch);
                *empty = Some(Slot { key, accs });
            }
        }
    }

    /// Close groups whose flush value is below `bound` (heartbeats call
    /// this to flush without packet arrivals).
    pub fn flush_below(&mut self, bound: u64, out: &mut Vec<StreamItem>) {
        if self.core.flush_idx.is_none() {
            return;
        }
        let mut closed: Vec<(Box<[Value]>, Vec<Acc>)> = Vec::new();
        for s in &mut self.slots {
            let close = s
                .as_ref()
                .and_then(|slot| self.core.flush_value(&slot.key))
                .is_some_and(|gv| gv < bound);
            if close {
                let slot = s.take().expect("checked some");
                closed.push((slot.key, slot.accs));
            }
        }
        sort_closed(&mut closed, self.core.flush_idx);
        for (key, accs) in closed {
            self.stats.outputs += 1;
            AggCore::emit(&key, &accs, out);
        }
    }

    /// Flush everything (end of stream).
    pub fn finish(&mut self, out: &mut Vec<StreamItem>) {
        let mut closed: Vec<(Box<[Value]>, Vec<Acc>)> = Vec::new();
        for s in &mut self.slots {
            if let Some(slot) = s.take() {
                closed.push((slot.key, slot.accs));
            }
        }
        sort_closed(&mut closed, self.core.flush_idx);
        for (key, accs) in closed {
            self.stats.outputs += 1;
            AggCore::emit(&key, &accs, out);
        }
    }

    /// Occupied slot count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Table size in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Serialize the occupied slots (with their indices — the table must
    /// restore bit-identically even if the hash function ever changes),
    /// the watermark, and the table statistics.
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u32(self.slots.len() as u32);
        w.put_u32(self.occupancy() as u32);
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(slot) = s {
                w.put_u32(i as u32);
                snap_group(w, &slot.key, &slot.accs);
            }
        }
        w.put_opt_u64(self.watermark);
        w.put_u64(self.stats.inputs);
        w.put_u64(self.stats.outputs);
        w.put_u64(self.stats.evictions);
    }

    /// Restore state written by [`snapshot_into`](Self::snapshot_into).
    pub fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cap = r.get_u32()? as usize;
        if cap != self.slots.len() {
            return Err(proto(format!(
                "direct-mapped capacity {cap} != {}",
                self.slots.len()
            )));
        }
        let n = r.get_count(4)?;
        if n > cap {
            return Err(proto(format!("occupancy {n} exceeds capacity {cap}")));
        }
        for s in &mut self.slots {
            *s = None;
        }
        for _ in 0..n {
            let idx = r.get_u32()? as usize;
            if idx >= self.slots.len() {
                return Err(proto(format!("slot index {idx} out of range")));
            }
            let (key, accs) = read_group(r, &self.core)?;
            if self.slots[idx].is_some() {
                return Err(proto(format!("duplicate slot index {idx}")));
            }
            self.slots[idx] = Some(Slot { key, accs });
        }
        self.watermark = r.get_opt_u64()?;
        self.stats.inputs = r.get_u64()?;
        self.stats.outputs = r.get_u64()?;
        self.stats.evictions = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamBindings;
    use crate::udf::{FileStore, UdfRegistry};
    use gs_gsql::plan::PExpr;

    fn prog(i: usize) -> Program {
        Program::compile(
            &PExpr::Col { index: i, ty: DataType::UInt },
            &ParamBindings::new(),
            &UdfRegistry::with_builtins(),
            &FileStore::new(),
        )
        .unwrap()
    }

    fn tup(vals: &[u64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::UInt(v)).collect())
    }

    /// Core: group by col0 (ordered, slack 0), count(*) and sum(col1).
    fn core() -> AggCore {
        AggCore::new(
            vec![prog(0)],
            vec![
                (AggFunc::Count, None, DataType::UInt),
                (AggFunc::Sum, Some(prog(1)), DataType::UInt),
            ],
            Some(0),
            0,
        )
    }

    fn as_rows(out: &[StreamItem]) -> Vec<Vec<u64>> {
        out.iter()
            .filter_map(|i| i.as_tuple())
            .map(|t| t.values().iter().map(|v| v.as_uint().unwrap()).collect())
            .collect()
    }

    #[test]
    fn exact_ordered_flush() {
        let mut agg = GroupAggregator::new(core());
        let mut out = Vec::new();
        agg.update(&tup(&[1, 10]), &mut out);
        agg.update(&tup(&[1, 5]), &mut out);
        assert!(out.is_empty(), "group 1 still open");
        agg.update(&tup(&[2, 7]), &mut out);
        assert_eq!(as_rows(&out), vec![vec![1, 2, 15]], "advance closes group 1");
        out.clear();
        agg.finish(&mut out);
        assert_eq!(as_rows(&out), vec![vec![2, 1, 7]]);
        assert_eq!(agg.emitted, 2);
    }

    #[test]
    fn banded_slack_keeps_recent_groups_open() {
        let core = AggCore::new(
            vec![prog(0)],
            vec![(AggFunc::Count, None, DataType::UInt)],
            Some(0),
            2, // banded-increasing(2)
        );
        let mut agg = GroupAggregator::new(core);
        let mut out = Vec::new();
        agg.update(&tup(&[10, 0]), &mut out);
        agg.update(&tup(&[11, 0]), &mut out);
        assert!(out.is_empty(), "10 >= 11-2: still open");
        agg.update(&tup(&[13, 0]), &mut out);
        // Bound 11: closes group 10 only.
        assert_eq!(as_rows(&out), vec![vec![10, 1]]);
        // A laggard within the band is still accepted.
        agg.update(&tup(&[11, 0]), &mut out);
        out.clear();
        agg.finish(&mut out);
        assert_eq!(as_rows(&out), vec![vec![11, 2], vec![13, 1]]);
    }

    #[test]
    fn multiple_groups_flush_sorted() {
        // Group by (col0 bucket, col1), both in the key; flush on col0.
        let core = AggCore::new(
            vec![prog(0), prog(1)],
            vec![(AggFunc::Count, None, DataType::UInt)],
            Some(0),
            0,
        );
        let mut agg = GroupAggregator::new(core);
        let mut out = Vec::new();
        agg.update(&tup(&[1, 9]), &mut out);
        agg.update(&tup(&[1, 3]), &mut out);
        agg.update(&tup(&[1, 9]), &mut out);
        agg.update(&tup(&[2, 0]), &mut out);
        let rows = as_rows(&out);
        assert_eq!(rows.len(), 2);
        // Both closed rows carry bucket 1; sorted deterministically.
        assert!(rows.iter().all(|r| r[0] == 1));
        assert_eq!(rows.iter().map(|r| r[2]).sum::<u64>(), 3);
    }

    #[test]
    fn punct_closes_without_tuples() {
        let mut op = AggregateOp::new(GroupAggregator::new(core()), Some((0, 1)), Some(0));
        let mut out = Vec::new();
        op.push(0, StreamItem::Tuple(tup(&[5, 1])), &mut out);
        assert!(out.is_empty());
        op.push(0, StreamItem::Punct(Punct::new(0, Value::UInt(6))), &mut out);
        let rows = as_rows(&out);
        assert_eq!(rows, vec![vec![5, 1, 1]]);
        // And the punct is forwarded on the output flush column.
        assert!(out.iter().any(
            |i| matches!(i, StreamItem::Punct(p) if p.col == 0 && p.low == Value::UInt(6))
        ));
    }

    #[test]
    fn push_batch_matches_item_pushes() {
        // Runs of equal keys, key changes, flush advances, and interleaved
        // punctuation: the batched path must produce the same tuples.
        let mk = || AggregateOp::new(GroupAggregator::new(core()), Some((0, 1)), Some(0));
        let items: Vec<StreamItem> = [
            (1u64, 5u64),
            (1, 3),
            (1, 2), // run of key 1
            (2, 10),
            (2, 1), // advance + run of key 2
            (1, 100), // late tuple for an already-closed bucket value
            (3, 7),
        ]
        .iter()
        .map(|&(a, b)| StreamItem::Tuple(tup(&[a, b])))
        .chain([StreamItem::Punct(Punct::new(0, Value::UInt(4)))])
        .collect();

        let mut item_op = mk();
        let mut item_out = Vec::new();
        for it in items.clone() {
            item_op.push(0, it, &mut item_out);
        }
        item_op.finish(&mut item_out);

        let mut batch_op = mk();
        let mut batch_out = Vec::new();
        // Split into two batches to exercise hot-entry spill at the seam.
        let mut items = items;
        let tail = items.split_off(4);
        batch_op.push_batch(0, items, &mut batch_out);
        batch_op.push_batch(0, tail, &mut batch_out);
        batch_op.finish(&mut batch_out);

        let norm = |rows: Vec<Vec<u64>>| {
            let mut r = rows;
            r.sort();
            r
        };
        assert_eq!(norm(as_rows(&item_out)), norm(as_rows(&batch_out)));
        assert_eq!(item_op.aggregator().emitted, batch_op.aggregator().emitted);
    }

    #[test]
    fn push_cols_matches_push_batch() {
        use crate::batch::ColumnBatch;
        // Same shape as `push_batch_matches_item_pushes`, but the batch
        // arrives columnar with the punctuation as a rider.
        let mk = || AggregateOp::new(GroupAggregator::new(core()), Some((0, 1)), Some(0));
        let tuples: Vec<Tuple> = [
            (1u64, 5u64),
            (1, 3),
            (1, 2),
            (2, 10),
            (2, 1),
            (1, 100),
            (3, 7),
        ]
        .iter()
        .map(|&(a, b)| tup(&[a, b]))
        .collect();
        let punct = Punct::new(0, Value::UInt(4));

        let mut row_op = mk();
        let mut row_out = Vec::new();
        let items: Vec<StreamItem> = tuples
            .iter()
            .cloned()
            .map(StreamItem::Tuple)
            .chain([StreamItem::Punct(punct.clone())])
            .collect();
        row_op.push_batch(0, items, &mut row_out);
        row_op.finish(&mut row_out);

        let mut col_op = mk();
        let cb = ColumnBatch::from_tuples(&tuples);
        let ColStep::Rows(mut col_out) = col_op.push_cols(cb, Some(punct)) else {
            panic!("aggregation output is row-shaped");
        };
        col_op.finish(&mut col_out);

        assert_eq!(as_rows(&row_out), as_rows(&col_out));
        assert_eq!(row_op.aggregator().emitted, col_op.aggregator().emitted);
        assert_eq!(
            row_op.aggregator().open_groups(),
            col_op.aggregator().open_groups()
        );
    }

    #[test]
    fn punct_mid_batch_spills_hot_group() {
        use crate::batch::ColumnBatch;
        // The hot-entry seam (satellite regression): a punctuation token
        // lands mid-batch while a hot group's accumulators live outside
        // the table. The flush must see the full pre-punct accumulation —
        // if the hot entry is not spilled first, the group either
        // survives its own close or is emitted with missing rows.
        let mk = || AggregateOp::new(GroupAggregator::new(core()), Some((0, 1)), Some(0));

        // Key 5 is hot (a run), the punct closes bucket 5, then key 5
        // resumes — which must open a FRESH group, not resurrect state.
        let head: Vec<StreamItem> = [(5u64, 1u64), (5, 2), (5, 4)]
            .iter()
            .map(|&(a, b)| StreamItem::Tuple(tup(&[a, b])))
            .collect();
        let punct = Punct::new(0, Value::UInt(6));
        let tail: Vec<StreamItem> =
            [(5u64, 100u64), (5, 200)].iter().map(|&(a, b)| StreamItem::Tuple(tup(&[a, b]))).collect();

        // Row path: one batch interleaving punct between the runs.
        let mut op = mk();
        let mut out = Vec::new();
        let items: Vec<StreamItem> = head
            .iter()
            .cloned()
            .chain([StreamItem::Punct(punct.clone())])
            .chain(tail.iter().cloned())
            .collect();
        op.push_batch(0, items, &mut out);
        // The punct must have closed group 5 with all three head rows.
        assert_eq!(as_rows(&out), vec![vec![5, 3, 7]], "flush sees the hot run");
        assert_eq!(op.aggregator().open_groups(), 1, "resumed key 5 is a fresh group");
        out.clear();
        op.finish(&mut out);
        assert_eq!(as_rows(&out), vec![vec![5, 2, 300]]);

        // Columnar path: punct rides after the head batch, tail follows.
        let mut op = mk();
        let head_t: Vec<Tuple> = [(5u64, 1u64), (5, 2), (5, 4)].iter().map(|&(a, b)| tup(&[a, b])).collect();
        let tail_t: Vec<Tuple> =
            [(5u64, 100u64), (5, 200)].iter().map(|&(a, b)| tup(&[a, b])).collect();
        let ColStep::Rows(mut out) =
            op.push_cols(ColumnBatch::from_tuples(&head_t), Some(punct))
        else {
            panic!("row-shaped");
        };
        assert_eq!(as_rows(&out), vec![vec![5, 3, 7]], "columnar flush sees the hot run");
        let ColStep::Rows(more) = op.push_cols(ColumnBatch::from_tuples(&tail_t), None) else {
            panic!("row-shaped");
        };
        out.extend(more);
        assert_eq!(op.aggregator().open_groups(), 1);
        op.finish(&mut out);
        assert_eq!(as_rows(&out)[1..], [vec![5, 2, 300]]);
    }

    #[test]
    fn unordered_aggregation_waits_for_finish() {
        let core = AggCore::new(
            vec![prog(0)],
            vec![(AggFunc::Count, None, DataType::UInt)],
            None,
            0,
        );
        let mut agg = GroupAggregator::new(core);
        let mut out = Vec::new();
        for v in [3u64, 1, 3, 2, 1] {
            agg.update(&tup(&[v, 0]), &mut out);
        }
        assert!(out.is_empty());
        agg.finish(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn min_max_avg_accumulators() {
        let core = AggCore::new(
            vec![prog(0)],
            vec![
                (AggFunc::Min, Some(prog(1)), DataType::UInt),
                (AggFunc::Max, Some(prog(1)), DataType::UInt),
            ],
            Some(0),
            0,
        );
        let mut agg = GroupAggregator::new(core);
        let mut out = Vec::new();
        agg.update(&tup(&[1, 5]), &mut out);
        agg.update(&tup(&[1, 2]), &mut out);
        agg.update(&tup(&[1, 9]), &mut out);
        agg.finish(&mut out);
        assert_eq!(as_rows(&out), vec![vec![1, 2, 9]]);
    }

    #[test]
    fn direct_mapped_eviction_on_collision() {
        // A 1-slot table: every distinct key evicts the previous one.
        let core = AggCore::new(
            vec![prog(1)], // group by col1 (not ordered)
            vec![(AggFunc::Count, None, DataType::UInt)],
            None,
            0,
        );
        let mut dm = DirectMappedAggregator::new(core, 1);
        let mut out = Vec::new();
        dm.update(&tup(&[0, 7]), &mut out);
        dm.update(&tup(&[0, 7]), &mut out);
        assert!(out.is_empty(), "same key aggregates in place");
        dm.update(&tup(&[0, 8]), &mut out);
        assert_eq!(dm.stats.evictions, 1);
        assert_eq!(as_rows(&out), vec![vec![7, 2]]);
        out.clear();
        dm.finish(&mut out);
        assert_eq!(as_rows(&out), vec![vec![8, 1]]);
        assert_eq!(dm.stats.inputs, 3);
        assert_eq!(dm.stats.outputs, 2);
    }

    #[test]
    fn direct_mapped_plus_exact_equals_exact() {
        // Partial aggregation through a tiny direct-mapped table, combined
        // by an exact aggregator, must equal direct exact aggregation.
        let mk_core = || {
            AggCore::new(
                vec![prog(0), prog(1)],
                vec![(AggFunc::Count, None, DataType::UInt)],
                Some(0),
                0,
            )
        };
        // Combine: group by (col0, col1), sum partial counts (col2).
        let combine_core = AggCore::new(
            vec![prog(0), prog(1)],
            vec![(AggFunc::Sum, Some(prog(2)), DataType::UInt)],
            Some(0),
            0,
        );
        let mut dm = DirectMappedAggregator::new(mk_core(), 2);
        let mut exact = GroupAggregator::new(mk_core());
        let mut combine = GroupAggregator::new(combine_core);

        // A skewed input with bucket advances.
        let data: Vec<[u64; 2]> = (0..500)
            .map(|i| [i / 100, if i % 7 == 0 { 1 } else { i % 3 }])
            .collect();
        let mut partials = Vec::new();
        let mut direct = Vec::new();
        for d in &data {
            dm.update(&tup(d), &mut partials);
            exact.update(&tup(d), &mut direct);
        }
        dm.finish(&mut partials);
        exact.finish(&mut direct);

        let mut combined = Vec::new();
        for p in crate::tuple::tuples_of(partials) {
            combine.update(&p, &mut combined);
        }
        combine.finish(&mut combined);

        let norm = |rows: Vec<Vec<u64>>| {
            let mut r = rows;
            r.sort();
            r
        };
        assert_eq!(norm(as_rows(&combined)), norm(as_rows(&direct)));
        assert!(dm.stats.evictions > 0, "tiny table must evict on this input");
    }

    #[test]
    fn occupancy_and_capacity() {
        let dm = DirectMappedAggregator::new(core(), 100);
        assert_eq!(dm.capacity(), 128, "rounded to a power of two");
        assert_eq!(dm.occupancy(), 0);
    }

    #[test]
    fn snapshot_restore_continues_exactly() {
        // Cut a stream mid-window, snapshot, restore into a freshly built
        // operator, feed the tail: concatenated output must equal the
        // uninterrupted run tuple for tuple, and the counters carry over.
        let mk = || AggregateOp::new(GroupAggregator::new(core()), Some((0, 1)), Some(0));
        let items: Vec<StreamItem> = [(1u64, 5u64), (1, 3), (2, 10), (2, 1), (3, 7), (3, 2)]
            .iter()
            .map(|&(a, b)| StreamItem::Tuple(tup(&[a, b])))
            .collect();
        let (head, tail) = items.split_at(3); // cut mid-window of bucket 2

        let mut cont = mk();
        let mut cont_out = Vec::new();
        cont.push_batch(0, items.clone(), &mut cont_out);
        cont.finish(&mut cont_out);

        let mut first = mk();
        let mut split_out = Vec::new();
        first.push_batch(0, head.to_vec(), &mut split_out);
        let mut w = SnapWriter::new();
        Operator::snapshot(&first, &mut w);
        let sealed = w.seal();

        let mut second = mk();
        let mut r = SnapReader::open(&sealed).expect("open");
        Operator::restore(&mut second, &mut r).expect("restore");
        r.finish().expect("payload fully consumed");
        second.push_batch(0, tail.to_vec(), &mut split_out);
        second.finish(&mut split_out);

        assert_eq!(as_rows(&cont_out), as_rows(&split_out));
        assert_eq!(second.aggregator().emitted, cont.aggregator().emitted);
        assert_eq!(second.aggregator().peak_groups, cont.aggregator().peak_groups);
    }

    #[test]
    fn snapshot_shape_mismatch_is_rejected() {
        // A snapshot taken from a 2-agg operator must not restore into a
        // 1-agg operator: the shape check fires a Protocol error.
        let mut donor = AggregateOp::new(GroupAggregator::new(core()), None, None);
        let mut out = Vec::new();
        donor.push(0, StreamItem::Tuple(tup(&[1, 5])), &mut out);
        let mut w = SnapWriter::new();
        Operator::snapshot(&donor, &mut w);
        let sealed = w.seal();

        let slim_core = AggCore::new(
            vec![prog(0)],
            vec![(AggFunc::Count, None, DataType::UInt)],
            Some(0),
            0,
        );
        let mut slim = AggregateOp::new(GroupAggregator::new(slim_core), None, None);
        let mut r = SnapReader::open(&sealed).expect("open");
        assert!(matches!(
            Operator::restore(&mut slim, &mut r),
            Err(SnapError::Protocol(_))
        ));
    }

    #[test]
    fn direct_mapped_snapshot_restore_continues_exactly() {
        let mk = || DirectMappedAggregator::new(core(), 4);
        let data: Vec<[u64; 2]> =
            (0..40).map(|i| [i / 8, if i % 5 == 0 { 2 } else { i % 3 }]).collect();
        let (head, tail) = data.split_at(17);

        let mut cont = mk();
        let mut cont_out = Vec::new();
        for d in &data {
            cont.update(&tup(d), &mut cont_out);
        }
        cont.finish(&mut cont_out);

        let mut first = mk();
        let mut split_out = Vec::new();
        for d in head {
            first.update(&tup(d), &mut split_out);
        }
        let mut w = SnapWriter::new();
        first.snapshot_into(&mut w);
        let sealed = w.seal();

        let mut second = mk();
        let mut r = SnapReader::open(&sealed).expect("open");
        second.restore_from(&mut r).expect("restore");
        r.finish().expect("payload fully consumed");
        for d in tail {
            second.update(&tup(d), &mut split_out);
        }
        second.finish(&mut split_out);

        assert_eq!(as_rows(&cont_out), as_rows(&split_out));
        assert_eq!(second.stats, cont.stats);

        // Capacity mismatch is rejected, not silently remapped.
        let mut bigger = DirectMappedAggregator::new(core(), 8);
        let mut r = SnapReader::open(&sealed).expect("open");
        assert!(matches!(bigger.restore_from(&mut r), Err(SnapError::Protocol(_))));
    }
}
