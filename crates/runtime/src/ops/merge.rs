//! The order-preserving merge operator.
//!
//! "GSQL contains an extension to SQL, the merge operator, which is a
//! Union operator which preserves the ordering properties of an attribute.
//! ... This operator is surprisingly important — we implemented it before
//! the join operator." (paper §2.2). Optical links are simplex; seeing a
//! full duplex conversation requires merging two interfaces.
//!
//! The operator is a watermark merge: a buffered tuple is emitted once its
//! merge-attribute value is at or below every input's *future bound* (the
//! largest value below which no input can produce further tuples). The
//! future bound advances with data tuples and with punctuation — without
//! punctuation a silent input blocks the merge and buffers grow without
//! bound, exactly the failure mode of §3's 100 Mbyte/s-vs-1-tuple/minute
//! example.

use crate::ops::{Operator, OrderedTupleEntry as Entry};
use crate::punct::Punct;
use crate::snapshot::{SnapError, SnapReader, SnapWriter};
use crate::stats::OpCounters;
use crate::tuple::StreamItem;
use crate::value::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

struct Input {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Largest merge-attribute value seen.
    watermark: Option<u64>,
    /// Best-known lower bound on future values.
    future_bound: Option<u64>,
    finished: bool,
}

impl Input {
    fn bound(&self) -> Option<u64> {
        if self.finished {
            return Some(u64::MAX);
        }
        self.future_bound
    }
}

/// K-way order-preserving union on one ordered attribute.
pub struct MergeOp {
    inputs: Vec<Input>,
    on_col: usize,
    /// Banded slack per input (0 for monotone inputs).
    slacks: Vec<u64>,
    seq: u64,
    last_punct_bound: Option<u64>,
    /// Total buffered tuples right now.
    buffered: usize,
    /// Peak total buffered tuples (experiment E5 reads this).
    pub peak_buffered: usize,
    /// Set when the operator would benefit from a heartbeat: some input's
    /// unknown/lagging bound is holding buffered tuples back (the paper's
    /// on-demand punctuation trigger).
    pub starved: bool,
    tuples_in: u64,
    tuples_out: u64,
    batches: u64,
    puncts: u64,
    stats: Arc<OpCounters>,
}

impl MergeOp {
    /// Build a merge of `n` inputs on column `on_col`, with per-input
    /// banded slack.
    ///
    /// # Panics
    /// Panics unless `n >= 2` and `slacks.len() == n`.
    pub fn new(n: usize, on_col: usize, slacks: Vec<u64>) -> MergeOp {
        assert!(n >= 2, "merge needs at least two inputs");
        assert_eq!(slacks.len(), n, "one slack per input");
        MergeOp {
            inputs: (0..n)
                .map(|_| Input {
                    heap: BinaryHeap::new(),
                    watermark: None,
                    future_bound: None,
                    finished: false,
                })
                .collect(),
            on_col,
            slacks,
            seq: 0,
            last_punct_bound: None,
            buffered: 0,
            peak_buffered: 0,
            starved: false,
            tuples_in: 0,
            tuples_out: 0,
            batches: 0,
            puncts: 0,
            stats: Arc::new(OpCounters::default()),
        }
    }

    /// The merge-attribute bound below which output is complete.
    fn safe_bound(&self) -> Option<u64> {
        let mut b = u64::MAX;
        for i in &self.inputs {
            b = b.min(i.bound()?);
        }
        Some(b)
    }

    /// Recompute the heartbeat-starvation flag. The operator is starved
    /// whenever buffered tuples are being held back: either no safe bound
    /// exists yet (some input has produced nothing), or some input's head
    /// entry sits above the bound — every input has punctuated, but one
    /// input's bound lags the buffered minimum. Both cases mean only an
    /// out-of-band heartbeat can restore progress.
    fn update_starved(&mut self) {
        self.starved = match self.safe_bound() {
            None => self.buffered > 0,
            Some(bound) => {
                self.inputs.iter().any(|i| i.heap.peek().is_some_and(|Reverse(e)| e.v > bound))
            }
        };
    }

    fn drain_ready(&mut self, out: &mut Vec<StreamItem>) {
        let Some(bound) = self.safe_bound() else {
            self.update_starved();
            return;
        };
        loop {
            // Pop the globally smallest buffered entry if it is safe.
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, input) in self.inputs.iter().enumerate() {
                if let Some(Reverse(e)) = input.heap.peek() {
                    if e.v <= bound {
                        let cand = (i, e.v, e.seq);
                        best = match best {
                            None => Some(cand),
                            Some(b) if (cand.1, cand.2) < (b.1, b.2) => Some(cand),
                            keep => keep,
                        };
                    }
                }
            }
            let Some((i, _, _)) = best else { break };
            let Reverse(e) = self.inputs[i].heap.pop().expect("peeked entry");
            self.buffered -= 1;
            self.tuples_out += 1;
            out.push(StreamItem::Tuple(e.tuple));
        }
        self.update_starved();
        // Forward progress downstream, once per bound advance.
        if self.inputs.iter().all(|i| !i.finished)
            && self.last_punct_bound.is_none_or(|b| bound > b)
        {
            self.last_punct_bound = Some(bound);
            out.push(StreamItem::Punct(Punct::new(self.on_col, Value::UInt(bound))));
        }
    }

    /// Buffer one item and update the input's bounds; returns whether the
    /// item could affect the drainable set.
    fn absorb(&mut self, port: usize, item: StreamItem) -> bool {
        match item {
            StreamItem::Tuple(t) => {
                self.tuples_in += 1;
                let Some(v) = t.get(self.on_col).as_uint() else { return false };
                let input = &mut self.inputs[port];
                input.watermark = Some(input.watermark.map_or(v, |w| w.max(v)));
                let wm_bound = input.watermark.expect("just set").saturating_sub(self.slacks[port]);
                input.future_bound =
                    Some(input.future_bound.map_or(wm_bound, |b| b.max(wm_bound)));
                self.seq += 1;
                input.heap.push(Reverse(Entry { v, seq: self.seq, tuple: t }));
                self.buffered += 1;
                self.peak_buffered = self.peak_buffered.max(self.buffered);
                true
            }
            StreamItem::Punct(p) => {
                self.puncts += 1;
                if p.col != self.on_col {
                    return false;
                }
                let Some(low) = p.low.as_uint() else { return false };
                let input = &mut self.inputs[port];
                input.future_bound = Some(input.future_bound.map_or(low, |b| b.max(low)));
                true
            }
        }
    }

    /// Mark one input as exhausted.
    pub fn finish_input(&mut self, port: usize, out: &mut Vec<StreamItem>) {
        self.inputs[port].finished = true;
        self.drain_ready(out);
    }

    /// Tuples currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffered
    }
}

impl Operator for MergeOp {
    fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn push(&mut self, port: usize, item: StreamItem, out: &mut Vec<StreamItem>) {
        if self.absorb(port, item) {
            self.drain_ready(out);
        } else {
            // Off-column punctuation (or an unmergeable tuple) can't move
            // the bound, but the starvation flag must stay honest — the
            // on-demand heartbeat trigger reads it between pushes.
            self.update_starved();
        }
    }

    /// Batched merge absorbs the whole batch into the input heap —
    /// advancing the watermark and future bound as it goes — and re-peeks
    /// the heaps once at the end, instead of running the k-way
    /// smallest-safe-entry scan after every tuple.
    fn push_batch(&mut self, port: usize, items: Vec<StreamItem>, out: &mut Vec<StreamItem>) {
        self.batches += 1;
        let mut dirty = false;
        for item in items {
            dirty |= self.absorb(port, item);
        }
        if dirty {
            self.drain_ready(out);
        } else {
            self.update_starved();
        }
    }

    fn finish(&mut self, out: &mut Vec<StreamItem>) {
        for i in &mut self.inputs {
            i.finished = true;
        }
        self.drain_ready(out);
    }

    fn kind(&self) -> &'static str {
        "merge"
    }

    fn stats_handle(&self) -> Option<Arc<OpCounters>> {
        Some(self.stats.clone())
    }

    fn publish_stats(&self) {
        self.stats.tuples_in.set(self.tuples_in);
        self.stats.tuples_out.set(self.tuples_out);
        self.stats.batches_in.set(self.batches);
        self.stats.puncts_in.set(self.puncts);
        self.stats.peak_held.set(self.peak_buffered as u64);
    }

    /// Per-input heads (buffered entries + watermark/bound + starved and
    /// finished flags) plus the global sequence and counters.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u32(self.inputs.len() as u32);
        for input in &self.inputs {
            w.put_u32(input.heap.len() as u32);
            // Heap iteration order is arbitrary; restore re-pushes, and
            // (v, seq) ordering makes the rebuilt heap equivalent.
            for Reverse(e) in input.heap.iter() {
                w.put_u64(e.v);
                w.put_u64(e.seq);
                w.put_tuple(&e.tuple);
            }
            w.put_opt_u64(input.watermark);
            w.put_opt_u64(input.future_bound);
            w.put_bool(input.finished);
        }
        w.put_u64(self.seq);
        w.put_opt_u64(self.last_punct_bound);
        w.put_u64(self.peak_buffered as u64);
        w.put_bool(self.starved);
        w.put_u64(self.tuples_in);
        w.put_u64(self.tuples_out);
        w.put_u64(self.batches);
        w.put_u64(self.puncts);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_u32()? as usize;
        if n != self.inputs.len() {
            return Err(crate::snapshot::proto(format!(
                "merge input count {n} != {}",
                self.inputs.len()
            )));
        }
        let mut buffered = 0;
        for input in &mut self.inputs {
            let k = r.get_count(17)?; // v + seq + >=1-byte tuple
            input.heap.clear();
            for _ in 0..k {
                let v = r.get_u64()?;
                let seq = r.get_u64()?;
                let tuple = r.get_tuple()?;
                input.heap.push(Reverse(Entry { v, seq, tuple }));
            }
            buffered += k;
            input.watermark = r.get_opt_u64()?;
            input.future_bound = r.get_opt_u64()?;
            input.finished = r.get_bool()?;
        }
        self.buffered = buffered;
        self.seq = r.get_u64()?;
        self.last_punct_bound = r.get_opt_u64()?;
        self.peak_buffered = (r.get_u64()? as usize).max(buffered);
        self.starved = r.get_bool()?;
        self.tuples_in = r.get_u64()?;
        self.tuples_out = r.get_u64()?;
        self.batches = r.get_u64()?;
        self.puncts = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn tup(v: u64) -> StreamItem {
        StreamItem::Tuple(Tuple::new(vec![Value::UInt(v)]))
    }

    fn vals(out: &[StreamItem]) -> Vec<u64> {
        out.iter()
            .filter_map(|i| i.as_tuple())
            .map(|t| t.get(0).as_uint().unwrap())
            .collect()
    }

    #[test]
    fn interleaves_in_order() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        for v in [1u64, 4, 9] {
            m.push(0, tup(v), &mut out);
        }
        for v in [2u64, 3, 10] {
            m.push(1, tup(v), &mut out);
        }
        m.finish(&mut out);
        assert_eq!(vals(&out), vec![1, 2, 3, 4, 9, 10]);
    }

    #[test]
    fn holds_back_until_both_sides_progress() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        m.push(0, tup(5), &mut out);
        m.push(0, tup(6), &mut out);
        assert!(vals(&out).is_empty(), "input 1 has no bound yet");
        assert!(m.starved, "the operator reports potential blockage");
        m.push(1, tup(7), &mut out);
        // Input 1's future bound is 7: both 5 and 6 are safe.
        assert_eq!(vals(&out), vec![5, 6]);
        assert_eq!(m.buffered(), 1);
    }

    #[test]
    fn punctuation_unblocks_a_silent_input() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        for v in 1..=100u64 {
            m.push(0, tup(v), &mut out);
        }
        assert_eq!(m.buffered(), 100, "silent second input blocks everything");
        m.push(1, StreamItem::Punct(Punct::new(0, Value::UInt(1_000))), &mut out);
        assert_eq!(vals(&out).len(), 100);
        assert_eq!(m.buffered(), 0);
        assert!(!m.starved);
    }

    #[test]
    fn banded_input_respects_slack() {
        // Input 0 is banded-increasing(10): seeing 50 only guarantees
        // future values >= 40.
        let mut m = MergeOp::new(2, 0, vec![10, 0]);
        let mut out = Vec::new();
        m.push(0, tup(50), &mut out);
        m.push(1, tup(45), &mut out);
        // Bound = min(50-10, 45) = 40: nothing emits yet.
        assert!(vals(&out).is_empty());
        // A late in-band tuple on input 0 still merges correctly.
        m.push(0, tup(42), &mut out);
        m.push(1, tup(60), &mut out);
        // Bounds: input0 = 40, input1 = 60 -> nothing <= 40... still held.
        assert!(vals(&out).is_empty());
        m.push(0, tup(70), &mut out);
        // Input0 bound = 60; emit everything <= 60 in order.
        assert_eq!(vals(&out), vec![42, 45, 50, 60]);
        m.finish(&mut out);
        assert_eq!(vals(&out), vec![42, 45, 50, 60, 70]);
    }

    #[test]
    fn peak_buffer_tracks_blockage() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        for v in 1..=50u64 {
            m.push(0, tup(v), &mut out);
        }
        m.push(1, tup(100), &mut out);
        m.finish(&mut out);
        assert_eq!(m.peak_buffered, 51);
        assert_eq!(vals(&out).len(), 51);
    }

    #[test]
    fn forwards_progress_punctuation() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        m.push(0, tup(5), &mut out);
        m.push(1, tup(8), &mut out);
        assert!(
            out.iter().any(|i| matches!(i, StreamItem::Punct(p) if p.low == Value::UInt(5))),
            "downstream learns the merge's own bound"
        );
    }

    #[test]
    fn push_batch_matches_item_pushes() {
        let feed: Vec<(usize, u64)> =
            vec![(0, 1), (0, 4), (1, 2), (1, 3), (0, 9), (1, 10), (0, 12), (1, 11)];
        let mut item_m = MergeOp::new(2, 0, vec![0, 0]);
        let mut item_out = Vec::new();
        for &(p, v) in &feed {
            item_m.push(p, tup(v), &mut item_out);
        }
        item_m.finish(&mut item_out);

        let mut batch_m = MergeOp::new(2, 0, vec![0, 0]);
        let mut batch_out = Vec::new();
        // Per-port batches, interleaved, with a punct in the middle.
        batch_m.push_batch(0, vec![tup(1), tup(4)], &mut batch_out);
        batch_m.push_batch(1, vec![tup(2), tup(3)], &mut batch_out);
        batch_m.push_batch(
            0,
            vec![tup(9), StreamItem::Punct(Punct::new(0, Value::UInt(9)))],
            &mut batch_out,
        );
        batch_m.push_batch(1, vec![tup(10), tup(11)], &mut batch_out);
        batch_m.push_batch(0, vec![tup(12)], &mut batch_out);
        batch_m.push_batch(1, Vec::new(), &mut batch_out);
        batch_m.finish(&mut batch_out);

        assert_eq!(vals(&item_out), vals(&batch_out), "same tuples in the same order");
    }

    #[test]
    fn three_way_merge() {
        let mut m = MergeOp::new(3, 0, vec![0, 0, 0]);
        let mut out = Vec::new();
        m.push(0, tup(1), &mut out);
        m.push(1, tup(2), &mut out);
        m.push(2, tup(3), &mut out);
        m.push(0, tup(4), &mut out);
        m.push(1, tup(5), &mut out);
        m.push(2, tup(6), &mut out);
        m.finish(&mut out);
        assert_eq!(vals(&out), vec![1, 2, 3, 4, 5, 6]);
    }

    /// Regression: a punctuated-but-slow input gives every input a bound,
    /// yet its lagging bound holds the other side's tuples back — the
    /// operator must still report starvation so the on-demand heartbeat
    /// trigger fires, and an off-column punct must not stale the flag.
    #[test]
    fn lagging_punctuated_input_reports_starvation() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        // Input 1 is alive (it punctuated) but far behind: bound = 0.
        m.push(1, StreamItem::Punct(Punct::new(0, Value::UInt(0))), &mut out);
        for v in 1..=100u64 {
            m.push(0, tup(v), &mut out);
        }
        assert_eq!(m.buffered(), 100, "every input has a bound, tuples still held");
        assert!(m.starved, "held-back tuples with a lagging bound are starvation");
        // An off-column punct changes nothing and must not clear the flag.
        m.push(1, StreamItem::Punct(Punct::new(5, Value::UInt(1_000))), &mut out);
        assert!(m.starved, "off-column punctuation must not clear starvation");
        // The real punct catches input 1 up and drains everything.
        m.push(1, StreamItem::Punct(Punct::new(0, Value::UInt(1_000))), &mut out);
        assert_eq!(vals(&out).len(), 100);
        assert_eq!(m.buffered(), 0);
        assert!(!m.starved);
    }

    #[test]
    fn finish_input_releases_its_hold() {
        let mut m = MergeOp::new(2, 0, vec![0, 0]);
        let mut out = Vec::new();
        m.push(0, tup(9), &mut out);
        assert!(vals(&out).is_empty());
        m.finish_input(1, &mut out);
        assert_eq!(vals(&out), vec![9]);
    }

    #[test]
    fn snapshot_restore_continues_exactly() {
        use crate::snapshot::{SnapReader, SnapWriter};
        // Cut a two-input feed while tuples are buffered and one side is
        // starved; restore into a fresh merge and feed the tail — output
        // must equal the uninterrupted run, and the starved flag, bounds,
        // and counters survive the trip.
        let feed: Vec<(usize, u64)> =
            vec![(0, 1), (0, 4), (1, 2), (0, 9), (1, 3), (1, 10), (0, 12), (1, 11)];
        let (head, tail) = feed.split_at(4);

        let mut cont = MergeOp::new(2, 0, vec![0, 0]);
        let mut cont_out = Vec::new();
        for &(p, v) in &feed {
            cont.push(p, tup(v), &mut cont_out);
        }
        cont.finish(&mut cont_out);

        let mut first = MergeOp::new(2, 0, vec![0, 0]);
        let mut split_out = Vec::new();
        for &(p, v) in head {
            first.push(p, tup(v), &mut split_out);
        }
        assert!(first.buffered() > 0, "cut point holds buffered tuples");
        let mut w = SnapWriter::new();
        Operator::snapshot(&first, &mut w);
        let sealed = w.seal();

        let mut second = MergeOp::new(2, 0, vec![0, 0]);
        let mut r = SnapReader::open(&sealed).expect("open");
        Operator::restore(&mut second, &mut r).expect("restore");
        r.finish().expect("payload fully consumed");
        assert_eq!(second.buffered(), first.buffered());
        assert_eq!(second.starved, first.starved);
        for &(p, v) in tail {
            second.push(p, tup(v), &mut split_out);
        }
        second.finish(&mut split_out);

        assert_eq!(vals(&cont_out), vals(&split_out), "same tuples in the same order");
        assert_eq!(second.peak_buffered, cont.peak_buffered);

        // An input-count mismatch is rejected.
        let mut three = MergeOp::new(3, 0, vec![0, 0, 0]);
        let mut r = SnapReader::open(&sealed).expect("open");
        assert!(Operator::restore(&mut three, &mut r).is_err());
    }
}
