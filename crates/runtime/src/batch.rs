//! Columnar (structure-of-arrays) batches for the HFTA hot path.
//!
//! The batched transport (DESIGN §9) amortizes channel crossings but still
//! moves row [`Tuple`]s: every operator touches every field of every tuple
//! through a `Box<[Value]>` indirection. A [`ColumnBatch`] stores the same
//! batch as one typed vector per schema column plus an optional *selection
//! vector*, so hot operators (filter, project, aggregate, router) run
//! tight per-column loops over primitive slices with no per-tuple `Value`
//! boxing, and filters "delete" rows by rewriting the selection vector
//! without moving data.
//!
//! Row↔column boundary rules (DESIGN §13): columns are produced at the
//! capture-loop edge, flow through single-input chain operators that
//! declare [`col_capable`](crate::ops::Operator::col_capable), and convert
//! back to rows at every consumer that needs them — merge and join roots,
//! subscriptions, and any operator without a columnar override. A batch of
//! rows and the same batch converted through columns are observably
//! identical; `batch_size == 1` and the synchronous engine never use
//! columns at all.
//!
//! Punctuation: the transport's batcher flushes immediately on
//! punctuation, so a shipped batch carries at most one token, always last.
//! A columnar batch therefore carries an `Option<Punct>` *rider* instead
//! of interleaving token items with rows.

use crate::expr::FieldSource;
use crate::punct::Punct;
use crate::tuple::{StreamItem, Tuple};
use crate::value::Value;
use bytes::Bytes;

/// One typed column. A stream column whose values are not uniformly typed
/// (never produced by analyzer output, but possible through UDFs)
/// degrades to the boxed `Val` representation.
#[derive(Debug, Clone)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>),
    /// Unsigned integers.
    UInt(Vec<u64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// IPv4 addresses.
    Ip(Vec<u32>),
    /// Byte strings (shared capture buffers; cloning bumps a refcount).
    Str(Vec<Bytes>),
    /// Mixed-type fallback.
    Val(Vec<Value>),
}

impl Column {
    /// Physical row count.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::UInt(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Ip(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Val(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at physical row `i`, boxed.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[i]),
            Column::UInt(v) => Value::UInt(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Ip(v) => Value::Ip(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
            Column::Val(v) => v[i].clone(),
        }
    }

    /// An empty column of the same type as `v`.
    fn for_value(v: &Value) -> Column {
        match v {
            Value::Bool(_) => Column::Bool(Vec::new()),
            Value::UInt(_) => Column::UInt(Vec::new()),
            Value::Float(_) => Column::Float(Vec::new()),
            Value::Ip(_) => Column::Ip(Vec::new()),
            Value::Str(_) => Column::Str(Vec::new()),
        }
    }

    /// Append `v`, degrading to `Val` on a type mismatch.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (Column::Bool(c), Value::Bool(b)) => c.push(b),
            (Column::UInt(c), Value::UInt(u)) => c.push(u),
            (Column::Float(c), Value::Float(f)) => c.push(f),
            (Column::Ip(c), Value::Ip(ip)) => c.push(ip),
            (Column::Str(c), Value::Str(s)) => c.push(s),
            (Column::Val(c), v) => c.push(v),
            (_, v) => {
                self.degrade();
                self.push(v);
            }
        }
    }

    /// Rewrite in place as a boxed `Val` column.
    fn degrade(&mut self) {
        let vals: Vec<Value> = (0..self.len()).map(|i| self.get(i)).collect();
        *self = Column::Val(vals);
    }

    /// A column of `n` copies of `v`.
    pub fn broadcast(v: &Value, n: usize) -> Column {
        match v {
            Value::Bool(b) => Column::Bool(vec![*b; n]),
            Value::UInt(u) => Column::UInt(vec![*u; n]),
            Value::Float(f) => Column::Float(vec![*f; n]),
            Value::Ip(ip) => Column::Ip(vec![*ip; n]),
            Value::Str(s) => Column::Str(vec![s.clone(); n]),
        }
    }

    /// Gather physical rows `sel` into a new column of the same type.
    pub fn gather_rows(&self, sel: &[u32]) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::UInt(v) => Column::UInt(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Ip(v) => Column::Ip(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(v) => Column::Str(sel.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Val(v) => Column::Val(sel.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }
}

/// A batch of tuples in columnar layout: one [`Column`] per schema field,
/// all of equal physical length, plus an optional selection vector of
/// physical row indices (strictly increasing) naming the *live* rows.
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    cols: Vec<Column>,
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// Build from columns of equal length (no selection).
    ///
    /// # Panics
    /// Panics if the columns' lengths differ.
    pub fn from_columns(cols: Vec<Column>) -> ColumnBatch {
        let rows = cols.first().map_or(0, Column::len);
        assert!(cols.iter().all(|c| c.len() == rows), "ragged columns");
        ColumnBatch { cols, rows, sel: None }
    }

    /// Convert a slice of row tuples (all of one schema).
    pub fn from_tuples(tuples: &[Tuple]) -> ColumnBatch {
        let mut b = ColBuilder::new();
        for t in tuples {
            b.push_tuple(t);
        }
        b.finish()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of *live* (selected) rows.
    pub fn n_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    /// Whether no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// The selection vector, if any (physical indices, increasing).
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Column `i` (physical layout — index through the selection).
    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// Physical index of live row `row`.
    #[inline]
    pub fn phys(&self, row: usize) -> usize {
        match &self.sel {
            Some(s) => s[row] as usize,
            None => row,
        }
    }

    /// The value of column `col` at live row `row`, boxed.
    #[inline]
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.cols[col].get(self.phys(row))
    }

    /// Narrow the batch to the live rows named by `keep` (indices into
    /// the current *live* view, strictly increasing) — a filter pass.
    pub fn narrow(mut self, keep: Vec<u32>) -> ColumnBatch {
        let sel = match &self.sel {
            Some(s) => keep.into_iter().map(|i| s[i as usize]).collect(),
            None => keep,
        };
        self.sel = Some(sel);
        self
    }

    /// Materialize column `i` over the live rows as an owned column.
    pub fn gather(&self, i: usize) -> Column {
        match &self.sel {
            Some(s) => self.cols[i].gather_rows(s),
            None => self.cols[i].clone(),
        }
    }

    /// Live row `row` as a row tuple.
    pub fn row_tuple(&self, row: usize) -> Tuple {
        let p = self.phys(row);
        Tuple::new((0..self.cols.len()).map(|c| self.cols[c].get(p)).collect())
    }

    /// Convert back to row items, appending the punctuation rider last.
    pub fn into_items(self, punct: Option<Punct>) -> Vec<StreamItem> {
        let n = self.n_rows();
        let mut items = Vec::with_capacity(n + punct.is_some() as usize);
        for r in 0..n {
            items.push(StreamItem::Tuple(self.row_tuple(r)));
        }
        if let Some(p) = punct {
            items.push(StreamItem::Punct(p));
        }
        items
    }
}

/// One live row of a [`ColumnBatch`] viewed as an expression input — the
/// row-at-a-time fallback for programs the vector kernels cannot run.
pub struct RowView<'a> {
    batch: &'a ColumnBatch,
    row: usize,
}

impl<'a> RowView<'a> {
    /// View live row `row` of `batch`.
    pub fn new(batch: &'a ColumnBatch, row: usize) -> RowView<'a> {
        RowView { batch, row }
    }
}

impl FieldSource for RowView<'_> {
    #[inline]
    fn field(&self, idx: usize) -> Option<Value> {
        Some(self.batch.value_at(idx, self.row))
    }
}

/// Incremental columnar batch builder: column types latch from the first
/// row; later mismatches degrade the column to boxed values.
#[derive(Debug, Default)]
pub struct ColBuilder {
    cols: Vec<Column>,
    rows: usize,
}

impl ColBuilder {
    /// An empty builder; the first row fixes arity and column types.
    pub fn new() -> ColBuilder {
        ColBuilder::default()
    }

    /// Buffered row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn ensure_cols(&mut self, first: &mut dyn Iterator<Item = Value>) {
        debug_assert!(self.cols.is_empty() && self.rows == 0);
        for v in first {
            let mut c = Column::for_value(&v);
            c.push(v);
            self.cols.push(c);
        }
        self.rows = 1;
    }

    /// Append one row of values.
    ///
    /// # Panics
    /// Panics (debug) if the arity differs from the first row — streams
    /// have a fixed schema.
    pub fn push_values<I: IntoIterator<Item = Value>>(&mut self, vals: I) {
        let mut it = vals.into_iter();
        if self.cols.is_empty() && self.rows == 0 {
            self.ensure_cols(&mut it);
            return;
        }
        let mut n = 0;
        for (i, v) in it.enumerate() {
            self.cols[i].push(v);
            n += 1;
        }
        debug_assert_eq!(n, self.cols.len(), "row arity changed mid-stream");
        self.rows += 1;
    }

    /// Append a row tuple.
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_values(t.values().iter().cloned());
    }

    /// Append live row `row` of another batch, column-typed copy.
    pub fn push_row(&mut self, src: &ColumnBatch, row: usize) {
        let p = src.phys(row);
        if self.cols.is_empty() && self.rows == 0 {
            let mut vals = (0..src.n_cols()).map(|c| src.col(c).get(p));
            self.ensure_cols(&mut vals);
            return;
        }
        debug_assert_eq!(self.cols.len(), src.n_cols(), "row arity changed mid-stream");
        for (dst, sc) in self.cols.iter_mut().zip(src.cols.iter()) {
            match (dst, sc) {
                (Column::Bool(d), Column::Bool(s)) => d.push(s[p]),
                (Column::UInt(d), Column::UInt(s)) => d.push(s[p]),
                (Column::Float(d), Column::Float(s)) => d.push(s[p]),
                (Column::Ip(d), Column::Ip(s)) => d.push(s[p]),
                (Column::Str(d), Column::Str(s)) => d.push(s[p].clone()),
                (d, s) => d.push(s.get(p)),
            }
        }
        self.rows += 1;
    }

    /// Take the buffered rows as a batch, resetting the builder (column
    /// types latch again from the next row).
    pub fn finish(&mut self) -> ColumnBatch {
        let cols = std::mem::take(&mut self.cols);
        let rows = std::mem::replace(&mut self.rows, 0);
        ColumnBatch { cols, rows, sel: None }
    }
}

/// The result of pushing a columnar batch through one operator: either a
/// columnar batch (with its punctuation rider) that can continue on the
/// columnar path, or materialized row items (operators whose output is
/// row-shaped, and the row-fallback default).
#[derive(Debug)]
pub enum ColStep {
    /// Columnar output: live rows plus at most one trailing token.
    Cols(ColumnBatch, Option<Punct>),
    /// Row output, already in emission order.
    Rows(Vec<StreamItem>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn round_trip_preserves_rows_and_types() {
        let rows = vec![
            tup(vec![Value::UInt(1), Value::Ip(7), Value::Str(Bytes::from_static(b"a"))]),
            tup(vec![Value::UInt(2), Value::Ip(8), Value::Str(Bytes::from_static(b"bb"))]),
        ];
        let cb = ColumnBatch::from_tuples(&rows);
        assert_eq!(cb.n_rows(), 2);
        assert_eq!(cb.n_cols(), 3);
        assert!(matches!(cb.col(1), Column::Ip(_)));
        let items = cb.into_items(Some(Punct::new(0, Value::UInt(9))));
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_tuple().unwrap(), &rows[0]);
        assert_eq!(items[1].as_tuple().unwrap(), &rows[1]);
        assert!(items[2].is_punct());
    }

    #[test]
    fn selection_narrows_and_composes() {
        let rows: Vec<Tuple> = (0..6u64).map(|i| tup(vec![Value::UInt(i)])).collect();
        let cb = ColumnBatch::from_tuples(&rows);
        // Keep even rows, then keep the last of those.
        let cb = cb.narrow(vec![0, 2, 4]);
        assert_eq!(cb.n_rows(), 3);
        assert_eq!(cb.value_at(0, 1), Value::UInt(2));
        let cb = cb.narrow(vec![2]);
        assert_eq!(cb.n_rows(), 1);
        assert_eq!(cb.value_at(0, 0), Value::UInt(4));
        let items = cb.into_items(None);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].as_tuple().unwrap().get(0), &Value::UInt(4));
    }

    #[test]
    fn gather_respects_selection() {
        let rows: Vec<Tuple> = (0..4u64).map(|i| tup(vec![Value::UInt(i * 10)])).collect();
        let cb = ColumnBatch::from_tuples(&rows).narrow(vec![1, 3]);
        match cb.gather(0) {
            Column::UInt(v) => assert_eq!(v, vec![10, 30]),
            c => panic!("wrong column type {c:?}"),
        }
    }

    #[test]
    fn mixed_types_degrade_to_val() {
        let rows = vec![tup(vec![Value::UInt(1)]), tup(vec![Value::Float(2.5)])];
        let cb = ColumnBatch::from_tuples(&rows);
        assert!(matches!(cb.col(0), Column::Val(_)));
        assert_eq!(cb.value_at(0, 0), Value::UInt(1));
        assert_eq!(cb.value_at(0, 1), Value::Float(2.5));
    }

    #[test]
    fn builder_push_row_copies_typed() {
        let src = ColumnBatch::from_tuples(&[
            tup(vec![Value::UInt(1), Value::Str(Bytes::from_static(b"x"))]),
            tup(vec![Value::UInt(2), Value::Str(Bytes::from_static(b"y"))]),
        ])
        .narrow(vec![1]);
        let mut b = ColBuilder::new();
        b.push_row(&src, 0);
        let out = b.finish();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.value_at(0, 0), Value::UInt(2));
        assert_eq!(out.value_at(1, 0), Value::Str(Bytes::from_static(b"y")));
    }

    #[test]
    fn row_view_reads_through_selection() {
        let cb = ColumnBatch::from_tuples(&[
            tup(vec![Value::UInt(5)]),
            tup(vec![Value::UInt(6)]),
        ])
        .narrow(vec![1]);
        use crate::expr::FieldSource;
        let rv = RowView::new(&cb, 0);
        assert_eq!(rv.field(0), Some(Value::UInt(6)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let cb = ColBuilder::new().finish();
        assert!(cb.is_empty());
        assert_eq!(cb.n_cols(), 0);
        let items = cb.into_items(Some(Punct::new(0, Value::UInt(1))));
        assert_eq!(items.len(), 1);
        assert!(items[0].is_punct());
    }
}
