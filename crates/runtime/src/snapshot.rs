//! Versioned, checksummed operator-state snapshots.
//!
//! Hand-rolled binary codec in the style of `server/wire.rs` (hermetic by
//! constraint: no serde). A sealed snapshot is
//!
//! ```text
//! +------+---------+---------+----------------+
//! | GSSN | ver: u8 | payload | fnv1a64: u64 BE|
//! +------+---------+---------+----------------+
//! ```
//!
//! where the checksum covers everything before it (magic, version,
//! payload). [`open`] verifies the envelope *before* any payload field is
//! decoded, so a torn write, a truncated file, or a flipped bit is
//! reported as a [`SnapError`] — never a panic, never silently-wrong
//! operator state. All reads are bounds-checked; declared lengths are
//! validated against the remaining buffer before any allocation, so a
//! hostile 4 GiB count is rejected without reserving a byte.

use crate::tuple::Tuple;
use crate::value::Value;
use bytes::Bytes;
use std::fmt;

/// Snapshot envelope magic.
pub const MAGIC: [u8; 4] = *b"GSSN";
/// Current snapshot format version.
pub const VERSION: u8 = 1;

// Value tags (same assignments as the wire protocol, redeclared here so
// the snapshot format is self-contained and versioned independently).
const TAG_BOOL: u8 = 0;
const TAG_UINT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_IP: u8 = 3;
const TAG_STR: u8 = 4;

/// Everything that can go wrong opening or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope's version byte is not one this build understands.
    Version(u8),
    /// The buffer ends before a declared field does.
    Truncated,
    /// The trailing checksum does not match the content (torn or
    /// corrupted snapshot).
    BadChecksum,
    /// Structurally invalid content (unknown tag, bad UTF-8, an
    /// impossible count...).
    Protocol(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::Truncated => write!(f, "truncated snapshot"),
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapError::Protocol(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// `Protocol` constructor shorthand.
pub fn proto(msg: impl Into<String>) -> SnapError {
    SnapError::Protocol(msg.into())
}

/// 64-bit FNV-1a over a byte slice (same hash family the stats registry
/// and the property-test harness already use; no external crates).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seal a payload into a versioned, checksummed envelope.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 1 + payload.len() + 8);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.extend_from_slice(payload);
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_be_bytes());
    buf
}

/// Verify a sealed envelope and return the payload slice. Checks magic,
/// version, and the trailing checksum — in that order, so the error names
/// the outermost damage.
pub fn open(bytes: &[u8]) -> Result<&[u8], SnapError> {
    // Envelope floor: magic + version + checksum.
    if bytes.len() < 4 + 1 + 8 {
        if bytes.len() >= 4 && bytes[..4] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        return Err(SnapError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(SnapError::Version(bytes[4]));
    }
    let body = &bytes[..bytes.len() - 8];
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&bytes[bytes.len() - 8..]);
    if fnv1a64(body) != u64::from_be_bytes(sum8) {
        return Err(SnapError::BadChecksum);
    }
    Ok(&body[5..])
}

/// Appends snapshot fields to a growing payload buffer. Integers are
/// big-endian; byte strings are `u32 BE length + bytes`; values are a tag
/// byte plus the tag-specific payload.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Fresh empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far (payload only; not yet sealed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seal the accumulated payload into an envelope.
    pub fn seal(self) -> Vec<u8> {
        seal(&self.buf)
    }

    /// The raw (unsealed) payload, for nesting one section inside another.
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// A big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// A big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// A usize, widened to u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// An f64 via its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// `Option<u64>` as presence byte + value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// One tagged value.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Bool(b) => {
                self.put_u8(TAG_BOOL);
                self.put_bool(*b);
            }
            Value::UInt(u) => {
                self.put_u8(TAG_UINT);
                self.put_u64(*u);
            }
            Value::Float(f) => {
                self.put_u8(TAG_FLOAT);
                self.put_f64(*f);
            }
            Value::Ip(ip) => {
                self.put_u8(TAG_IP);
                self.put_u32(*ip);
            }
            Value::Str(s) => {
                self.put_u8(TAG_STR);
                self.put_bytes(s);
            }
        }
    }

    /// A value slice as `u32 count` + values (group keys, tuple fields).
    pub fn put_values(&mut self, vals: &[Value]) {
        self.put_u32(vals.len() as u32);
        for v in vals {
            self.put_value(v);
        }
    }

    /// One tuple (its field list).
    pub fn put_tuple(&mut self, t: &Tuple) {
        self.put_values(t.values());
    }
}

/// Bounds-checked reader over a snapshot payload. Every accessor returns
/// [`SnapError::Truncated`] instead of panicking when the buffer runs
/// out, and declared element counts are validated against the remaining
/// length before any `Vec` is reserved.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read over an already-opened payload.
    pub fn new(payload: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf: payload, pos: 0 }
    }

    /// Open a sealed envelope and read over its payload.
    pub fn open(sealed: &'a [u8]) -> Result<SnapReader<'a>, SnapError> {
        Ok(SnapReader::new(open(sealed)?))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Require that the payload was fully consumed (trailing garbage in a
    /// checksummed snapshot means a format mismatch, not line noise).
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(proto(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// A bool byte; anything but 0/1 is a protocol error.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(proto(format!("bad bool byte {b}"))),
        }
    }

    /// A big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_be_bytes(b))
    }

    /// A big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }

    /// A u64 narrowed to usize (protocol error on overflow).
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| proto(format!("count {v} exceeds usize")))
    }

    /// An f64 from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// An `Option<u64>` written by [`SnapWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            b => Err(proto(format!("bad option byte {b}"))),
        }
    }

    /// An element count that must be plausible: each element takes at
    /// least `min_elem_bytes`, so a count larger than the remaining
    /// buffer divided by that floor is rejected before any allocation.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(proto(format!("count {n} exceeds remaining payload")));
        }
        Ok(n)
    }

    /// The next big-endian u32 without consuming it — lets a caller
    /// inspect a declared length (and reject it against a size cap)
    /// before committing to the read.
    pub fn peek_u32(&self) -> Option<u32> {
        let s = self.buf.get(self.pos..self.pos + 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_be_bytes(b))
    }

    /// Length-prefixed byte string (shares no buffers; snapshots are
    /// short-lived).
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| proto("bad utf-8"))
    }

    /// One tagged value.
    pub fn get_value(&mut self) -> Result<Value, SnapError> {
        match self.get_u8()? {
            TAG_BOOL => Ok(Value::Bool(self.get_bool()?)),
            TAG_UINT => Ok(Value::UInt(self.get_u64()?)),
            TAG_FLOAT => Ok(Value::Float(self.get_f64()?)),
            TAG_IP => Ok(Value::Ip(self.get_u32()?)),
            TAG_STR => Ok(Value::Str(Bytes::from(self.get_bytes()?))),
            t => Err(proto(format!("bad value tag {t}"))),
        }
    }

    /// A `u32 count` + values list.
    pub fn get_values(&mut self) -> Result<Vec<Value>, SnapError> {
        let n = self.get_count(2)?; // tag byte + >=1 payload byte
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.get_value()?);
        }
        Ok(vals)
    }

    /// One tuple.
    pub fn get_tuple(&mut self) -> Result<Tuple, SnapError> {
        Ok(Tuple::new(self.get_values()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-2.5);
        w.put_opt_u64(Some(42));
        w.put_opt_u64(None);
        w.put_str("gigascope");
        w.put_value(&Value::Ip(0x0a00_0001));
        w.put_tuple(&Tuple::new(vec![
            Value::Bool(false),
            Value::UInt(9),
            Value::Float(1.25),
            Value::Str(Bytes::from_static(b"payload")),
        ]));
        w.into_payload()
    }

    #[test]
    fn round_trip_all_field_kinds() {
        let sealed = seal(&sample_payload());
        let mut r = SnapReader::open(&sealed).expect("open");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert_eq!(r.get_opt_u64().unwrap(), Some(42));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "gigascope");
        assert_eq!(r.get_value().unwrap(), Value::Ip(0x0a00_0001));
        let t = r.get_tuple().unwrap();
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(3), &Value::Str(Bytes::from_static(b"payload")));
        r.finish().expect("fully consumed");
    }

    #[test]
    fn every_truncation_prefix_is_rejected() {
        let sealed = seal(&sample_payload());
        for cut in 0..sealed.len() {
            let err = open(&sealed[..cut]).expect_err("prefix must not open");
            assert!(
                matches!(err, SnapError::Truncated | SnapError::BadChecksum),
                "cut {cut}: unexpected error {err:?}"
            );
        }
        // The full buffer still opens.
        assert!(open(&sealed).is_ok());
    }

    #[test]
    fn single_bit_corruption_is_detected() {
        let sealed = seal(&sample_payload());
        for at in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[at] ^= 0x01;
            assert!(
                open(&bad).is_err(),
                "flipped bit at byte {at} must not open cleanly"
            );
        }
    }

    #[test]
    fn version_and_magic_mismatch() {
        let sealed = seal(b"abc");
        let mut wrong_ver = sealed.clone();
        wrong_ver[4] = VERSION + 1;
        assert_eq!(open(&wrong_ver), Err(SnapError::Version(VERSION + 1)));
        let mut wrong_magic = sealed;
        wrong_magic[0] = b'X';
        assert_eq!(open(&wrong_magic), Err(SnapError::BadMagic));
        assert_eq!(open(b""), Err(SnapError::Truncated));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A declared 4-billion-element value list in a 16-byte payload.
        let mut w = SnapWriter::new();
        w.put_u32(u32::MAX);
        w.put_u64(0);
        let sealed = w.seal();
        let mut r = SnapReader::open(&sealed).expect("envelope is valid");
        assert!(matches!(r.get_values(), Err(SnapError::Protocol(_))));
        // Same for byte strings: length checked before take.
        let mut w = SnapWriter::new();
        w.put_u32(1_000_000);
        w.put_u8(1);
        let sealed = w.seal();
        let mut r = SnapReader::open(&sealed).expect("envelope is valid");
        assert_eq!(r.get_bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn empty_payload_seals_and_opens() {
        let sealed = seal(&[]);
        let r = SnapReader::open(&sealed).expect("open");
        assert!(r.is_done());
    }
}
