//! Runtime values.

use bytes::Bytes;
use gs_gsql::plan::Literal;
use gs_gsql::types::DataType;
use gs_packet::interp::FieldValue;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A runtime value. `Str` shares the capture buffer, so cloning a payload
/// value never copies packet bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// 64-bit float.
    Float(f64),
    /// IPv4 address.
    Ip(u32),
    /// Byte string.
    Str(Bytes),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::UInt(_) => DataType::UInt,
            Value::Float(_) => DataType::Float,
            Value::Ip(_) => DataType::Ip,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Interpret as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an unsigned integer.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Ip(v) => Some(u64::from(*v)),
            _ => None,
        }
    }

    /// Interpret as a float (widening uint).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interpret as bytes.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Str(b) => Some(b),
            _ => None,
        }
    }

    /// Total order used by min/max, ordered flushing, and sort-based
    /// operators. Values of different types order by type tag (operators
    /// never mix types on one attribute; this keeps the order total).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (UInt(a), UInt(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Ip(a), Ip(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (UInt(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), UInt(b)) => a.total_cmp(&(*b as f64)),
            _ => self.tag().cmp(&other.tag()),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::UInt(_) => 1,
            Value::Float(_) => 2,
            Value::Ip(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Convert a packet interpretation value.
    pub fn from_field(fv: FieldValue) -> Value {
        match fv {
            FieldValue::Bool(b) => Value::Bool(b),
            FieldValue::UInt(v) => Value::UInt(v),
            FieldValue::Ip(v) => Value::Ip(v),
            FieldValue::Str(b) => Value::Str(b),
        }
    }

    /// Convert a plan literal.
    pub fn from_literal(l: &Literal) -> Value {
        match l {
            Literal::Bool(b) => Value::Bool(*b),
            Literal::UInt(v) => Value::UInt(*v),
            Literal::Float(v) => Value::Float(*v),
            Literal::Str(s) => Value::Str(Bytes::copy_from_slice(s.as_bytes())),
            Literal::Ip(v) => Value::Ip(*v),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => b.hash(state),
            Value::UInt(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Ip(v) => {
                // Distinguish Ip from UInt of the same numeric value.
                state.write_u8(3);
                v.hash(state);
            }
            Value::Str(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ip(v) => write!(f, "{}", gs_packet::ip::fmt_ipv4(*v)),
            Value::Str(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "{s:?}"),
                Err(_) => write!(f, "<{} bytes>", b.len()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::UInt(5).as_uint(), Some(5));
        assert_eq!(Value::Ip(7).as_uint(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::UInt(2).as_float(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::UInt(2).as_bool(), None);
        assert!(Value::Str(Bytes::from_static(b"x")).as_bytes().is_some());
    }

    #[test]
    fn total_order_within_types() {
        assert_eq!(Value::UInt(1).total_cmp(&Value::UInt(2)), Ordering::Less);
        assert_eq!(
            Value::Str(Bytes::from_static(b"a")).total_cmp(&Value::Str(Bytes::from_static(b"b"))),
            Ordering::Less
        );
        assert_eq!(Value::Float(f64::NAN).total_cmp(&Value::Float(f64::NAN)), Ordering::Equal);
        assert_eq!(Value::UInt(3).total_cmp(&Value::Float(3.5)), Ordering::Less);
    }

    #[test]
    fn hash_distinguishes_ip_from_uint() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_ne!(h(&Value::Ip(5)), h(&Value::UInt(5)));
        assert_eq!(h(&Value::UInt(5)), h(&Value::UInt(5)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Ip(0x0a000001).to_string(), "10.0.0.1");
        assert_eq!(Value::UInt(9).to_string(), "9");
        assert_eq!(Value::Str(Bytes::from_static(b"hi")).to_string(), "\"hi\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from_field(FieldValue::UInt(4)), Value::UInt(4));
        assert_eq!(Value::from_field(FieldValue::Ip(4)), Value::Ip(4));
        assert_eq!(Value::from_literal(&Literal::Float(1.5)), Value::Float(1.5));
        assert_eq!(
            Value::from_literal(&Literal::Str("ab".into())),
            Value::Str(Bytes::from_static(b"ab"))
        );
    }
}
