//! Overload shedding policies.
//!
//! Paper §4, closing discussion: "we use a simple heuristic which is easy
//! to understand and implement: highly processed tuples (produced further
//! in the query chain) are more valuable than less-processed tuples,
//! because of the filters and aggregations that have been applied."
//!
//! A [`Shedder`] sits in front of an overloaded consumer holding a bounded
//! buffer of work items, each tagged with its *processing depth* (how far
//! along the query chain it has come). When the buffer is full the policy
//! decides what to drop.

use std::collections::VecDeque;

/// What to drop under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the arriving item (tail drop), regardless of value.
    TailDrop,
    /// Drop the buffered item with the *lowest* processing depth; the
    /// arriving item is dropped only if nothing shallower is buffered —
    /// the paper's heuristic.
    LeastProcessedFirst,
}

/// A bounded buffer with value-aware shedding.
///
/// ```
/// use gs_runtime::qos::{DropPolicy, Shedder};
///
/// let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
/// s.offer(0, "raw packet");
/// // A highly processed tuple evicts the raw one (the paper's heuristic).
/// assert!(s.offer(3, "joined result"));
/// assert_eq!(s.pop().unwrap().1, "joined result");
/// ```
#[derive(Debug)]
pub struct Shedder<T> {
    buf: VecDeque<(u32, T)>,
    capacity: usize,
    policy: DropPolicy,
    /// Items dropped, by their processing depth (index = depth, saturated
    /// at the vector's end).
    pub dropped_by_depth: Vec<u64>,
}

impl<T> Shedder<T> {
    /// Create a shedder with the given capacity and policy.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DropPolicy) -> Shedder<T> {
        assert!(capacity > 0, "shedder capacity must be positive");
        Shedder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            dropped_by_depth: vec![0; 8],
        }
    }

    fn count_drop(&mut self, depth: u32) {
        let i = (depth as usize).min(self.dropped_by_depth.len() - 1);
        self.dropped_by_depth[i] += 1;
    }

    /// Offer an item of the given processing depth. Returns `true` if the
    /// arriving item was kept (possibly at the cost of a buffered one).
    pub fn offer(&mut self, depth: u32, item: T) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push_back((depth, item));
            return true;
        }
        match self.policy {
            DropPolicy::TailDrop => {
                self.count_drop(depth);
                false
            }
            DropPolicy::LeastProcessedFirst => {
                // Find the shallowest buffered item.
                let (idx, &(min_depth, _)) = self
                    .buf
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (d, _))| *d)
                    .expect("buffer is full, hence non-empty");
                if min_depth < depth {
                    self.buf.remove(idx);
                    self.count_drop(min_depth);
                    self.buf.push_back((depth, item));
                    true
                } else {
                    self.count_drop(depth);
                    false
                }
            }
        }
    }

    /// Take the oldest buffered item.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        self.buf.pop_front()
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items dropped.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_depth.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_drop_ignores_value() {
        let mut s = Shedder::new(2, DropPolicy::TailDrop);
        assert!(s.offer(0, "a"));
        assert!(s.offer(0, "b"));
        assert!(!s.offer(9, "precious"));
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.pop().unwrap().1, "a");
    }

    #[test]
    fn least_processed_first_protects_deep_tuples() {
        let mut s = Shedder::new(2, DropPolicy::LeastProcessedFirst);
        s.offer(0, "raw1");
        s.offer(3, "agg");
        // A deeper item evicts the shallow one.
        assert!(s.offer(5, "joined"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped_by_depth[0], 1);
        // A shallow item cannot evict deeper ones.
        assert!(!s.offer(1, "raw2"));
        assert_eq!(s.dropped_by_depth[1], 1);
        let kept: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, v)| v)).collect();
        assert_eq!(kept, vec!["agg", "joined"]);
    }

    #[test]
    fn equal_depth_prefers_resident() {
        let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
        s.offer(2, "first");
        assert!(!s.offer(2, "second"), "ties keep the already-buffered item");
        assert_eq!(s.pop().unwrap().1, "first");
    }

    #[test]
    fn depth_counter_saturates() {
        let mut s = Shedder::new(1, DropPolicy::TailDrop);
        s.offer(0, ());
        s.offer(100, ());
        assert_eq!(*s.dropped_by_depth.last().unwrap(), 1);
    }
}
