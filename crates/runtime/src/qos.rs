//! Overload shedding policies.
//!
//! Paper §4, closing discussion: "we use a simple heuristic which is easy
//! to understand and implement: highly processed tuples (produced further
//! in the query chain) are more valuable than less-processed tuples,
//! because of the filters and aggregations that have been applied."
//!
//! A [`Shedder`] sits in front of an overloaded consumer holding a bounded
//! buffer of work items, each tagged with its *processing depth* (how far
//! along the query chain it has come). When the buffer is full the policy
//! decides what to drop.

use std::collections::VecDeque;

/// What to drop under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the arriving item (tail drop), regardless of value.
    TailDrop,
    /// Drop the buffered item with the *lowest* processing depth; the
    /// arriving item is dropped only if nothing shallower is buffered —
    /// the paper's heuristic.
    LeastProcessedFirst,
}

/// Outcome of one [`Shedder::offer`]: what, if anything, was dropped.
///
/// Callers that account for shed work (the manager counts every dropped
/// batch and its tuples) get the victim back instead of a bare boolean.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer<T> {
    /// The buffer had room; nothing was dropped.
    Accepted,
    /// The arriving item was buffered at the cost of a shallower
    /// buffered item, returned here with its depth.
    AcceptedEvicting(u32, T),
    /// The buffer was full and the policy dropped the arriving item.
    Rejected(u32, T),
}

impl<T> Offer<T> {
    /// Whether the arriving item was kept.
    pub fn kept(&self) -> bool {
        !matches!(self, Offer::Rejected(..))
    }

    /// The dropped item (arriving or evicted), if any.
    pub fn dropped(self) -> Option<(u32, T)> {
        match self {
            Offer::Accepted => None,
            Offer::AcceptedEvicting(d, t) | Offer::Rejected(d, t) => Some((d, t)),
        }
    }
}

/// A bounded buffer with value-aware shedding.
///
/// ```
/// use gs_runtime::qos::{DropPolicy, Shedder};
///
/// let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
/// s.offer(0, "raw packet");
/// // A highly processed tuple evicts the raw one (the paper's heuristic).
/// assert!(s.offer(3, "joined result").kept());
/// assert_eq!(s.pop().unwrap().1, "joined result");
/// ```
#[derive(Debug)]
pub struct Shedder<T> {
    buf: VecDeque<(u32, T)>,
    capacity: usize,
    policy: DropPolicy,
    /// Items dropped, by their processing depth (index = depth). Grows on
    /// demand so deep query chains are accounted at their true depth
    /// rather than saturated into the last bucket; capped at
    /// [`MAX_DEPTH_BUCKETS`] as a guard against absurd depth values.
    pub dropped_by_depth: Vec<u64>,
}

/// Upper bound on [`Shedder::dropped_by_depth`] growth: depths at or past
/// this are charged to the final bucket. No realistic query chain comes
/// anywhere near it; it only bounds allocation against corrupt depths.
pub const MAX_DEPTH_BUCKETS: usize = 1 << 16;

impl<T> Shedder<T> {
    /// Create a shedder with the given capacity and policy.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: DropPolicy) -> Shedder<T> {
        assert!(capacity > 0, "shedder capacity must be positive");
        Shedder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            dropped_by_depth: vec![0; 8],
        }
    }

    fn count_drop(&mut self, depth: u32) {
        let i = (depth as usize).min(MAX_DEPTH_BUCKETS - 1);
        if i >= self.dropped_by_depth.len() {
            self.dropped_by_depth.resize(i + 1, 0);
        }
        self.dropped_by_depth[i] += 1;
    }

    /// Offer an item of the given processing depth. When the buffer is
    /// full the [`DropPolicy`] picks a victim, returned in the
    /// [`Offer`] so callers can account for (or inspect) what was shed.
    pub fn offer(&mut self, depth: u32, item: T) -> Offer<T> {
        if self.buf.len() < self.capacity {
            self.buf.push_back((depth, item));
            return Offer::Accepted;
        }
        match self.policy {
            DropPolicy::TailDrop => {
                self.count_drop(depth);
                Offer::Rejected(depth, item)
            }
            DropPolicy::LeastProcessedFirst => {
                // Find the shallowest buffered item.
                let (idx, &(min_depth, _)) = self
                    .buf
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (d, _))| *d)
                    .expect("buffer is full, hence non-empty");
                if min_depth < depth {
                    let (d, evicted) = self.buf.remove(idx).expect("index from enumerate");
                    self.count_drop(d);
                    self.buf.push_back((depth, item));
                    Offer::AcceptedEvicting(d, evicted)
                } else {
                    self.count_drop(depth);
                    Offer::Rejected(depth, item)
                }
            }
        }
    }

    /// Buffer an item unconditionally, bypassing capacity and policy.
    /// For control messages (stream-close markers) that must never be
    /// shed: dropping one would wedge the consumer waiting on it. The
    /// transient overshoot is bounded by the number of producers.
    pub fn force(&mut self, depth: u32, item: T) {
        self.buf.push_back((depth, item));
    }

    /// Take the oldest buffered item.
    pub fn pop(&mut self) -> Option<(u32, T)> {
        self.buf.pop_front()
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items dropped.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_by_depth.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `Shedder` doc example, as a plain unit test so `cargo test`
    /// without doctests (and future refactors of the example) still
    /// cover it.
    #[test]
    fn doc_example_offer() {
        let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
        s.offer(0, "raw packet");
        // A highly processed tuple evicts the raw one (the paper's heuristic).
        assert!(s.offer(3, "joined result").kept());
        assert_eq!(s.pop().unwrap().1, "joined result");
    }

    #[test]
    fn tail_drop_ignores_value() {
        let mut s = Shedder::new(2, DropPolicy::TailDrop);
        assert!(s.offer(0, "a").kept());
        assert!(s.offer(0, "b").kept());
        assert_eq!(s.offer(9, "precious"), Offer::Rejected(9, "precious"));
        assert_eq!(s.total_dropped(), 1);
        assert_eq!(s.pop().unwrap().1, "a");
    }

    #[test]
    fn least_processed_first_protects_deep_tuples() {
        let mut s = Shedder::new(2, DropPolicy::LeastProcessedFirst);
        s.offer(0, "raw1");
        s.offer(3, "agg");
        // A deeper item evicts the shallow one — and the victim comes back.
        assert_eq!(s.offer(5, "joined"), Offer::AcceptedEvicting(0, "raw1"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped_by_depth[0], 1);
        // A shallow item cannot evict deeper ones.
        assert_eq!(s.offer(1, "raw2"), Offer::Rejected(1, "raw2"));
        assert_eq!(s.dropped_by_depth[1], 1);
        let kept: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, v)| v)).collect();
        assert_eq!(kept, vec!["agg", "joined"]);
    }

    /// On an equal-depth tie, LeastProcessedFirst behaves as tail drop:
    /// the resident item is kept, the arriving one is rejected, and the
    /// drop is charged to the arriving item's depth.
    #[test]
    fn equal_depth_ties_tail_drop_the_arrival() {
        let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
        s.offer(2, "first");
        assert_eq!(
            s.offer(2, "second"),
            Offer::Rejected(2, "second"),
            "ties keep the already-buffered item"
        );
        assert_eq!(s.dropped_by_depth[2], 1, "the drop is charged at the tie depth");
        assert_eq!(s.len(), 1, "nothing was evicted");
        assert_eq!(s.pop().unwrap().1, "first");
    }

    /// Regression: depths past the initial 8 buckets used to saturate
    /// into bucket 7, conflating every deep drop. The vector now grows so
    /// each depth keeps its own bucket.
    #[test]
    fn depth_counter_grows_past_initial_buckets() {
        let mut s = Shedder::new(1, DropPolicy::TailDrop);
        s.offer(0, ());
        s.offer(8, ());
        s.offer(100, ());
        assert_eq!(s.dropped_by_depth[8], 1, "depth 8 gets its own bucket");
        assert_eq!(s.dropped_by_depth[100], 1, "depth 100 gets its own bucket");
        assert_eq!(s.dropped_by_depth.len(), 101);
        assert_eq!(s.total_dropped(), 2);
    }

    /// Growth is capped: an absurd depth charges the final bucket rather
    /// than allocating gigabytes of counters.
    #[test]
    fn depth_counter_caps_growth() {
        let mut s = Shedder::new(1, DropPolicy::TailDrop);
        s.offer(0, ());
        s.offer(u32::MAX, ());
        assert_eq!(s.dropped_by_depth.len(), MAX_DEPTH_BUCKETS);
        assert_eq!(*s.dropped_by_depth.last().unwrap(), 1);
    }

    #[test]
    fn force_bypasses_capacity_and_policy() {
        let mut s = Shedder::new(1, DropPolicy::LeastProcessedFirst);
        assert!(s.offer(5, "deep").kept());
        s.force(0, "close marker");
        assert_eq!(s.len(), 2, "force overshoots capacity");
        assert_eq!(s.total_dropped(), 0);
        assert_eq!(s.pop().unwrap().1, "deep");
        assert_eq!(s.pop().unwrap().1, "close marker");
    }
}
