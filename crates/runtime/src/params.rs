//! Query-parameter bindings.
//!
//! "Queries can accept query parameters, which are similar to constants
//! but which are specified at query instantiation time and which can be
//! changed on-the-fly. The RTS can execute multiple instances of the same
//! LFTA, each with different parameters." (paper §3)

use crate::value::Value;
use crate::RuntimeError;
use gs_gsql::plan::Literal;
use gs_gsql::types::DataType;
use std::collections::HashMap;

/// A set of parameter bindings for one query instantiation.
#[derive(Debug, Clone, Default)]
pub struct ParamBindings {
    vals: HashMap<String, Value>,
}

impl ParamBindings {
    /// Empty bindings.
    pub fn new() -> ParamBindings {
        ParamBindings::default()
    }

    /// Bind `name` to a value (replacing any previous binding).
    pub fn set(&mut self, name: impl Into<String>, v: Value) -> &mut Self {
        self.vals.insert(name.into(), v);
        self
    }

    /// Builder-style bind.
    pub fn with(mut self, name: impl Into<String>, v: Value) -> Self {
        self.set(name, v);
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vals.get(name)
    }

    /// Check that every `(name, type)` requirement is satisfied.
    pub fn validate(&self, required: &[(String, DataType)]) -> Result<(), RuntimeError> {
        for (name, ty) in required {
            match self.vals.get(name) {
                None => {
                    return Err(RuntimeError::msg(format!("missing query parameter `${name}`")))
                }
                Some(v) => {
                    let ok = v.ty() == *ty
                        || (v.ty() == DataType::UInt && *ty == DataType::Float);
                    if !ok {
                        return Err(RuntimeError::msg(format!(
                            "parameter `${name}` must be {ty}, got {}",
                            v.ty()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert bindings into plan literals for BPF re-compilation at
    /// instantiation (only representable values appear).
    pub fn as_literals(&self) -> HashMap<String, Literal> {
        self.vals
            .iter()
            .map(|(k, v)| {
                let lit = match v {
                    Value::Bool(b) => Literal::Bool(*b),
                    Value::UInt(u) => Literal::UInt(*u),
                    Value::Float(f) => Literal::Float(*f),
                    Value::Ip(ip) => Literal::Ip(*ip),
                    Value::Str(s) => {
                        Literal::Str(String::from_utf8_lossy(s).into_owned())
                    }
                };
                (k.clone(), lit)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_overwrite() {
        let mut p = ParamBindings::new();
        p.set("port", Value::UInt(80));
        assert_eq!(p.get("port"), Some(&Value::UInt(80)));
        p.set("port", Value::UInt(443));
        assert_eq!(p.get("port"), Some(&Value::UInt(443)));
    }

    #[test]
    fn validate_checks_presence_and_type() {
        let p = ParamBindings::new().with("port", Value::UInt(80));
        assert!(p.validate(&[("port".into(), DataType::UInt)]).is_ok());
        assert!(p.validate(&[("other".into(), DataType::UInt)]).is_err());
        assert!(p.validate(&[("port".into(), DataType::Str)]).is_err());
        // UInt widens to Float.
        assert!(p.validate(&[("port".into(), DataType::Float)]).is_ok());
    }

    #[test]
    fn literals_roundtrip() {
        let p = ParamBindings::new()
            .with("a", Value::UInt(1))
            .with("b", Value::Ip(7))
            .with("c", Value::Str(bytes::Bytes::from_static(b"x")));
        let lits = p.as_literals();
        assert_eq!(lits["a"], Literal::UInt(1));
        assert_eq!(lits["b"], Literal::Ip(7));
        assert_eq!(lits["c"], Literal::Str("x".into()));
    }
}
