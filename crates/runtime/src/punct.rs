//! Ordering-update tokens (punctuation).
//!
//! Paper §3, "Unblocking Operators": "the presence of a tuple allows us to
//! advance the window over which a query operates, but we do not get this
//! information in the absence of a tuple. To overcome this problem, we use
//! a mechanism similar to the one proposed by [Tucker & Maier] of
//! injecting ordering update tokens into the query stream. These tokens
//! contain lower bounds on the ordering attributes in the stream."
//!
//! A [`Punct`] promises that no later tuple on this stream will carry a
//! value of column `col` below `low`. Sources emit them periodically or on
//! demand (when a downstream merge/join reports that it might be blocked).

use crate::value::Value;

/// An ordering-update token: a lower bound on an ordered attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Punct {
    /// Index of the ordered column in the stream's schema.
    pub col: usize,
    /// Lower bound: every future tuple `t` satisfies `t[col] >= low`.
    pub low: Value,
}

impl Punct {
    /// Build a token.
    pub fn new(col: usize, low: Value) -> Punct {
        Punct { col, low }
    }
}

/// How a source decides when to emit punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatMode {
    /// Never emit (the paper's problem case: a slow stream can block a
    /// merge indefinitely and overflow its buffers).
    Off,
    /// Emit a token every `interval` units of the ordered attribute
    /// (Tucker & Maier's periodic injection).
    Periodic {
        /// Injection interval, in units of the ordered attribute.
        interval: u64,
    },
    /// Emit only when a downstream operator signals that it might be
    /// blocked (the paper's "on-demand system" experiment).
    OnDemand,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let p = Punct::new(2, Value::UInt(100));
        assert_eq!(p.col, 2);
        assert_eq!(p.low, Value::UInt(100));
    }

    #[test]
    fn modes_compare() {
        assert_ne!(HeartbeatMode::Off, HeartbeatMode::OnDemand);
        assert_eq!(HeartbeatMode::Periodic { interval: 5 }, HeartbeatMode::Periodic { interval: 5 });
    }
}
