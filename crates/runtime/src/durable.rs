//! The durable checkpoint store: crash-consistent persistence of the
//! daemon's carry-state cuts, plus the recovery manager that rebuilds
//! them after a process death.
//!
//! # On-disk layout
//!
//! A state directory holds:
//!
//! - **Segment files** `seg-<seq>.gsck`: one sealed
//!   ([`snapshot::seal`]) envelope per checkpoint containing the epoch
//!   to resume at, every query's replay cursor, and the full carry map
//!   (node key → that node's own sealed snapshot). `<seq>` is a
//!   zero-padded hex sequence number — monotone, so lexicographic file
//!   order is write order. Segments are immutable once named: they are
//!   written to `<name>.tmp`, fsynced, renamed into place, and the
//!   directory is fsynced — the classic crash-consistent publish.
//! - **The emission log** `emit.log`: an append-only sequence of
//!   `u32 BE length` + sealed records. A *markers* record commits "the
//!   output of epoch `e` for streams `s…` has been handed to
//!   subscribers"; a *shutdown* record commits a clean flush. Each
//!   record is individually checksummed, so a torn tail is detected and
//!   truncated (advisory, never fatal).
//!
//! # Recovery and the exactly-once argument
//!
//! The write order at every epoch boundary is: (1) segment published
//! crash-consistently, (2) markers appended + fsynced, (3) marker
//! frames sent to subscribers. A markers record therefore implies a
//! durable segment whose cursors cover it. The converse does not hold —
//! a crash between (1) and (2) leaves a segment whose boundary was
//! never confirmed to anyone — so each segment also records the streams
//! that completed its boundary (`pending`), and recovery refuses any
//! segment missing a pending stream's marker, falling back to the
//! previous cut (retention keeps at least two for exactly this reason).
//! Recovery scans the log (truncating any torn tail), restores the
//! newest decodable *marker-covered* segment, and resumes at its stored
//! epoch; epochs at or after the restored cursors were never durably
//! marked, so the replay machinery re-runs them — their frames were
//! never confirmed to a marker-counting client, so nothing is emitted
//! twice and nothing is skipped. The one unprovable
//! interleaving — the log record reached the platter but the fsync
//! acknowledgment didn't reach the process — loses only that epoch's
//! *marker frame* on the already-dead connection; the injected crash
//! matrix models the conservative outcome (torn record → replay).
//!
//! # GC
//!
//! Retention keeps the last `retain` segments; older ones are pruned at
//! checkpoint boundaries, and the log is compacted (rewritten via the
//! same temp + rename publish) once it outgrows a threshold, dropping
//! markers below every retained segment's replay floor.
//!
//! All IO goes through the injectable [`DiskIo`] layer so the fault
//! plans in [`faults`](crate::faults) can interrupt any step of the
//! protocol and the property tests can prove recovery lands on an
//! epoch boundary byte-for-byte.

use crate::faults::{
    crash_error, enospc_error, is_crash_error, DiskFaultKind, DiskFaultPlan, DiskOp,
};
use crate::snapshot::{self, SnapReader, SnapWriter};
use crate::stats::{Counter, StatSource};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Segment file prefix.
pub const SEG_PREFIX: &str = "seg-";
/// Segment file suffix.
pub const SEG_SUFFIX: &str = ".gsck";
/// Emission log file name.
pub const LOG_FILE: &str = "emit.log";
/// Largest segment file recovery will read (a corrupt length field must
/// not balloon into an allocation).
pub const MAX_SEGMENT_BYTES: u64 = 1 << 30;
/// Largest single carry entry inside a segment; checked against the
/// declared length *before* any allocation.
pub const MAX_ENTRY_BYTES: usize = 256 << 20;
/// Log size that triggers compaction at the next checkpoint boundary.
pub const LOG_COMPACT_BYTES: u64 = 1 << 20;

const REC_MARKERS: u8 = 1;
const REC_SHUTDOWN: u8 = 2;

/// Everything a durable-store operation can fail with.
#[derive(Debug)]
pub enum StoreError {
    /// An IO failure (including injected crashes and ENOSPC).
    Io(io::Error),
    /// Structurally invalid on-disk state that could not be skipped.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt state: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Whether this failure is a simulated process death (the session
    /// drivers restart-and-recover on these, dead-letter the rest).
    pub fn is_crash(&self) -> bool {
        matches!(self, StoreError::Io(e) if is_crash_error(e))
    }
}

/// The injectable IO layer every durable-store write routes through.
/// Steps of the crash-consistent protocol carry their [`DiskOp`] tag so
/// a fault plan can target an exact interleaving point; maintenance
/// operations (recovery reads, GC, log truncation) are untagged but
/// still honor a latched crash.
pub trait DiskIo: Send + Sync {
    /// Create the state directory (and parents).
    fn create_dir_all(&self, p: &Path) -> io::Result<()>;
    /// Write `bytes` as the full contents of `p` (protocol step).
    fn write(&self, op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Fsync the file at `p` (protocol step).
    fn fsync_file(&self, op: DiskOp, p: &Path) -> io::Result<()>;
    /// Rename `from` to `to` (protocol step).
    fn rename(&self, op: DiskOp, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsync the directory at `p` (protocol step).
    fn fsync_dir(&self, op: DiskOp, p: &Path) -> io::Result<()>;
    /// Append `bytes` to `p`, creating it if absent (protocol step).
    fn append(&self, op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Read the full contents of `p`.
    fn read(&self, p: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) in directory `p`.
    fn list(&self, p: &Path) -> io::Result<Vec<String>>;
    /// Remove the file at `p`.
    fn remove(&self, p: &Path) -> io::Result<()>;
    /// Truncate `p` to `len` bytes.
    fn truncate(&self, p: &Path, len: u64) -> io::Result<()>;
    /// Atomically replace `p`'s contents (temp + fsync + rename +
    /// dir fsync), for log compaction.
    fn replace(&self, p: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Mark the start of one checkpoint boundary (fault plans count
    /// these).
    fn begin_boundary(&self) {}
}

/// The real filesystem, std-only.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealDisk;

fn fsync_path(p: &Path) -> io::Result<()> {
    fs::File::open(p)?.sync_all()
}

impl DiskIo for RealDisk {
    fn create_dir_all(&self, p: &Path) -> io::Result<()> {
        fs::create_dir_all(p)
    }
    fn write(&self, _op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(p, bytes)
    }
    fn fsync_file(&self, _op: DiskOp, p: &Path) -> io::Result<()> {
        fsync_path(p)
    }
    fn rename(&self, _op: DiskOp, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn fsync_dir(&self, _op: DiskOp, p: &Path) -> io::Result<()> {
        // Directory fsync is how a rename becomes durable on POSIX; on
        // platforms where opening a directory fails, the rename is the
        // best available publish and the error is not fatal.
        match fsync_path(p) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
            Err(e) => Err(e),
        }
    }
    fn append(&self, _op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::OpenOptions::new().create(true).append(true).open(p)?.write_all(bytes)
    }
    fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
        fs::read(p)
    }
    fn list(&self, p: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(p)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
    fn remove(&self, p: &Path) -> io::Result<()> {
        fs::remove_file(p)
    }
    fn truncate(&self, p: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(p)?.set_len(len)
    }
    fn replace(&self, p: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = p.with_extension("rewrite.tmp");
        fs::write(&tmp, bytes)?;
        fsync_path(&tmp)?;
        fs::rename(&tmp, p)?;
        if let Some(dir) = p.parent() {
            let _ = fsync_path(dir);
        }
        Ok(())
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. A concurrent
/// reader sees either the old contents or the new — never a prefix.
/// (The `gsqd --port-file` satellite; also the log-compaction publish.)
pub fn atomic_write_file(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(&format!(".{}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fsync_path(&tmp)?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fsync_path(dir);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// FaultyDisk: the crash-simulating DiskIo for the property tests.
// ---------------------------------------------------------------------

struct FaultyState {
    /// 1-based checkpoint boundary counter.
    boundary: u64,
    /// Latched once a crash fault fires; every later op fails.
    crashed: bool,
    /// Remaining failures per Enospc spec (parallel to plan.specs).
    enospc_left: Vec<u32>,
    /// Last protocol-step write: `(path, bytes written)` — the rollback
    /// target for `CrashBefore(TempFsync)`.
    last_write: Option<(PathBuf, u64)>,
    /// Last protocol-step rename — the rollback target for
    /// `CrashBefore(DirFsync)`.
    last_rename: Option<(PathBuf, PathBuf)>,
    /// Last protocol-step append: `(path, length before, appended)` —
    /// the rollback target for `CrashBefore(LogFsync)`.
    last_append: Option<(PathBuf, u64, u64)>,
}

/// A [`DiskIo`] that executes a [`DiskFaultPlan`] over the real
/// filesystem. A *crash* fault latches the disk dead (every later call
/// fails with [`crash_error`]) and mutates the directory into a state
/// some real machine crash could have left: un-fsynced writes are torn
/// to half their bytes, un-fsynced renames are reverted, un-fsynced log
/// appends are cut mid-record. Recovery then runs over the directory
/// with a fresh [`RealDisk`], exactly as a restarted process would.
pub struct FaultyDisk {
    plan: DiskFaultPlan,
    real: RealDisk,
    state: Mutex<FaultyState>,
}

impl FaultyDisk {
    /// Arm `plan` over the real filesystem.
    pub fn new(plan: DiskFaultPlan) -> FaultyDisk {
        let enospc_left = plan
            .specs
            .iter()
            .map(|s| match s.kind {
                DiskFaultKind::Enospc { times } => times,
                _ => 0,
            })
            .collect();
        FaultyDisk {
            plan,
            real: RealDisk,
            state: Mutex::new(FaultyState {
                boundary: 0,
                crashed: false,
                enospc_left,
                last_write: None,
                last_rename: None,
                last_append: None,
            }),
        }
    }

    /// Whether a crash fault has latched.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultyState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The fault due at `(boundary, op)`, if any: crash kinds match
    /// their boundary exactly, ENOSPC matches from its boundary on
    /// while it has failures left.
    fn due(&self, st: &mut FaultyState, op: DiskOp) -> Option<DiskFaultKind> {
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.op != op {
                continue;
            }
            match spec.kind {
                DiskFaultKind::Enospc { .. } => {
                    if st.boundary >= spec.at_boundary && st.enospc_left[i] > 0 {
                        st.enospc_left[i] -= 1;
                        return Some(DiskFaultKind::Enospc { times: 0 });
                    }
                }
                ref kind if st.boundary == spec.at_boundary => return Some(kind.clone()),
                _ => {}
            }
        }
        None
    }

    /// Roll back the un-fsynced effects a crash at `op` would lose.
    fn lose_unsynced(&self, st: &mut FaultyState, op: DiskOp) {
        match op {
            DiskOp::TempFsync => {
                if let Some((path, len)) = st.last_write.take() {
                    let _ = self.real.truncate(&path, len / 2);
                }
            }
            DiskOp::DirFsync => {
                if let Some((from, to)) = st.last_rename.take() {
                    let _ = fs::rename(&to, &from);
                }
            }
            DiskOp::LogFsync => {
                if let Some((path, old_len, appended)) = st.last_append.take() {
                    let _ = self.real.truncate(&path, old_len + appended / 2);
                }
            }
            _ => {}
        }
    }
}

/// Shared fault gate: fail fast once crashed, surface ENOSPC, execute
/// a crash-before (rollback + latch). `CrashAfter`/`ShortWrite` pass
/// through to the caller's arm, which must run the real operation
/// first.
macro_rules! faulty_gate {
    ($self:ident, $st:ident, $op:expr) => {{
        if $st.crashed {
            return Err(crash_error());
        }
        match $self.due(&mut $st, $op) {
            Some(DiskFaultKind::Enospc { .. }) => return Err(enospc_error()),
            Some(DiskFaultKind::CrashBefore(_)) => {
                $self.lose_unsynced(&mut $st, $op);
                $st.crashed = true;
                return Err(crash_error());
            }
            other => other,
        }
    }};
}

impl DiskIo for FaultyDisk {
    fn create_dir_all(&self, p: &Path) -> io::Result<()> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.create_dir_all(p)
    }

    fn write(&self, op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let due = { faulty_gate!(self, st, op) };
        match due {
            Some(DiskFaultKind::ShortWrite { keep }) => {
                let _ = self.real.write(op, p, &bytes[..keep.min(bytes.len())]);
                st.crashed = true;
                Err(crash_error())
            }
            Some(DiskFaultKind::CrashAfter(_)) => {
                self.real.write(op, p, bytes)?;
                st.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.real.write(op, p, bytes)?;
                st.last_write = Some((p.to_path_buf(), bytes.len() as u64));
                Ok(())
            }
        }
    }

    fn fsync_file(&self, op: DiskOp, p: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let due = { faulty_gate!(self, st, op) };
        match due {
            Some(DiskFaultKind::CrashAfter(_)) => {
                self.real.fsync_file(op, p)?;
                st.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.real.fsync_file(op, p)?;
                // The sync made the pending write/append durable.
                match op {
                    DiskOp::TempFsync => st.last_write = None,
                    DiskOp::LogFsync => st.last_append = None,
                    _ => {}
                }
                Ok(())
            }
        }
    }

    fn rename(&self, op: DiskOp, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let due = { faulty_gate!(self, st, op) };
        match due {
            Some(DiskFaultKind::CrashAfter(_)) => {
                self.real.rename(op, from, to)?;
                st.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.real.rename(op, from, to)?;
                st.last_rename = Some((from.to_path_buf(), to.to_path_buf()));
                Ok(())
            }
        }
    }

    fn fsync_dir(&self, op: DiskOp, p: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let due = { faulty_gate!(self, st, op) };
        match due {
            Some(DiskFaultKind::CrashAfter(_)) => {
                self.real.fsync_dir(op, p)?;
                st.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.real.fsync_dir(op, p)?;
                st.last_rename = None;
                Ok(())
            }
        }
    }

    fn append(&self, op: DiskOp, p: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let due = { faulty_gate!(self, st, op) };
        let old_len = fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        match due {
            Some(DiskFaultKind::ShortWrite { keep }) => {
                let _ = self.real.append(op, p, &bytes[..keep.min(bytes.len())]);
                st.crashed = true;
                Err(crash_error())
            }
            Some(DiskFaultKind::CrashAfter(_)) => {
                self.real.append(op, p, bytes)?;
                st.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.real.append(op, p, bytes)?;
                st.last_append = Some((p.to_path_buf(), old_len, bytes.len() as u64));
                Ok(())
            }
        }
    }

    fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.read(p)
    }
    fn list(&self, p: &Path) -> io::Result<Vec<String>> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.list(p)
    }
    fn remove(&self, p: &Path) -> io::Result<()> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.remove(p)
    }
    fn truncate(&self, p: &Path, len: u64) -> io::Result<()> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.truncate(p, len)
    }
    fn replace(&self, p: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.lock().crashed {
            return Err(crash_error());
        }
        self.real.replace(p, bytes)
    }
    fn begin_boundary(&self) {
        self.lock().boundary += 1;
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Durable-store accounting, registered as GS_STATS node `durable`.
#[derive(Debug, Default)]
pub struct DurableStats {
    /// Segments published crash-consistently.
    pub segments_written: Counter,
    /// Bytes that went through an fsync (segments + log records).
    pub bytes_fsynced: Counter,
    /// Startups that rebuilt state from a non-empty directory.
    pub recoveries: Counter,
    /// Torn/partial tails truncated or unreadable segments skipped
    /// during recovery.
    pub torn_truncated: Counter,
    /// Segments pruned and log records dropped by retention/GC.
    pub gc_pruned: Counter,
    /// Checkpoint writes dead-lettered after retries (e.g. ENOSPC).
    pub write_failed: Counter,
}

impl StatSource for DurableStats {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("segments_written", self.segments_written.get()),
            ("bytes_fsynced", self.bytes_fsynced.get()),
            ("recoveries", self.recoveries.get()),
            ("torn_truncated", self.torn_truncated.get()),
            ("gc_pruned", self.gc_pruned.get()),
            ("write_failed", self.write_failed.get()),
        ]
    }
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// What recovery rebuilt from the state directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Epoch the engine should resume at.
    pub next_epoch: u64,
    /// The restored carry map (node key → sealed snapshot).
    pub carry: HashMap<String, Vec<u8>>,
    /// Restored replay cursors (query → next unprocessed epoch).
    pub cursors: HashMap<String, u64>,
    /// Durably committed `(stream, epoch)` markers since the last clean
    /// shutdown (the exactly-once ledger).
    pub markers: Vec<(String, u64)>,
    /// True when the directory ended with a clean-shutdown record (the
    /// engine starts fresh but keeps epoch numbering).
    pub clean_shutdown: bool,
    /// True when anything durable was found at all.
    pub recovered: bool,
    /// Advisory notes (torn tails truncated, segments skipped,
    /// regressions) — the `RunHealth::notes` style report.
    pub notes: Vec<String>,
}

#[derive(Debug, Clone)]
struct SegMeta {
    seq: u64,
    /// Lowest replay cursor recorded in the segment (its replay floor);
    /// markers below every retained floor can never be re-emitted and
    /// are compactable.
    floor: u64,
}

/// The durable checkpoint store. One instance owns a state directory;
/// the engine calls [`checkpoint`](DurableStore::checkpoint) and
/// [`log_markers`](DurableStore::log_markers) at every epoch boundary
/// and [`log_shutdown`](DurableStore::log_shutdown) after a clean
/// flush.
pub struct DurableStore {
    dir: PathBuf,
    io: Arc<dyn DiskIo>,
    retain: usize,
    stats: Arc<DurableStats>,
    /// Bounded retries for transient checkpoint failures (ENOSPC).
    write_retries: u32,
    next_seq: u64,
    segments: Vec<SegMeta>,
    log_len: u64,
    /// In-memory copy of live marker records, for compaction.
    records: Vec<(u64, Vec<String>)>,
}

fn seg_name(seq: u64) -> String {
    format!("{SEG_PREFIX}{seq:016x}{SEG_SUFFIX}")
}

fn parse_seg_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix(SEG_PREFIX)?.strip_suffix(SEG_SUFFIX)?;
    u64::from_str_radix(hex, 16).ok()
}

/// Decoded segment payload.
#[derive(Debug)]
struct Segment {
    seq: u64,
    next_epoch: u64,
    cursors: HashMap<String, u64>,
    /// Streams that completed the boundary this segment was written at.
    /// Their marker records (`(s, cursors[s] - 1)`) are appended right
    /// after the segment publishes; recovery uses this list to tell a
    /// fully-committed boundary from one that crashed between the two
    /// durable steps.
    pending: Vec<String>,
    carry: HashMap<String, Vec<u8>>,
}

fn encode_segment(
    seq: u64,
    next_epoch: u64,
    carry: &HashMap<String, Vec<u8>>,
    cursors: &HashMap<String, u64>,
    pending: &[String],
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u64(seq);
    w.put_u64(next_epoch);
    let mut cur: Vec<(&String, &u64)> = cursors.iter().collect();
    cur.sort();
    w.put_u32(cur.len() as u32);
    for (q, e) in cur {
        w.put_str(q);
        w.put_u64(*e);
    }
    let mut pend: Vec<&String> = pending.iter().collect();
    pend.sort();
    w.put_u32(pend.len() as u32);
    for s in pend {
        w.put_str(s);
    }
    let mut entries: Vec<(&String, &Vec<u8>)> = carry.iter().collect();
    entries.sort();
    w.put_u32(entries.len() as u32);
    for (k, v) in entries {
        w.put_str(k);
        w.put_bytes(v);
    }
    w.seal()
}

fn decode_segment(sealed: &[u8]) -> Result<Segment, snapshot::SnapError> {
    let mut r = SnapReader::open(sealed)?;
    let seq = r.get_u64()?;
    let next_epoch = r.get_u64()?;
    let n = r.get_count(9)?; // str len prefix (4) + at least 1 byte name... u64 follows
    let mut cursors = HashMap::with_capacity(n);
    for _ in 0..n {
        let q = r.get_str()?;
        cursors.insert(q, r.get_u64()?);
    }
    let n = r.get_count(4)?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(r.get_str()?);
    }
    let n = r.get_count(8)?;
    let mut carry = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = r.get_str()?;
        // Entry size cap: a corrupt length that slipped past the
        // checksum (or a future oversized cut) is refused before any
        // allocation, not after.
        let declared = r.peek_u32().ok_or(snapshot::SnapError::Truncated)? as usize;
        if declared > MAX_ENTRY_BYTES {
            return Err(snapshot::proto(format!(
                "carry entry `{k}` declares {declared} bytes (cap {MAX_ENTRY_BYTES})"
            )));
        }
        carry.insert(k, r.get_bytes()?);
    }
    r.finish()?;
    Ok(Segment { seq, next_epoch, cursors, pending, carry })
}

fn encode_markers(epoch: u64, streams: &[String]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u8(REC_MARKERS);
    w.put_u64(epoch);
    let mut sorted: Vec<&String> = streams.iter().collect();
    sorted.sort();
    w.put_u32(sorted.len() as u32);
    for s in sorted {
        w.put_str(s);
    }
    w.seal()
}

fn encode_shutdown(next_epoch: u64, barrier_seq: u64) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u8(REC_SHUTDOWN);
    w.put_u64(next_epoch);
    w.put_u64(barrier_seq);
    w.seal()
}

fn frame_record(sealed: Vec<u8>) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + sealed.len());
    rec.extend_from_slice(&(sealed.len() as u32).to_be_bytes());
    rec.extend_from_slice(&sealed);
    rec
}

impl DurableStore {
    /// Open (or create) the store at `dir` and run recovery: scan the
    /// directory, truncate any torn log tail, restore the newest
    /// decodable segment consistent with the durable markers, and
    /// report what the engine should resume with.
    pub fn open(
        dir: impl Into<PathBuf>,
        io: Arc<dyn DiskIo>,
        retain: usize,
        stats: Arc<DurableStats>,
    ) -> Result<(DurableStore, Recovery), StoreError> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let mut store = DurableStore {
            dir,
            io,
            // At least two cuts: when a crash lands between a segment
            // publish and its marker commit, recovery falls back to the
            // previous cut — which must still be on disk.
            retain: retain.max(2),
            stats,
            write_retries: 2,
            next_seq: 0,
            segments: Vec::new(),
            log_len: 0,
            records: Vec::new(),
        };
        let recovery = store.recover()?;
        Ok((store, recovery))
    }

    fn seg_path(&self, seq: u64) -> PathBuf {
        self.dir.join(seg_name(seq))
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }

    fn recover(&mut self) -> Result<Recovery, StoreError> {
        let mut rec = Recovery::default();
        let names = self.io.list(&self.dir)?;
        let mut seg_seqs: Vec<u64> = Vec::new();
        let mut saw_log = false;
        for name in &names {
            if let Some(seq) = parse_seg_name(name) {
                seg_seqs.push(seq);
            } else if name == LOG_FILE {
                saw_log = true;
            } else if name.ends_with(".tmp") {
                // Uncommitted temp from an interrupted publish: garbage
                // by construction (never renamed), silently removable.
                let _ = self.io.remove(&self.dir.join(name));
            }
        }
        seg_seqs.sort_unstable();
        self.next_seq = seg_seqs.last().map_or(0, |s| s + 1);
        rec.recovered = saw_log || !seg_seqs.is_empty();

        // --- Replay the emission log, truncating any torn tail. ------
        let mut barrier_seq: Option<u64> = None;
        let mut shutdown_next: Option<u64> = None;
        if saw_log {
            let bytes = self.io.read(&self.log_path())?;
            let mut at = 0usize;
            loop {
                if at == bytes.len() {
                    break;
                }
                let parsed = (|| -> Option<(u8, Vec<u8>)> {
                    let len =
                        u32::from_be_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
                    let sealed = bytes.get(at + 4..at + 4 + len)?;
                    let mut r = SnapReader::open(sealed).ok()?;
                    let kind = r.get_u8().ok()?;
                    Some((kind, sealed.to_vec()))
                })();
                let Some((kind, sealed)) = parsed else {
                    // Torn tail: truncate at the last whole record.
                    self.io.truncate(&self.log_path(), at as u64)?;
                    self.stats.torn_truncated.inc();
                    rec.notes.push(format!(
                        "emission log: torn tail truncated at byte {at} (of {})",
                        bytes.len()
                    ));
                    break;
                };
                let ok = (|| -> Option<()> {
                    let mut r = SnapReader::open(&sealed).ok()?;
                    match r.get_u8().ok()? {
                        REC_MARKERS => {
                            let epoch = r.get_u64().ok()?;
                            let n = r.get_count(4).ok()?;
                            let mut streams = Vec::with_capacity(n);
                            for _ in 0..n {
                                streams.push(r.get_str().ok()?);
                            }
                            r.finish().ok()?;
                            for s in &streams {
                                rec.markers.push((s.clone(), epoch));
                            }
                            self.records.push((epoch, streams));
                        }
                        REC_SHUTDOWN => {
                            let next = r.get_u64().ok()?;
                            let barrier = r.get_u64().ok()?;
                            r.finish().ok()?;
                            shutdown_next = Some(next);
                            barrier_seq = Some(barrier);
                            // Earlier markers belong to the finished
                            // incarnation; coverage starts over.
                            rec.markers.clear();
                            self.records.clear();
                        }
                        _ => return None,
                    }
                    Some(())
                })();
                if ok.is_none() {
                    self.io.truncate(&self.log_path(), at as u64)?;
                    self.stats.torn_truncated.inc();
                    rec.notes.push(format!(
                        "emission log: malformed record truncated at byte {at}"
                    ));
                    break;
                }
                let _ = kind;
                at += 4 + sealed.len();
            }
            self.log_len = std::cmp::min(at as u64, bytes.len() as u64);
        }

        // --- Prune segments retired by a clean shutdown. -------------
        if let Some(barrier) = barrier_seq {
            for &seq in seg_seqs.iter().filter(|&&s| s <= barrier) {
                let _ = self.io.remove(&self.seg_path(seq));
                self.stats.gc_pruned.inc();
            }
            seg_seqs.retain(|&s| s > barrier);
        }

        // --- Restore the newest decodable, marker-covered segment. ----
        //
        // A boundary commits in two durable steps: the segment (cursor
        // e+1) first, then the markers for epoch e. A crash between the
        // two leaves a segment whose `pending` streams run AHEAD of the
        // durable markers — resuming from it would skip an epoch no
        // client ever confirmed (the marker frame is only sent after
        // both steps). Such a segment is not corrupt, just premature:
        // skip it and fall back to the previous cut, which re-runs the
        // unconfirmed epoch. Retention keeping >= 2 cuts guarantees the
        // fallback exists.
        let mut next_unmarked: HashMap<&str, u64> = HashMap::new();
        for (s, e) in &rec.markers {
            let slot = next_unmarked.entry(s.as_str()).or_insert(0);
            *slot = (*slot).max(e + 1);
        }
        let mut restored: Option<Segment> = None;
        for &seq in seg_seqs.iter().rev() {
            let path = self.seg_path(seq);
            let result = self.io.read(&path).map_err(StoreError::Io).and_then(|bytes| {
                if bytes.len() as u64 > MAX_SEGMENT_BYTES {
                    return Err(StoreError::Corrupt(format!(
                        "segment {seq:#x} is {} bytes (cap {MAX_SEGMENT_BYTES})",
                        bytes.len()
                    )));
                }
                decode_segment(&bytes)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))
                    .and_then(|seg| {
                        if seg.seq != seq {
                            Err(StoreError::Corrupt(format!(
                                "segment file {seq:#x} claims seq {:#x}",
                                seg.seq
                            )))
                        } else {
                            Ok(seg)
                        }
                    })
            });
            match result {
                Ok(seg) => {
                    self.segments.insert(0, SegMeta { seq, floor: 0 });
                    if restored.is_some() {
                        continue;
                    }
                    let ahead = seg.pending.iter().any(|s| {
                        let c = seg.cursors.get(s).copied().unwrap_or(seg.next_epoch);
                        c > next_unmarked.get(s.as_str()).copied().unwrap_or(0)
                    });
                    if ahead {
                        rec.notes.push(format!(
                            "segment {} runs ahead of the durable emission \
                             markers; falling back to the previous cut",
                            seg_name(seq)
                        ));
                        continue;
                    }
                    restored = Some(seg);
                }
                Err(StoreError::Io(e)) if is_crash_error(&e) => {
                    return Err(StoreError::Io(e));
                }
                Err(e) => {
                    // Torn/corrupt segment: skip it, fall back to the
                    // next older cut, and drop the damaged file.
                    self.stats.torn_truncated.inc();
                    rec.notes.push(format!(
                        "segment {}: {e}; falling back to an older cut",
                        seg_name(seq)
                    ));
                    let _ = self.io.remove(&path);
                }
            }
        }
        // Fix floors now the restored segment is known: a segment's
        // floor is its own lowest cursor; without decode we keep 0
        // (maximally conservative for compaction).
        if let Some(seg) = &restored {
            if let Some(meta) = self.segments.iter_mut().find(|m| m.seq == seg.seq) {
                meta.floor =
                    seg.cursors.values().copied().min().unwrap_or(seg.next_epoch);
            }
        }

        match restored {
            Some(seg) => {
                rec.next_epoch = seg.next_epoch;
                rec.cursors = seg.cursors;
                rec.carry = seg.carry;
                // Coverage check: every durable marker must be covered
                // by the restored cursors, or a newer segment was lost
                // and re-emission (duplicates) is possible.
                let uncovered: Vec<&(String, u64)> = rec
                    .markers
                    .iter()
                    .filter(|(s, e)| {
                        rec.cursors.get(s).copied().unwrap_or(rec.next_epoch) <= *e
                    })
                    .collect();
                if !uncovered.is_empty() {
                    rec.notes.push(format!(
                        "recovery regressed behind {} durable marker(s); duplicate emission possible",
                        uncovered.len()
                    ));
                }
            }
            None => {
                if let Some(next) = shutdown_next {
                    rec.next_epoch = next;
                    rec.clean_shutdown = true;
                } else if !rec.markers.is_empty() {
                    rec.notes.push(
                        "durable markers exist but no segment decodes; \
                         restarting from empty state (duplicate emission possible)"
                            .to_string(),
                    );
                }
            }
        }

        if rec.recovered {
            self.stats.recoveries.inc();
        }
        Ok(rec)
    }

    /// Publish one checkpoint crash-consistently: the full carry map
    /// and every replay cursor, resumable at `next_epoch`. `pending`
    /// names the streams that completed this boundary — the caller
    /// commits their markers (via [`DurableStore::log_markers`]) right
    /// after this returns, and recovery refuses to resume from a cut
    /// whose pending markers never landed. Retries transient failures a
    /// bounded number of times; a final failure is counted in
    /// `write_failed` and returned for the caller to dead-letter (the
    /// engine keeps running on its in-memory cut).
    pub fn checkpoint(
        &mut self,
        next_epoch: u64,
        carry: &HashMap<String, Vec<u8>>,
        cursors: &HashMap<String, u64>,
        pending: &[String],
    ) -> Result<(), StoreError> {
        self.io.begin_boundary();
        let seq = self.next_seq;
        let sealed = encode_segment(seq, next_epoch, carry, cursors, pending);
        let tmp = self.dir.join(format!("{}.tmp", seg_name(seq)));
        let path = self.seg_path(seq);
        let mut attempt = 0;
        loop {
            let result = (|| -> io::Result<()> {
                self.io.write(DiskOp::TempWrite, &tmp, &sealed)?;
                self.io.fsync_file(DiskOp::TempFsync, &tmp)?;
                self.io.rename(DiskOp::Rename, &tmp, &path)?;
                self.io.fsync_dir(DiskOp::DirFsync, &self.dir)
            })();
            match result {
                Ok(()) => break,
                Err(e) if !is_crash_error(&e) && attempt < self.write_retries => {
                    attempt += 1;
                }
                Err(e) => {
                    self.stats.write_failed.inc();
                    return Err(StoreError::Io(e));
                }
            }
        }
        self.next_seq = seq + 1;
        let floor = cursors.values().copied().min().unwrap_or(next_epoch);
        self.segments.push(SegMeta { seq, floor });
        self.stats.segments_written.inc();
        self.stats.bytes_fsynced.add(sealed.len() as u64);
        self.gc();
        Ok(())
    }

    /// Commit epoch `epoch`'s emission for `streams`: append one
    /// markers record and fsync the log. The caller sends the marker
    /// frames only after this returns — the commit point of the
    /// exactly-once protocol.
    pub fn log_markers(&mut self, epoch: u64, streams: &[String]) -> Result<(), StoreError> {
        if streams.is_empty() {
            return Ok(());
        }
        let rec = frame_record(encode_markers(epoch, streams));
        self.io.append(DiskOp::LogAppend, &self.log_path(), &rec)?;
        self.io.fsync_file(DiskOp::LogFsync, &self.log_path())?;
        self.log_len += rec.len() as u64;
        self.stats.bytes_fsynced.add(rec.len() as u64);
        self.records.push((epoch, streams.to_vec()));
        Ok(())
    }

    /// Commit a clean shutdown: the flush emitted every held tail, so a
    /// later restart starts from empty state at `next_epoch` and every
    /// current segment is retired.
    pub fn log_shutdown(&mut self, next_epoch: u64) -> Result<(), StoreError> {
        let barrier = self.next_seq.saturating_sub(1);
        let rec = frame_record(encode_shutdown(next_epoch, barrier));
        self.io.append(DiskOp::LogAppend, &self.log_path(), &rec)?;
        self.io.fsync_file(DiskOp::LogFsync, &self.log_path())?;
        self.log_len += rec.len() as u64;
        self.stats.bytes_fsynced.add(rec.len() as u64);
        Ok(())
    }

    /// Retention + log compaction, run after every successful
    /// checkpoint. Best-effort: a GC failure never fails the boundary.
    fn gc(&mut self) {
        while self.segments.len() > self.retain {
            let m = self.segments.remove(0);
            if self.io.remove(&self.seg_path(m.seq)).is_ok() {
                self.stats.gc_pruned.inc();
            }
        }
        if self.log_len > LOG_COMPACT_BYTES {
            // Keep every marker recovery might consult: a retained
            // segment with cursor c needs marker c-1 to prove its cut
            // was confirmed (the "ahead of the markers" check), so the
            // compaction floor is one below the lowest retained cursor.
            let floor = self
                .segments
                .iter()
                .map(|m| m.floor)
                .min()
                .unwrap_or(0)
                .saturating_sub(1);
            let before = self.records.len();
            self.records.retain(|(e, _)| *e >= floor);
            let mut bytes = Vec::new();
            for (epoch, streams) in &self.records {
                bytes.extend_from_slice(&frame_record(encode_markers(*epoch, streams)));
            }
            if self.io.replace(&self.log_path(), &bytes).is_ok() {
                self.stats.gc_pruned.add((before - self.records.len()) as u64);
                self.log_len = bytes.len() as u64;
            }
        }
    }

    /// The store's stats block (the same instance the daemon registers
    /// as the `durable` node).
    pub fn stats(&self) -> Arc<DurableStats> {
        self.stats.clone()
    }

    /// Live segment count (tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Current emission-log length in bytes (tests).
    pub fn log_len(&self) -> u64 {
        self.log_len
    }

    /// The state directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gs_durable_{tag}_{}_{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn open_real(dir: &Path) -> (DurableStore, Recovery) {
        DurableStore::open(dir, Arc::new(RealDisk), 3, Arc::new(DurableStats::default()))
            .expect("open")
    }

    fn sample_carry(n: usize) -> HashMap<String, Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut w = SnapWriter::new();
                w.put_u64(i as u64);
                w.put_str("state");
                (format!("hfta:q{i}"), w.seal())
            })
            .collect()
    }

    #[test]
    fn checkpoint_then_recover_round_trips_state() {
        let dir = scratch_dir("roundtrip");
        let carry = sample_carry(3);
        let cursors: HashMap<String, u64> =
            (0..3).map(|i| (format!("q{i}"), 7u64)).collect();
        {
            let (mut store, rec) = open_real(&dir);
            assert!(!rec.recovered, "fresh dir recovers nothing");
            store
                .checkpoint(7, &carry, &cursors, &["q0".to_string(), "q1".to_string()])
                .expect("checkpoint");
            store
                .log_markers(6, &["q0".to_string(), "q1".to_string()])
                .expect("markers");
        }
        let (_store, rec) = open_real(&dir);
        assert!(rec.recovered);
        assert_eq!(rec.next_epoch, 7);
        assert_eq!(rec.carry, carry, "carry map is byte-identical");
        assert_eq!(rec.cursors, cursors);
        assert_eq!(
            rec.markers,
            vec![("q0".to_string(), 6), ("q1".to_string(), 6)]
        );
        assert!(rec.notes.is_empty(), "clean state recovers without notes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_last_k_segments() {
        let dir = scratch_dir("gc");
        let stats = Arc::new(DurableStats::default());
        let (mut store, _) =
            DurableStore::open(&dir, Arc::new(RealDisk), 2, stats.clone()).expect("open");
        let carry = sample_carry(1);
        for e in 0..5u64 {
            store.checkpoint(e + 1, &carry, &HashMap::new(), &[]).expect("checkpoint");
        }
        assert_eq!(store.segment_count(), 2);
        assert_eq!(stats.gc_pruned.get(), 3);
        let live: Vec<String> = RealDisk
            .list(&dir)
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(SEG_SUFFIX))
            .collect();
        assert_eq!(live.len(), 2, "only the retained segments remain on disk");
        // Recovery restores the newest.
        let (_s, rec) = open_real(&dir);
        assert_eq!(rec.next_epoch, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_is_truncated_not_fatal() {
        let dir = scratch_dir("torntail");
        {
            let (mut store, _) = open_real(&dir);
            store.checkpoint(3, &sample_carry(1), &HashMap::new(), &[]).unwrap();
            store.log_markers(2, &["q0".to_string()]).unwrap();
        }
        // Tear the tail: append garbage that looks like a record start.
        let log = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log).unwrap();
        let whole = bytes.len();
        bytes.extend_from_slice(&[0, 0, 0, 40, b'G', b'S']);
        fs::write(&log, &bytes).unwrap();
        let stats = Arc::new(DurableStats::default());
        let (_s, rec) =
            DurableStore::open(&dir, Arc::new(RealDisk), 3, stats.clone()).expect("open");
        assert_eq!(rec.markers, vec![("q0".to_string(), 2)], "whole records survive");
        assert_eq!(stats.torn_truncated.get(), 1);
        assert!(rec.notes.iter().any(|n| n.contains("torn tail")));
        assert_eq!(fs::read(&log).unwrap().len(), whole, "tail physically truncated");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_segment_falls_back_to_older_cut() {
        let dir = scratch_dir("fallback");
        let old_carry = sample_carry(2);
        {
            let (mut store, _) = open_real(&dir);
            store.checkpoint(4, &old_carry, &HashMap::new(), &[]).unwrap();
            store.checkpoint(5, &sample_carry(3), &HashMap::new(), &[]).unwrap();
        }
        // Flip a byte mid-payload of the newest segment.
        let newest = dir.join(seg_name(1));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let stats = Arc::new(DurableStats::default());
        let (_s, rec) =
            DurableStore::open(&dir, Arc::new(RealDisk), 3, stats.clone()).expect("open");
        assert_eq!(rec.next_epoch, 4, "recovery fell back to the older boundary");
        assert_eq!(rec.carry, old_carry);
        assert_eq!(stats.torn_truncated.get(), 1);
        assert!(rec.notes.iter().any(|n| n.contains("falling back")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shutdown_restarts_fresh_with_epoch_numbering() {
        let dir = scratch_dir("clean");
        {
            let (mut store, _) = open_real(&dir);
            store.checkpoint(9, &sample_carry(2), &HashMap::new(), &[]).unwrap();
            store.log_markers(8, &["q0".to_string()]).unwrap();
            store.log_shutdown(10).unwrap();
        }
        let (_s, rec) = open_real(&dir);
        assert!(rec.clean_shutdown);
        assert_eq!(rec.next_epoch, 10);
        assert!(rec.carry.is_empty(), "flushed state is not restored");
        assert!(rec.markers.is_empty(), "pre-shutdown markers are retired");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_compaction_drops_markers_below_the_replay_floor() {
        let dir = scratch_dir("compact");
        let stats = Arc::new(DurableStats::default());
        let (mut store, _) =
            DurableStore::open(&dir, Arc::new(RealDisk), 2, stats.clone()).expect("open");
        // Many fat marker records push the log over the threshold.
        let streams: Vec<String> = (0..64).map(|i| format!("stream-{i:04}")).collect();
        let carry = sample_carry(1);
        let mut e = 0u64;
        while store.log_len() <= LOG_COMPACT_BYTES {
            store.log_markers(e, &streams).unwrap();
            e += 1;
        }
        let cursors: HashMap<String, u64> = [("q0".to_string(), e)].into();
        store.checkpoint(e + 1, &carry, &cursors, &[]).expect("checkpoint compacts");
        assert!(store.log_len() < LOG_COMPACT_BYTES, "log shrank");
        assert!(stats.gc_pruned.get() > 0);
        // Recovery over the compacted log still works and keeps only
        // covered markers.
        let (_s, rec) = open_real(&dir);
        assert_eq!(rec.next_epoch, e + 1);
        assert!(rec.markers.iter().all(|(_, me)| *me >= e.min(*me)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_carry_entry_is_rejected_before_allocation() {
        // Hand-forge a segment whose entry declares more bytes than the
        // cap; decode must refuse on the declared length, not allocate.
        let mut w = SnapWriter::new();
        w.put_u64(0); // seq
        w.put_u64(1); // next_epoch
        w.put_u32(0); // cursors
        w.put_u32(0); // pending
        w.put_u32(1); // entries
        w.put_str("hfta:q");
        w.put_u32((MAX_ENTRY_BYTES + 1) as u32); // declared entry length
        w.put_u8(0); // one actual byte
        let sealed = w.seal();
        let err = decode_segment(&sealed).expect_err("oversized entry must be rejected");
        assert!(err.to_string().contains("cap"), "error names the cap: {err}");
    }

    #[test]
    fn atomic_write_file_replaces_whole_contents() {
        let dir = scratch_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("port");
        atomic_write_file(&path, b"127.0.0.1:5123").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"127.0.0.1:5123");
        atomic_write_file(&path, b"127.0.0.1:49152").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"127.0.0.1:49152");
        assert_eq!(
            RealDisk.list(&dir).unwrap(),
            vec!["port".to_string()],
            "no temp droppings"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
