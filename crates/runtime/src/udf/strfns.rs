//! Small string/byte utility functions.

use crate::udf::{HandleResolver, ScalarUdf};
use crate::value::Value;
use crate::RuntimeError;

/// `str_find_substr(text, needle)` — substring containment.
pub struct StrFindSubstr;

impl ScalarUdf for StrFindSubstr {
    fn eval(&self, args: &[Value]) -> Option<Value> {
        let hay = args.first()?.as_bytes()?;
        let needle = args.get(1)?.as_bytes()?;
        Some(Value::Bool(find(hay, needle)))
    }
}

/// Naive byte search; needles here are short protocol tokens.
fn find(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if hay.len() < needle.len() {
        return false;
    }
    hay.windows(needle.len()).any(|w| w == needle)
}

/// `str_len(text)`.
pub struct StrLen;

impl ScalarUdf for StrLen {
    fn eval(&self, args: &[Value]) -> Option<Value> {
        Some(Value::UInt(args.first()?.as_bytes()?.len() as u64))
    }
}

/// `to_float(uint)` — explicit widening for ratio queries.
pub struct ToFloat;

impl ScalarUdf for ToFloat {
    fn eval(&self, args: &[Value]) -> Option<Value> {
        args.first()?.as_float().map(Value::Float)
    }
}

/// Registry factory for [`StrFindSubstr`].
pub fn make_str_find_substr(
    _handles: &[Option<Value>],
    _resolver: &dyn HandleResolver,
) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
    Ok(Box::new(StrFindSubstr))
}

/// Registry factory for [`StrLen`].
pub fn make_str_len(
    _handles: &[Option<Value>],
    _resolver: &dyn HandleResolver,
) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
    Ok(Box::new(StrLen))
}

/// Registry factory for [`ToFloat`].
pub fn make_to_float(
    _handles: &[Option<Value>],
    _resolver: &dyn HandleResolver,
) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
    Ok(Box::new(ToFloat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn s(b: &'static [u8]) -> Value {
        Value::Str(Bytes::from_static(b))
    }

    #[test]
    fn substr() {
        let f = StrFindSubstr;
        assert_eq!(f.eval(&[s(b"hello world"), s(b"lo wo")]), Some(Value::Bool(true)));
        assert_eq!(f.eval(&[s(b"hello"), s(b"xyz")]), Some(Value::Bool(false)));
        assert_eq!(f.eval(&[s(b"short"), s(b"longer needle")]), Some(Value::Bool(false)));
        assert_eq!(f.eval(&[s(b"any"), s(b"")]), Some(Value::Bool(true)));
        assert_eq!(f.eval(&[Value::UInt(1), s(b"x")]), None);
    }

    #[test]
    fn len_and_float() {
        assert_eq!(StrLen.eval(&[s(b"abcd")]), Some(Value::UInt(4)));
        assert_eq!(ToFloat.eval(&[Value::UInt(3)]), Some(Value::Float(3.0)));
        assert_eq!(ToFloat.eval(&[Value::Float(2.5)]), Some(Value::Float(2.5)));
        assert_eq!(ToFloat.eval(&[s(b"x")]), None);
    }
}
