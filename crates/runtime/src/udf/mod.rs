//! The user-defined function library and registry.
//!
//! "Users can make new functions available by adding the code for the
//! function to the function library, and registering the function
//! prototype in the function registry" (paper §2.2). Prototypes live in
//! the GSQL catalog; implementations are registered here under the same
//! names. A function instance is created per call site at query
//! instantiation, when its pass-by-handle parameters (a prefix-table file
//! name, a regular expression) are pre-processed — "these parameters
//! require expensive pre-processing before the function can use them".

pub mod lpm;
pub mod regex;
pub mod strfns;

use crate::value::Value;
use crate::RuntimeError;
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar function instance, ready to evaluate per tuple.
///
/// Returning `None` from a *partial* function discards the tuple being
/// processed — "the same as if there is no result from a join".
pub trait ScalarUdf: Send {
    /// Evaluate over the call's runtime arguments (handle positions
    /// receive their bound values again, but instances typically ignore
    /// them).
    fn eval(&self, args: &[Value]) -> Option<Value>;
}

/// Resolves pass-by-handle file names to contents, so tests and examples
/// can supply in-memory tables while deployments read real files.
pub trait HandleResolver: Send + Sync {
    /// Read the named resource.
    fn read(&self, name: &str) -> Result<Vec<u8>, RuntimeError>;
}

/// Resolver over an in-memory map, falling back to the filesystem.
#[derive(Debug, Default, Clone)]
pub struct FileStore {
    mem: HashMap<String, Vec<u8>>,
}

impl FileStore {
    /// Empty store (filesystem fallback only).
    pub fn new() -> FileStore {
        FileStore::default()
    }

    /// Register an in-memory file.
    pub fn insert(&mut self, name: impl Into<String>, contents: impl Into<Vec<u8>>) {
        self.mem.insert(name.into(), contents.into());
    }
}

impl HandleResolver for FileStore {
    fn read(&self, name: &str) -> Result<Vec<u8>, RuntimeError> {
        if let Some(v) = self.mem.get(name) {
            return Ok(v.clone());
        }
        std::fs::read(name)
            .map_err(|e| RuntimeError::msg(format!("cannot read handle file `{name}`: {e}")))
    }
}

/// Factory producing a function instance from its bound handle arguments
/// (`None` at non-handle positions).
pub type UdfFactory = Arc<
    dyn Fn(&[Option<Value>], &dyn HandleResolver) -> Result<Box<dyn ScalarUdf>, RuntimeError>
        + Send
        + Sync,
>;

/// The implementation registry.
#[derive(Clone)]
pub struct UdfRegistry {
    factories: HashMap<String, UdfFactory>,
}

impl UdfRegistry {
    /// Registry with all built-in functions.
    pub fn with_builtins() -> UdfRegistry {
        let mut r = UdfRegistry { factories: HashMap::new() };
        r.register("getlpmid", Arc::new(lpm::make_getlpmid));
        r.register("str_match_regex", Arc::new(regex::make_str_match_regex));
        r.register("str_find_substr", Arc::new(strfns::make_str_find_substr));
        r.register("str_len", Arc::new(strfns::make_str_len));
        r.register("to_float", Arc::new(strfns::make_to_float));
        r
    }

    /// Register (or replace) an implementation.
    pub fn register(&mut self, name: impl Into<String>, factory: UdfFactory) {
        self.factories.insert(name.into(), factory);
    }

    /// Instantiate a call site.
    pub fn instantiate(
        &self,
        name: &str,
        handle_args: &[Option<Value>],
        resolver: &dyn HandleResolver,
    ) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
        let f = self
            .factories
            .get(name)
            .ok_or_else(|| RuntimeError::msg(format!("no implementation for function `{name}`")))?;
        f(handle_args, resolver)
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.factories.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("UdfRegistry").field("functions", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_instantiate() {
        let reg = UdfRegistry::with_builtins();
        let store = FileStore::new();
        assert!(reg.instantiate("str_len", &[None], &store).is_ok());
        assert!(reg.instantiate("to_float", &[None], &store).is_ok());
        assert!(reg.instantiate("nosuch", &[], &store).is_err());
    }

    #[test]
    fn file_store_prefers_memory() {
        let mut store = FileStore::new();
        store.insert("x.tbl", b"data".to_vec());
        assert_eq!(store.read("x.tbl").unwrap(), b"data");
        assert!(store.read("/definitely/not/here.tbl").is_err());
    }

    #[test]
    fn custom_registration() {
        struct AlwaysOne;
        impl ScalarUdf for AlwaysOne {
            fn eval(&self, _args: &[Value]) -> Option<Value> {
                Some(Value::UInt(1))
            }
        }
        let mut reg = UdfRegistry::with_builtins();
        reg.register("one", Arc::new(|_, _| Ok(Box::new(AlwaysOne))));
        let f = reg.instantiate("one", &[], &FileStore::new()).unwrap();
        assert_eq!(f.eval(&[]), Some(Value::UInt(1)));
    }
}
