//! A byte-oriented regular-expression engine: the `str_match_regex`
//! function.
//!
//! The §4 experiment matches packet payloads against `^[^\n]*HTTP/1.*`,
//! which is "too expensive for an LFTA" and runs in the HFTA. The engine
//! is a Thompson construction simulated Pike-VM style: linear in
//! `pattern × input` with no backtracking, so hostile payloads cannot
//! blow up matching time — a property a packet monitor needs.
//!
//! Supported syntax: literals, `.` (any byte but `\n`), classes
//! `[a-z0-9]` / `[^...]`, escapes (`\n`, `\t`, `\r`, `\0`, `\d`, `\w`,
//! `\s` and their upper-case negations, escaped metacharacters),
//! repetition `*`, `+`, `?`, alternation `|`, grouping `(...)`, and the
//! `^` / `$` anchors at the pattern edges. Unanchored patterns use search
//! (match anywhere) semantics, like grep.
//!
//! The pattern is a pass-by-handle parameter: it is parsed and compiled
//! once at query instantiation.

use crate::udf::{HandleResolver, ScalarUdf};
use crate::value::Value;
use crate::RuntimeError;

/// A compiled regular expression.
///
/// ```
/// use gs_runtime::udf::regex::Regex;
///
/// // The paper's §4 pattern: anchored to the first line of the payload.
/// let re = Regex::compile("^[^\\n]*HTTP/1.*").unwrap();
/// assert!(re.is_match(b"GET / HTTP/1.1\r\nHost: x"));
/// assert!(!re.is_match(b"line one\nHTTP/1.1 later"));
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<State>,
    start: usize,
    anchored_start: bool,
    anchored_end: bool,
}

/// A byte class: sorted inclusive ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Class {
    neg: bool,
    ranges: Vec<(u8, u8)>,
}

impl Class {
    fn lit(b: u8) -> Class {
        Class { neg: false, ranges: vec![(b, b)] }
    }

    fn dot() -> Class {
        // Any byte except newline.
        Class { neg: true, ranges: vec![(b'\n', b'\n')] }
    }

    fn matches(&self, b: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
        inside != self.neg
    }
}

#[derive(Debug, Clone)]
enum State {
    Byte { class: Class, next: usize },
    Split { a: usize, b: usize },
    Match,
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Byte(Class),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
}

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> RuntimeError {
        RuntimeError::msg(format!("regex error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alt(&mut self) -> Result<Ast, RuntimeError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 { branches.pop().expect("one branch") } else { Ast::Alt(branches) })
    }

    fn concat(&mut self) -> Result<Ast, RuntimeError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RuntimeError> {
        let mut a = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    a = Ast::Star(Box::new(a));
                }
                Some(b'+') => {
                    self.bump();
                    a = Ast::Plus(Box::new(a));
                }
                Some(b'?') => {
                    self.bump();
                    a = Ast::Quest(Box::new(a));
                }
                _ => return Ok(a),
            }
        }
    }

    fn atom(&mut self) -> Result<Ast, RuntimeError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed `(`"));
                }
                Ok(inner)
            }
            Some(b'[') => Ok(Ast::Byte(self.class()?)),
            Some(b'.') => Ok(Ast::Byte(Class::dot())),
            Some(b'\\') => Ok(Ast::Byte(self.escape()?)),
            Some(b'*') | Some(b'+') | Some(b'?') => Err(self.err("dangling repetition operator")),
            // `^`/`$` away from the pattern edges are literals (the edges
            // are stripped before parsing).
            Some(b) => Ok(Ast::Byte(Class::lit(b))),
        }
    }

    fn escape(&mut self) -> Result<Class, RuntimeError> {
        let Some(b) = self.bump() else { return Err(self.err("trailing backslash")) };
        Ok(match b {
            b'n' => Class::lit(b'\n'),
            b't' => Class::lit(b'\t'),
            b'r' => Class::lit(b'\r'),
            b'0' => Class::lit(0),
            b'd' => Class { neg: false, ranges: vec![(b'0', b'9')] },
            b'D' => Class { neg: true, ranges: vec![(b'0', b'9')] },
            b'w' => Class {
                neg: false,
                ranges: vec![(b'0', b'9'), (b'A', b'Z'), (b'_', b'_'), (b'a', b'z')],
            },
            b'W' => Class {
                neg: true,
                ranges: vec![(b'0', b'9'), (b'A', b'Z'), (b'_', b'_'), (b'a', b'z')],
            },
            b's' => Class { neg: false, ranges: vec![(b'\t', b'\r'), (b' ', b' ')] },
            b'S' => Class { neg: true, ranges: vec![(b'\t', b'\r'), (b' ', b' ')] },
            other => Class::lit(other),
        })
    }

    fn class(&mut self) -> Result<Class, RuntimeError> {
        let neg = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        let mut first = true;
        loop {
            let Some(b) = self.bump() else { return Err(self.err("unclosed `[`")) };
            let lo = match b {
                b']' if !first => break,
                b'\\' => {
                    let c = self.escape()?;
                    if c.neg || c.ranges.len() != 1 || c.ranges[0].0 != c.ranges[0].1 {
                        // A multi-range escape inside a class: splice in.
                        if c.neg {
                            return Err(self.err("negated escape inside a class"));
                        }
                        ranges.extend(c.ranges);
                        first = false;
                        continue;
                    }
                    c.ranges[0].0
                }
                other => other,
            };
            first = false;
            // Range?
            if self.peek() == Some(b'-')
                && self.pat.get(self.pos + 1).is_some_and(|&n| n != b']')
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some(b'\\') => {
                        let c = self.escape()?;
                        if c.neg || c.ranges.len() != 1 || c.ranges[0].0 != c.ranges[0].1 {
                            return Err(self.err("bad range endpoint"));
                        }
                        c.ranges[0].0
                    }
                    Some(h) => h,
                    None => return Err(self.err("unclosed `[`")),
                };
                if hi < lo {
                    return Err(self.err("reversed range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty class"));
        }
        Ok(Class { neg, ranges })
    }
}

// ---------------------------------------------------------------------
// Thompson construction.
// ---------------------------------------------------------------------

struct Builder {
    prog: Vec<State>,
}

impl Builder {
    /// Compile `ast`; returns (entry, exits-to-patch). Exits are state
    /// indices whose `next`/`b` field should point at whatever follows.
    fn compile(&mut self, ast: &Ast) -> (usize, Vec<Patch>) {
        match ast {
            Ast::Empty => {
                // A Split with both arms unpatched-as-one acts as epsilon.
                let s = self.push(State::Split { a: usize::MAX, b: usize::MAX });
                (s, vec![Patch::SplitA(s), Patch::SplitB(s)])
            }
            Ast::Byte(c) => {
                let s = self.push(State::Byte { class: c.clone(), next: usize::MAX });
                (s, vec![Patch::Next(s)])
            }
            Ast::Concat(parts) => {
                let mut entry = None;
                let mut pending: Vec<Patch> = Vec::new();
                for p in parts {
                    let (e, outs) = self.compile(p);
                    for patch in pending.drain(..) {
                        self.apply(patch, e);
                    }
                    if entry.is_none() {
                        entry = Some(e);
                    }
                    pending = outs;
                }
                (entry.expect("concat is non-empty"), pending)
            }
            Ast::Alt(branches) => {
                let mut outs = Vec::new();
                let mut entries = Vec::new();
                for b in branches {
                    let (e, o) = self.compile(b);
                    entries.push(e);
                    outs.extend(o);
                }
                // Chain of splits fanning out to the branch entries.
                let mut entry = entries.pop().expect("alt is non-empty");
                while let Some(e) = entries.pop() {
                    entry = self.push(State::Split { a: e, b: entry });
                }
                (entry, outs)
            }
            Ast::Star(inner) => {
                let split = self.push(State::Split { a: usize::MAX, b: usize::MAX });
                let (e, outs) = self.compile(inner);
                self.apply(Patch::SplitA(split), e);
                for p in outs {
                    self.apply(p, split);
                }
                (split, vec![Patch::SplitB(split)])
            }
            Ast::Plus(inner) => {
                let (e, outs) = self.compile(inner);
                let split = self.push(State::Split { a: e, b: usize::MAX });
                for p in outs {
                    self.apply(p, split);
                }
                (e, vec![Patch::SplitB(split)])
            }
            Ast::Quest(inner) => {
                let (e, mut outs) = self.compile(inner);
                let split = self.push(State::Split { a: e, b: usize::MAX });
                outs.push(Patch::SplitB(split));
                (split, outs)
            }
        }
    }

    fn push(&mut self, s: State) -> usize {
        self.prog.push(s);
        self.prog.len() - 1
    }

    fn apply(&mut self, p: Patch, target: usize) {
        match (p, &mut self.prog) {
            (Patch::Next(i), prog) => {
                if let State::Byte { next, .. } = &mut prog[i] {
                    *next = target;
                }
            }
            (Patch::SplitA(i), prog) => {
                if let State::Split { a, .. } = &mut prog[i] {
                    *a = target;
                }
            }
            (Patch::SplitB(i), prog) => {
                if let State::Split { b, .. } = &mut prog[i] {
                    *b = target;
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Patch {
    Next(usize),
    SplitA(usize),
    SplitB(usize),
}

impl Regex {
    /// Parse and compile a pattern.
    pub fn compile(pattern: &str) -> Result<Regex, RuntimeError> {
        let mut pat = pattern.as_bytes();
        let anchored_start = pat.first() == Some(&b'^');
        if anchored_start {
            pat = &pat[1..];
        }
        // `$` at the very end anchors unless escaped.
        let anchored_end = pat.last() == Some(&b'$')
            && !(pat.len() >= 2 && pat[pat.len() - 2] == b'\\');
        if anchored_end {
            pat = &pat[..pat.len() - 1];
        }
        let mut parser = Parser { pat, pos: 0 };
        let ast = parser.alt()?;
        if parser.pos != pat.len() {
            return Err(parser.err("unbalanced `)`"));
        }
        let mut builder = Builder { prog: Vec::new() };
        let (start, outs) = builder.compile(&ast);
        let m = builder.push(State::Match);
        for p in outs {
            builder.apply(p, m);
        }
        Ok(Regex { prog: builder.prog, start, anchored_start, anchored_end })
    }

    /// Whether the pattern matches anywhere in `hay` (respecting anchors).
    pub fn is_match(&self, hay: &[u8]) -> bool {
        // Pike-VM simulation with a visited-generation trick.
        let n = self.prog.len();
        let mut cur: Vec<usize> = Vec::with_capacity(n);
        let mut next: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![u32::MAX; n];
        let mut generation: u32 = 0;

        let mut matched_midway = false;
        add_state(&self.prog, self.start, &mut cur, &mut seen, generation, &mut matched_midway);
        if matched_midway && !self.anchored_end {
            return true;
        }
        for (i, &b) in hay.iter().enumerate() {
            generation += 1;
            let mut matched_now = false;
            for &s in &cur {
                if let State::Byte { class, next: nx } = &self.prog[s] {
                    if class.matches(b) {
                        add_state(&self.prog, *nx, &mut next, &mut seen, generation, &mut matched_now);
                    }
                }
            }
            if !self.anchored_start {
                // Search semantics: a match may start at the next byte.
                add_state(
                    &self.prog,
                    self.start,
                    &mut next,
                    &mut seen,
                    generation,
                    &mut matched_now,
                );
            }
            if matched_now {
                if !self.anchored_end {
                    return true;
                }
                if i + 1 == hay.len() {
                    return true;
                }
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
            if cur.is_empty() && self.anchored_start {
                return false;
            }
        }
        // Anchored-end (or empty-input) check: was Match in the final set?
        if hay.is_empty() {
            return matched_midway;
        }
        self.anchored_end
            && cur.iter().any(|&s| matches!(self.prog[s], State::Match))
    }

    /// Number of NFA states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.prog.len()
    }
}

fn add_state(
    prog: &[State],
    s: usize,
    list: &mut Vec<usize>,
    seen: &mut [u32],
    generation: u32,
    matched: &mut bool,
) {
    if seen[s] == generation {
        return;
    }
    seen[s] = generation;
    match &prog[s] {
        State::Split { a, b } => {
            add_state(prog, *a, list, seen, generation, matched);
            add_state(prog, *b, list, seen, generation, matched);
        }
        State::Match => {
            *matched = true;
            list.push(s);
        }
        State::Byte { .. } => list.push(s),
    }
}

/// The `str_match_regex(text, 'pattern')` instance.
pub struct StrMatchRegex {
    re: Regex,
}

impl ScalarUdf for StrMatchRegex {
    fn eval(&self, args: &[Value]) -> Option<Value> {
        let text = args.first()?.as_bytes()?;
        Some(Value::Bool(self.re.is_match(text)))
    }
}

/// Factory wired into the registry: compiles the pattern handle.
pub fn make_str_match_regex(
    handles: &[Option<Value>],
    _resolver: &dyn HandleResolver,
) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
    let pat = match handles.get(1) {
        Some(Some(Value::Str(s))) => String::from_utf8_lossy(s).into_owned(),
        _ => {
            return Err(RuntimeError::msg(
                "str_match_regex requires its pattern handle to be bound at instantiation",
            ))
        }
    };
    Ok(Box::new(StrMatchRegex { re: Regex::compile(&pat)? }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &[u8]) -> bool {
        Regex::compile(pat).unwrap_or_else(|e| panic!("compile `{pat}`: {e}")).is_match(hay)
    }

    #[test]
    fn paper_pattern() {
        let pat = "^[^\\n]*HTTP/1.*";
        assert!(m(pat, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(m(pat, b"HTTP/1.0 200 OK"));
        assert!(!m(pat, b"random tunneled bytes"));
        // HTTP/1 after the first newline must NOT match.
        assert!(!m(pat, b"line one\nGET / HTTP/1.1"));
        // ...but a substring search would be fooled; that's the point.
        assert!(m("HTTP/1", b"line one\nGET / HTTP/1.1"));
    }

    #[test]
    fn literals_and_search_semantics() {
        assert!(m("abc", b"abc"));
        assert!(m("abc", b"xxabcxx"));
        assert!(!m("abc", b"ab"));
        assert!(!m("abc", b"axbxc"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", b"abc"));
        assert!(!m("^ab", b"xab"));
        assert!(m("bc$", b"abc"));
        assert!(!m("bc$", b"bcd"));
        assert!(m("^abc$", b"abc"));
        assert!(!m("^abc$", b"abcd"));
        assert!(m("^$", b""));
        assert!(!m("^$", b"x"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", b"ac"));
        assert!(m("ab*c", b"abbbc"));
        assert!(m("ab+c", b"abc"));
        assert!(!m("ab+c", b"ac"));
        assert!(m("ab?c", b"ac"));
        assert!(m("ab?c", b"abc"));
        assert!(!m("^a+$", b"aab"));
        assert!(m("(ab)+", b"xxababxx"));
        assert!(m("(ab)*c", b"c"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", b"hotdog"));
        assert!(m("cat|dog", b"catnip"));
        assert!(!m("^(cat|dog)$", b"cow"));
        assert!(m("^(GET|POST|HEAD) ", b"POST /x HTTP/1.0"));
        assert!(m("a(b|c)*d", b"abcbcd"));
    }

    #[test]
    fn classes() {
        assert!(m("[a-z]+", b"hello"));
        assert!(!m("^[a-z]+$", b"Hello"));
        assert!(m("[^0-9]", b"a"));
        assert!(!m("^[^0-9]+$", b"a1"));
        assert!(m("[]x]", b"]")); // literal ] first in class
        assert!(m("[-x]", b"-")); // literal - at edge
        assert!(m("^[\\d]+$", b"123"));
        assert!(m("[\\]]", b"]"));
    }

    #[test]
    fn escapes() {
        assert!(m("a\\.b", b"a.b"));
        assert!(!m("a\\.b", b"axb"));
        assert!(m("\\d+", b"no 42 here"));
        assert!(m("^\\w+$", b"under_score9"));
        assert!(!m("^\\w+$", b"has space"));
        assert!(m("\\s", b"a b"));
        assert!(m("a\\\\b", b"a\\b"));
        assert!(m("x\\$", b"x$"));
    }

    #[test]
    fn dot_excludes_newline() {
        assert!(m("^a.c$", b"abc"));
        assert!(!m("^a.c$", b"a\nc"));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("(ab").is_err());
        assert!(Regex::compile("ab)").is_err());
        assert!(Regex::compile("[ab").is_err());
        assert!(Regex::compile("*a").is_err());
        assert!(Regex::compile("a\\").is_err());
        assert!(Regex::compile("[z-a]").is_err());
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b against aaaa...c is exponential for backtrackers; the
        // Pike VM stays linear.
        let hay = vec![b'a'; 4096];
        let start = std::time::Instant::now();
        assert!(!m("^(a+)+b$", &hay));
        assert!(start.elapsed().as_millis() < 2_000, "matching must stay linear");
    }

    #[test]
    fn udf_instance() {
        let f = make_str_match_regex(
            &[None, Some(Value::Str(bytes::Bytes::from_static(b"^[^\\n]*HTTP/1.*")))],
            &crate::udf::FileStore::new(),
        )
        .unwrap();
        assert_eq!(
            f.eval(&[Value::Str(bytes::Bytes::from_static(b"GET / HTTP/1.1"))]),
            Some(Value::Bool(true))
        );
        assert_eq!(
            f.eval(&[Value::Str(bytes::Bytes::from_static(b"nope"))]),
            Some(Value::Bool(false))
        );
        assert_eq!(f.eval(&[Value::UInt(3)]), None);
        assert!(make_str_match_regex(&[None, None], &crate::udf::FileStore::new()).is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", b""));
        assert!(m("", b"anything"));
        assert!(m("a||b", b"zzz"), "empty alternation branch matches");
    }
}
