//! Longest-prefix matching: the `getlpmid` function.
//!
//! "The getlpmid function performs longest prefix matching — that is, it
//! identifies which subnet an IP address belongs to. Longest prefix
//! matching is a common network analysis activity, and researchers have
//! developed special fast algorithms for it" (paper §2.2). The structure
//! here is a binary (Patricia-style, path-unchanged) trie over address
//! bits: lookups walk at most 32 nodes and remember the deepest id seen.
//!
//! The pass-by-handle parameter names the prefix table file
//! (`peerid.tbl`); the handle registration step parses it and builds the
//! trie once per instantiation.

use crate::udf::{HandleResolver, ScalarUdf};
use crate::value::Value;
use crate::RuntimeError;
use gs_packet::ip::parse_ipv4;

/// A binary trie mapping IPv4 prefixes to ids.
///
/// ```
/// use gs_runtime::udf::lpm::LpmTrie;
///
/// let trie = LpmTrie::parse_table("10.0.0.0/8 7018\n10.1.0.0/16 42\n").unwrap();
/// assert_eq!(trie.lookup(0x0a020304), Some(7018)); // 10.2.3.4 -> /8
/// assert_eq!(trie.lookup(0x0a010203), Some(42));   // 10.1.2.3 -> longest /16
/// assert_eq!(trie.lookup(0x0b000001), None);       // no covering prefix
/// ```
#[derive(Debug, Default)]
pub struct LpmTrie {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Node {
    children: [u32; 2], // 0 = absent (node 0 is the root; nothing points to it)
    id: Option<u32>,
}

impl LpmTrie {
    /// Empty trie.
    pub fn new() -> LpmTrie {
        LpmTrie { nodes: vec![Node::default()] }
    }

    /// Insert `prefix/len -> id`. Later inserts of the same prefix win.
    pub fn insert(&mut self, prefix: u32, len: u8, id: u32) {
        assert!(len <= 32, "prefix length out of range");
        let mut cur = 0usize;
        for depth in 0..len {
            let bit = ((prefix >> (31 - depth)) & 1) as usize;
            let next = self.nodes[cur].children[bit] as usize;
            cur = if next == 0 {
                self.nodes.push(Node::default());
                let idx = self.nodes.len() - 1;
                self.nodes[cur].children[bit] = idx as u32;
                idx
            } else {
                next
            };
        }
        self.nodes[cur].id = Some(id);
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut cur = 0usize;
        let mut best = self.nodes[0].id;
        for depth in 0..32 {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let next = self.nodes[cur].children[bit] as usize;
            if next == 0 {
                break;
            }
            cur = next;
            if let Some(id) = self.nodes[cur].id {
                best = Some(id);
            }
        }
        best
    }

    /// Number of trie nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Parse a `peerid.tbl`-style table: one `a.b.c.d/len id` per line;
    /// blank lines and `#` comments allowed.
    pub fn parse_table(text: &str) -> Result<LpmTrie, RuntimeError> {
        let mut trie = LpmTrie::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || {
                RuntimeError::msg(format!(
                    "prefix table line {}: expected `a.b.c.d/len id`, got `{line}`",
                    lineno + 1
                ))
            };
            let (net, rest) = line.split_once('/').ok_or_else(bad)?;
            let (len, id) = rest.split_once(char::is_whitespace).ok_or_else(bad)?;
            let prefix = parse_ipv4(net.trim()).ok_or_else(bad)?;
            let len: u8 = len.trim().parse().map_err(|_| bad())?;
            if len > 32 {
                return Err(bad());
            }
            let id: u32 = id.trim().parse().map_err(|_| bad())?;
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            trie.insert(prefix & mask, len, id);
        }
        Ok(trie)
    }
}

/// The `getlpmid(addr, 'table')` instance.
pub struct GetLpmId {
    trie: LpmTrie,
}

impl ScalarUdf for GetLpmId {
    fn eval(&self, args: &[Value]) -> Option<Value> {
        let addr = match args.first()? {
            Value::Ip(a) => *a,
            Value::UInt(a) => u32::try_from(*a).ok()?,
            _ => return None,
        };
        // Partial semantics: no matching prefix discards the tuple.
        self.trie.lookup(addr).map(|id| Value::UInt(u64::from(id)))
    }
}

/// Factory wired into the registry: reads and parses the table handle.
pub fn make_getlpmid(
    handles: &[Option<Value>],
    resolver: &dyn HandleResolver,
) -> Result<Box<dyn ScalarUdf>, RuntimeError> {
    let name = match handles.get(1) {
        Some(Some(Value::Str(s))) => String::from_utf8_lossy(s).into_owned(),
        _ => {
            return Err(RuntimeError::msg(
                "getlpmid requires its table-name handle to be bound at instantiation",
            ))
        }
    };
    let bytes = resolver.read(&name)?;
    let text = String::from_utf8_lossy(&bytes);
    let trie = LpmTrie::parse_table(&text)?;
    Ok(Box::new(GetLpmId { trie }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::FileStore;

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTrie::new();
        t.insert(0x0a000000, 8, 1); // 10/8 -> 1
        t.insert(0x0a010000, 16, 2); // 10.1/16 -> 2
        t.insert(0x0a010100, 24, 3); // 10.1.1/24 -> 3
        assert_eq!(t.lookup(0x0a020304), Some(1));
        assert_eq!(t.lookup(0x0a01ff01), Some(2));
        assert_eq!(t.lookup(0x0a0101ff), Some(3));
        assert_eq!(t.lookup(0x0b000001), None);
    }

    #[test]
    fn default_route_and_reinsert() {
        let mut t = LpmTrie::new();
        t.insert(0, 0, 99); // 0/0 default
        t.insert(0xc0a80000, 16, 5);
        assert_eq!(t.lookup(0x01020304), Some(99));
        assert_eq!(t.lookup(0xc0a80a0a), Some(5));
        t.insert(0xc0a80000, 16, 6); // replace
        assert_eq!(t.lookup(0xc0a80a0a), Some(6));
    }

    #[test]
    fn parse_table_with_comments() {
        let t = LpmTrie::parse_table(
            "# AT&T peers\n\
             12.0.0.0/8 7018\n\
             \n\
             12.34.0.0/16 42\n",
        )
        .unwrap();
        assert_eq!(t.lookup(parse_ipv4("12.1.1.1").unwrap()), Some(7018));
        assert_eq!(t.lookup(parse_ipv4("12.34.9.9").unwrap()), Some(42));
    }

    #[test]
    fn parse_table_errors() {
        assert!(LpmTrie::parse_table("nonsense").is_err());
        assert!(LpmTrie::parse_table("1.2.3.4/40 7").is_err());
        assert!(LpmTrie::parse_table("1.2.3.4/8").is_err());
        assert!(LpmTrie::parse_table("999.2.3.4/8 7").is_err());
    }

    #[test]
    fn masked_host_bits_ignored_on_parse() {
        // 10.1.2.3/8 should behave as 10.0.0.0/8.
        let t = LpmTrie::parse_table("10.1.2.3/8 4").unwrap();
        assert_eq!(t.lookup(parse_ipv4("10.200.0.1").unwrap()), Some(4));
    }

    #[test]
    fn udf_instance_partial_semantics() {
        let mut store = FileStore::new();
        store.insert("peerid.tbl", b"10.0.0.0/8 7\n".to_vec());
        let f = make_getlpmid(
            &[None, Some(Value::Str(bytes::Bytes::from_static(b"peerid.tbl")))],
            &store,
        )
        .unwrap();
        assert_eq!(f.eval(&[Value::Ip(0x0a000001)]), Some(Value::UInt(7)));
        assert_eq!(f.eval(&[Value::Ip(0x0b000001)]), None, "no match discards the tuple");
        assert_eq!(f.eval(&[Value::Bool(true)]), None);
    }

    #[test]
    fn factory_requires_handle() {
        assert!(make_getlpmid(&[None, None], &FileStore::new()).is_err());
    }

    #[test]
    fn agrees_with_reference_linear_scan() {
        // Cross-check against a straightforward reference on a generated
        // table (the netgen generator's tables are validated the same way
        // in the integration suite).
        let entries: Vec<(u32, u8, u32)> = vec![
            (0x0a000000, 8, 1),
            (0x0a010000, 16, 2),
            (0x0a010100, 24, 3),
            (0xc0000000, 4, 4),
            (0xffff0000, 16, 5),
        ];
        let mut trie = LpmTrie::new();
        for &(p, l, id) in &entries {
            trie.insert(p, l, id);
        }
        let reference = |addr: u32| {
            entries
                .iter()
                .filter(|(p, l, _)| {
                    let mask = if *l == 0 { 0 } else { u32::MAX << (32 - l) };
                    addr & mask == *p
                })
                .max_by_key(|(_, l, _)| *l)
                .map(|(_, _, id)| *id)
        };
        for addr in
            [0u32, 0x0a000001, 0x0a010101, 0x0a01ffff, 0xc1020304, 0xffff1234, 0xdeadbeef]
        {
            assert_eq!(trie.lookup(addr), reference(addr), "addr {addr:#x}");
        }
    }
}
