//! The paper's `getlpmid` example (§2.2): per-peer traffic accounting
//! over a Netflow feed.
//!
//! ```text
//! Select peerid, tb, count(*) FROM nf0.netflow
//! Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid
//! ```
//!
//! `getlpmid` is a *partial* function performing longest-prefix matching
//! against an AS prefix table loaded once at instantiation (pass-by-handle
//! parameter); flows matching no peer prefix are silently discarded, like
//! a failed foreign-key join.
//!
//! Run with: `cargo run -p gs-examples --bin netflow_peers`

use gigascope::Gigascope;
use gs_netgen::netflowgen::{generate_netflow, NetflowGenConfig};
use gs_netgen::prefixes::{generate_prefixes, render_table};
use gs_packet::capture::LinkType;
use std::collections::BTreeMap;

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("nf0", 0, LinkType::NetflowRecord);

    // A synthetic routing table standing in for the AT&T peer list. The
    // generated Netflow destinations live in 192.168/16, so add nested
    // peer prefixes there (the /20 inside the /16 exercises *longest*
    // prefix matching) and leave part of the space uncovered so the
    // partial-function discard path is visible too.
    let prefixes = generate_prefixes(11, 40);
    let mut table = render_table(&prefixes);
    table.push_str("192.168.0.0/18 900\n");
    table.push_str("192.168.0.0/20 901\n");
    table.push_str("10.0.0.0/8 902\n");
    gs.add_file("peerid.tbl", table.into_bytes());
    println!("loaded {} prefixes into peerid.tbl", prefixes.len() + 3);

    gs.add_program(
        "DEFINE { query_name peer_counts; }\n\
         Select peerid, tb, count(*), sum(octets) FROM nf0.netflow\n\
         Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid",
    )
    .expect("query compiles");

    // Five minutes of router exports (dumped every 30 s, so `last` is
    // monotone and `first` is banded-increasing — the §2.1 example).
    let records = generate_netflow(&NetflowGenConfig {
        seed: 3,
        flow_count: 20_000,
        duration_ms: 300_000,
        ..NetflowGenConfig::default()
    });
    println!("replaying {} Netflow records", records.len());
    let out = gs.run_capture(records.into_iter(), &["peer_counts"]).expect("run");

    // Render a per-minute × per-peer table.
    let mut by_minute: BTreeMap<u64, Vec<(u64, u64, u64)>> = BTreeMap::new();
    for t in out.stream("peer_counts") {
        let peer = t.get(0).as_uint().unwrap();
        let tb = t.get(1).as_uint().unwrap();
        let cnt = t.get(2).as_uint().unwrap();
        let oct = t.get(3).as_uint().unwrap();
        by_minute.entry(tb).or_default().push((peer, cnt, oct));
    }
    for (tb, mut peers) in by_minute {
        peers.sort_by_key(|&(_, cnt, _)| std::cmp::Reverse(cnt));
        println!("\nminute {tb}: top peers by flows");
        for (peer, cnt, oct) in peers.into_iter().take(5) {
            println!("  peer {peer:>4}: {cnt:>6} flows, {oct:>12} octets");
        }
    }
    let matched: u64 =
        out.stream("peer_counts").iter().map(|t| t.get(2).as_uint().unwrap()).sum();
    let discarded = out.stats.packets - matched;
    println!(
        "\n{matched} records matched a peer prefix; {discarded} matched none and were \
         discarded (partial-function semantics)"
    );
    assert!(matched > 0, "the peer table must cover part of the flow space");
    assert!(discarded > 0, "part of the flow space is deliberately uncovered");
}
