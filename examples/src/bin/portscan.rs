//! Intrusion detection: port-scan flagging (§1 lists "network attack and
//! intrusion detection" among Gigascope's applications).
//!
//! A scanner touches many destination ports from one source in a short
//! window. The query set counts per-(second, source) activity and flags
//! sources whose per-second packet count exceeds a tunable threshold —
//! the classic first-cut scan detector, expressed as plain GSQL with a
//! query parameter so the analyst can tighten it on the fly.
//!
//! Run with: `cargo run -p gs-examples --bin portscan`

use gigascope::{Gigascope, ParamBindings, Value};
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SCANNER: u32 = 0x0a00_00ff; // 10.0.0.255

/// Background flows plus one scanner sweeping ports during seconds 3-5.
fn traffic(seed: u64) -> Vec<CapPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    // Normal chatter: 40 hosts, a few packets per second each.
    for sec in 0..10u64 {
        for _ in 0..200 {
            let src = 0x0a00_0000 | rng.gen_range(1..41);
            let f = FrameBuilder::tcp(src, 0xc0a8_0001, rng.gen_range(1024..65000), 443)
                .payload(b"normal")
                .build_ethernet();
            out.push(CapPacket::full(
                sec * 1_000_000_000 + rng.gen_range(0..1_000_000_000),
                0,
                LinkType::Ethernet,
                f,
            ));
        }
    }
    // The scan: 600 ports/second for three seconds.
    for sec in 3..6u64 {
        for k in 0..600u16 {
            let f = FrameBuilder::tcp(SCANNER, 0xc0a8_0001, 55555, 1 + k)
                .tcp_flags(gs_packet::tcp::FLAG_SYN)
                .build_ethernet();
            out.push(CapPacket::full(
                sec * 1_000_000_000 + u64::from(k) * 1_500_000,
                0,
                LinkType::Ethernet,
                f,
            ));
        }
    }
    out.sort_by_key(|p| p.ts_ns);
    out
}

fn main() {
    let mut gs = Gigascope::new();
    gs.add_program(
        "INTERFACE eth0 0 ether; \
         DEFINE { query_name per_src; } \
         Select time, srcIP, count(*) From eth0.tcp \
         Group By time, srcIP; \
         DEFINE { query_name suspects; } \
         Select time, srcIP, count(*) as hits From eth0.tcp \
         Group By time, srcIP \
         Having count(*) > $threshold",
    )
    .expect("queries compile");
    gs.set_params("suspects", ParamBindings::new().with("threshold", Value::UInt(100)))
        .expect("threshold binds");

    let pkts = traffic(2003);
    println!("replaying {} packets (scan active seconds 3-5)", pkts.len());
    let out = gs.run_capture(pkts.into_iter(), &["per_src", "suspects"]).expect("run");

    println!("\nflagged (second, source, hits):");
    let suspects = out.stream("suspects");
    for t in suspects {
        println!("  sec {}  {}  {} pkts", t.get(0), t.get(1), t.get(2));
    }
    assert_eq!(suspects.len(), 3, "the scanner is flagged in each active second");
    assert!(
        suspects.iter().all(|t| t.get(1) == &Value::Ip(SCANNER)),
        "no normal host crosses the threshold"
    );
    println!(
        "\n{} per-source rows total; only the scanner exceeded the threshold.",
        out.stream("per_src").len()
    );
}
