//! BGP monitoring (§1 lists "router configuration analysis (e.g. BGP
//! monitoring)" among Gigascope's applications).
//!
//! Two queries over a collector feed of simplified BGP updates:
//!
//! - per-minute update counts per peer;
//! - per-minute withdrawal storms: minutes where a peer withdrew more
//!   than a parameterized threshold of prefixes (query parameters are
//!   "specified at query instantiation time and ... changed on-the-fly").
//!
//! Run with: `cargo run -p gs-examples --bin bgp_monitor`

use gigascope::{Gigascope, ParamBindings, Value};
use gs_netgen::bgpgen::{generate_bgp, BgpGenConfig};
use gs_packet::capture::LinkType;

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("bgp0", 0, LinkType::BgpUpdate);
    gs.add_program(
        "DEFINE { query_name updates_per_peer; }\n\
         Select tb, peer, count(*) FROM bgp0.bgp\n\
         Group By time/60 as tb, peer;\n\
         \n\
         DEFINE { query_name withdraw_storms; }\n\
         Select tb, peer, count(*) as n FROM bgp0.bgp\n\
         Where msgType = 2\n\
         Group By time/60 as tb, peer\n\
         Having count(*) > $threshold",
    )
    .expect("queries compile");

    // ~17 minutes of updates from 6 peers, 30% withdrawals.
    let feed = generate_bgp(&BgpGenConfig {
        seed: 9,
        peers: 6,
        updates: 200_000,
        mean_gap_ms: 5.0,
        withdraw_fraction: 0.3,
        ..BgpGenConfig::default()
    });
    println!("replaying {} BGP updates", feed.len());

    for threshold in [550u64, 650] {
        gs.set_params(
            "withdraw_storms",
            ParamBindings::new().with("threshold", Value::UInt(threshold)),
        )
        .expect("parameter binds");
        let out = gs
            .run_capture(feed.clone().into_iter(), &["updates_per_peer", "withdraw_storms"])
            .expect("run");
        let storms = out.stream("withdraw_storms");
        println!(
            "\nthreshold {threshold}: {} peer-minutes flagged as withdrawal storms",
            storms.len()
        );
        for t in storms.iter().take(5) {
            println!(
                "  minute {} peer {} -> {} withdrawals",
                t.get(0),
                t.get(1),
                t.get(2)
            );
        }
        if threshold == 550 {
            let total_rows = out.stream("updates_per_peer").len();
            println!("  (baseline: {total_rows} peer-minute rows overall)");
        }
    }
}
