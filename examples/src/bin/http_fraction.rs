//! The §4 experiment's query: what fraction of port-80 traffic is really
//! HTTP? ("port 80 is used to tunnel through firewalls").
//!
//! Two aggregation queries run side by side: all port-80 packets per
//! second, and port-80 packets whose payload matches the paper's regex
//! `^[^\n]*HTTP/1.*`. The regex is "too expensive for an LFTA", so the
//! compiler splits the second query: the LFTA filters port 80 at the
//! capture point and the HFTA does the matching.
//!
//! Run with: `cargo run -p gs-examples --bin http_fraction`

use gigascope::Gigascope;
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use std::collections::BTreeMap;

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    let infos = gs
        .add_program(
            "DEFINE { query_name port80_all; }\n\
             Select time, count(*) From eth0.tcp Where destPort = 80 Group By time;\n\
             \n\
             DEFINE { query_name port80_http; }\n\
             Select time, count(*) From eth0.tcp\n\
             Where destPort = 80 and str_match_regex(payload, '^[^\\n]*HTTP/1.*')\n\
             Group By time",
        )
        .expect("queries compile");
    for i in &infos {
        println!("deployed `{}`: {} LFTA(s), HFTA: {}", i.name, i.lftas, i.has_hfta);
    }

    // 3 seconds of traffic; 70% of port-80 payloads are genuine HTTP.
    let cfg = MixConfig {
        duration_ms: 3_000,
        seed: 42,
        http_rate_mbps: 60.0,
        http_match_fraction: 0.7,
        background_rate_mbps: 100.0,
        ..MixConfig::default()
    };
    let mut mix = PacketMix::new(cfg);
    let out = gs.run_capture(&mut mix, &["port80_all", "port80_http"]).expect("run");
    let truth = mix.truth();

    let collect = |name: &str| -> BTreeMap<u64, u64> {
        out.stream(name)
            .iter()
            .map(|t| (t.get(0).as_uint().unwrap(), t.get(1).as_uint().unwrap()))
            .collect()
    };
    let all = collect("port80_all");
    let http = collect("port80_http");

    println!("\nsec   port80   http   fraction");
    let mut tot_all = 0u64;
    let mut tot_http = 0u64;
    for (sec, n) in &all {
        let h = http.get(sec).copied().unwrap_or(0);
        tot_all += n;
        tot_http += h;
        println!("{sec:>3}  {n:>7}  {h:>5}   {:.3}", h as f64 / *n as f64);
    }
    println!(
        "\ntotal: {}/{} = {:.3} measured vs {:.3} generated ground truth",
        tot_http,
        tot_all,
        tot_http as f64 / tot_all as f64,
        truth.http_match_pkts as f64 / truth.port80_pkts as f64,
    );
    assert_eq!(tot_all, truth.port80_pkts, "no port-80 packet may be lost");
    assert_eq!(tot_http, truth.http_match_pkts, "regex must agree with ground truth");
    println!("measured counts match generator ground truth exactly.");
}
