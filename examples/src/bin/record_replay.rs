//! Record a capture to the trace format, replay it deterministically, and
//! check the query answers match the live run — the workflow a network
//! analyst uses to debug a query against a saved incident ("most network
//! analysis is done via ad-hoc tools on network trace dumps", paper §1;
//! Gigascope replaces the ad-hoc tools, not the traces).
//!
//! Run with: `cargo run -p gs-examples --bin record_replay`

use gigascope::Gigascope;
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::{read_trace, write_trace, CapPacket};

const PROGRAM: &str = "INTERFACE eth0 0 ether; \
     DEFINE { query_name persec; } \
     Select time, count(*), sum(len) From eth0.tcp Where destPort = 80 Group By time";

fn run(pkts: Vec<CapPacket>) -> Vec<(u64, u64, u64)> {
    let mut gs = Gigascope::new();
    gs.add_program(PROGRAM).expect("program compiles");
    let out = gs.run_capture(pkts.into_iter(), &["persec"]).expect("run");
    let mut rows: Vec<(u64, u64, u64)> = out
        .stream("persec")
        .iter()
        .map(|t| {
            (
                t.get(0).as_uint().unwrap(),
                t.get(1).as_uint().unwrap(),
                t.get(2).as_uint().unwrap(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn main() {
    // "Live" capture.
    let live: Vec<CapPacket> = PacketMix::new(MixConfig {
        seed: 99,
        duration_ms: 2_000,
        http_rate_mbps: 45.0,
        background_rate_mbps: 60.0,
        ..MixConfig::default()
    })
    .collect();
    let live_rows = run(live.clone());

    // Record to the trace container and write it out.
    let trace_bytes = write_trace(&live);
    let path = std::env::temp_dir().join("gigascope_demo.gsc");
    std::fs::write(&path, &trace_bytes).expect("trace written");
    println!(
        "recorded {} packets ({} KiB) to {}",
        live.len(),
        trace_bytes.len() / 1024,
        path.display()
    );

    // Replay from disk.
    let loaded = read_trace(&std::fs::read(&path).expect("trace read")).expect("trace parses");
    assert_eq!(loaded.len(), live.len());
    let replay_rows = run(loaded);

    println!("\nsec   pkts      bytes   (live == replay: {})", live_rows == replay_rows);
    for (sec, n, b) in &live_rows {
        println!("{sec:>3}  {n:>5}  {b:>9}");
    }
    assert_eq!(live_rows, replay_rows, "replay must be bit-identical to live");
    println!(
        "\nreplay this trace yourself:\n  cargo run -p gigascope --bin gsq -- \
         --program <program.gsql> --trace {}",
        path.display()
    );
    let _ = std::fs::remove_file(&path);
}
