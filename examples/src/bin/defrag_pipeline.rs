//! A user-written query node: IP defragmentation in front of the query
//! system (§3).
//!
//! "Users can write their own query nodes to implement special operators
//! by following this API. For example, we have implemented a special IP
//! defragmentation operator in this manner and have built a query tree
//! using it. The ability to bypass the existing query system when
//! necessary is a critical flexibility in our application domain."
//!
//! Fragmented TCP datagrams hide their transport header in every fragment
//! but the first, so a plain `destPort = 80` query attributes only the
//! first fragment's bytes to the flow and misses the rest. Running the
//! same query behind the defragmentation node recovers the true byte
//! counts.
//!
//! Run with: `cargo run -p gs-examples --bin defrag_pipeline`

use gigascope::Gigascope;
use gs_packet::builder::FrameBuilder;
use gs_packet::capture::{CapPacket, LinkType};
use gs_packet::ip::{Ipv4Header, FLAG_MF, PROTO_TCP};
use gs_runtime::ops::defrag::Defragmenter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate port-80 datagrams; a third of them are split into fragments.
fn traffic(seed: u64, n: usize) -> Vec<CapPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..n {
        let ts = (i as u64) * 2_000_000; // 2 ms apart
        let payload: Vec<u8> = (0..400).map(|_| rng.gen()).collect();
        let id = i as u16;
        if i % 3 == 0 {
            // Fragment the datagram: rebuild the transport bytes and cut
            // them into 160-byte pieces.
            let whole = FrameBuilder::tcp(0x0a000001, 0x0a000002, 2000, 80)
                .payload(&payload)
                .ip_id(id)
                .build_raw_ip();
            let transport = &whole[20..];
            let mut off = 0usize;
            while off < transport.len() {
                let end = (off + 160).min(transport.len());
                let more = end < transport.len();
                let mut bytes = Vec::new();
                Ipv4Header {
                    header_len: 20,
                    tos: 0,
                    total_len: (20 + end - off) as u16,
                    id,
                    flags_frag: ((off / 8) as u16) | if more { FLAG_MF } else { 0 },
                    ttl: 64,
                    protocol: PROTO_TCP,
                    checksum: 0,
                    src: 0x0a000001,
                    dst: 0x0a000002,
                }
                .encode(&mut bytes)
                .expect("20-byte header");
                bytes.extend_from_slice(&transport[off..end]);
                out.push(CapPacket::full(ts, 0, LinkType::RawIp, bytes.into()));
                off = end;
            }
        } else {
            let f = FrameBuilder::tcp(0x0a000001, 0x0a000002, 2000, 80)
                .payload(&payload)
                .ip_id(id)
                .build_raw_ip();
            out.push(CapPacket::full(ts, 0, LinkType::RawIp, f));
        }
    }
    out
}

/// Returns (qualified tuples, total bytes attributed to port 80).
fn account_port80(gs: &Gigascope, pkts: Vec<CapPacket>) -> (usize, u64) {
    let out = gs.run_capture(pkts.into_iter(), &["port80"]).expect("run");
    let rows = out.stream("port80");
    let bytes = rows.iter().map(|t| t.get(1).as_uint().unwrap()).sum();
    (rows.len(), bytes)
}

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::RawIp);
    gs.add_program(
        "DEFINE { query_name port80; } \
         Select time, totalLen From eth0.tcp Where destPort = 80",
    )
    .expect("query compiles");

    let n_datagrams = 300;
    let raw = traffic(5, n_datagrams);
    println!("{n_datagrams} datagrams on the wire, {} packets after fragmentation", raw.len());

    // Without defragmentation: only first fragments expose the TCP
    // header, so only their bytes are attributed to the flow.
    let (direct_n, direct_bytes) = account_port80(&gs, raw.clone());

    // With the user-written defragmentation node in front.
    let mut defrag = Defragmenter::new();
    let mut reassembled = Vec::new();
    for p in raw {
        defrag.push(p, &mut reassembled);
    }
    println!(
        "defragmenter: {} in, {} reassembled, {} passed through",
        defrag.stats.packets_in, defrag.stats.reassembled, defrag.stats.passthrough
    );
    let (defrag_n, defrag_bytes) = account_port80(&gs, reassembled);

    println!("\n{:<28}{:>8}{:>12}", "", "tuples", "bytes");
    println!("{:<28}{:>8}{:>12}", "without defragmentation", direct_n, direct_bytes);
    println!("{:<28}{:>8}{:>12}", "with defragmentation", defrag_n, defrag_bytes);
    assert_eq!(defrag_n, n_datagrams, "defragmentation recovers every datagram");
    assert!(
        direct_bytes < defrag_bytes,
        "non-first fragments' bytes are invisible without reassembly"
    );
}
