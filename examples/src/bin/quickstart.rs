//! Quickstart: the paper's first example query (§2.2) over synthetic
//! traffic.
//!
//! ```text
//! DEFINE { query_name tcpdest; }
//! Select destIP, destPort, time From eth0.tcp
//! Where IPVersion = 4 and Protocol = 6
//! ```
//!
//! Run with: `cargo run -p gs-examples --bin quickstart`

use gigascope::Gigascope;
use gs_netgen::{MixConfig, PacketMix};
use gs_packet::capture::LinkType;

fn main() {
    let mut gs = Gigascope::new();
    gs.add_interface("eth0", 0, LinkType::Ethernet);

    let infos = gs
        .add_program(
            "DEFINE { query_name tcpdest; }\n\
             Select destIP, destPort, time From eth0.tcp\n\
             Where IPVersion = 4 and Protocol = 6",
        )
        .expect("query compiles");
    let info = &infos[0];
    println!(
        "deployed `{}`: {} LFTA(s), HFTA: {}",
        info.name,
        info.lftas,
        if info.has_hfta { "yes" } else { "no (runs entirely at the capture point)" }
    );
    println!(
        "output schema: {}",
        info.schema
            .iter()
            .map(|c| format!("{}:{} [{}]", c.name, c.ty, c.order))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 200 ms of mixed traffic: ~60 Mbit/s of port-80 plus background.
    let mix = PacketMix::new(MixConfig { duration_ms: 200, seed: 7, ..MixConfig::default() });
    let out = gs.run_capture(mix, &["tcpdest"]).expect("run");

    let rows = out.stream("tcpdest");
    println!("\ncaptured {} packets, {} qualified tuples", out.stats.packets, rows.len());
    println!("first 10 tuples (destIP, destPort, time):");
    for t in rows.iter().take(10) {
        println!("  {t}");
    }
    let lfta = &out.stats.lfta["tcpdest"];
    println!(
        "\nLFTA counters: in={} bpf_rejected={} not_tcp={} filtered={} out={}",
        lfta.packets_in, lfta.prefiltered, lfta.not_protocol, lfta.filtered, lfta.tuples_out
    );
}
