//! Merging simplex optical links (§2.2) and why heartbeats matter (§3).
//!
//! "We developed Gigascope to monitor optical links, which are usually
//! simplex rather than duplex. To obtain a full view of the traffic on a
//! logical link, we need to monitor two interfaces and merge the
//! resulting streams."
//!
//! This example replays a wildly asymmetric pair of interfaces (the
//! paper's 100 Mbyte/s vs one-tuple-per-minute pathology) and compares
//! merge buffer growth with heartbeats off, periodic, and on-demand.
//!
//! Run with: `cargo run -p gs-examples --bin link_merge`

use gigascope::Gigascope;
use gs_netgen::{merge_sources, MixConfig, PacketMix};
use gs_packet::capture::LinkType;
use gs_runtime::punct::HeartbeatMode;

fn build(heartbeat: HeartbeatMode) -> Gigascope {
    let mut gs = Gigascope::new();
    gs.heartbeat = heartbeat;
    gs.add_interface("eth0", 0, LinkType::Ethernet);
    gs.add_interface("eth1", 1, LinkType::Ethernet);
    gs.add_program(
        "DEFINE { query_name tcpdest0; } \
         Select time, destPort From eth0.tcp Where destPort = 80; \
         DEFINE { query_name tcpdest1; } \
         Select time, destPort From eth1.tcp Where destPort = 80; \
         DEFINE { query_name tcpdest; } \
         Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1",
    )
    .expect("queries compile");
    gs
}

fn traffic() -> impl Iterator<Item = gs_packet::CapPacket> {
    // eth0: busy. eth1: nearly silent (a packet every ~4 s).
    let busy = PacketMix::new(MixConfig {
        duration_ms: 10_000,
        seed: 1,
        iface: 0,
        http_rate_mbps: 40.0,
        background_rate_mbps: 0.0,
        ..MixConfig::default()
    });
    let quiet = PacketMix::new(MixConfig {
        duration_ms: 10_000,
        seed: 2,
        iface: 1,
        http_rate_mbps: 0.001,
        background_rate_mbps: 0.0,
        ..MixConfig::default()
    });
    merge_sources(vec![
        Box::new(busy) as Box<dyn Iterator<Item = gs_packet::CapPacket>>,
        Box::new(quiet),
    ])
}

fn main() {
    println!("merge of a busy link with a nearly-silent one, 10 s of traffic\n");
    println!("{:<22}{:>14}{:>12}{:>12}", "heartbeats", "peak buffered", "merged", "hb rounds");
    for (name, mode) in [
        ("off", HeartbeatMode::Off),
        ("periodic (1 s)", HeartbeatMode::Periodic { interval: 1 }),
        ("on-demand", HeartbeatMode::OnDemand),
    ] {
        let gs = build(mode);
        let out = gs.run_capture(traffic(), &["tcpdest"]).expect("run");
        let peak = out.stats.peak_buffered.get("tcpdest").copied().unwrap_or(0);
        println!(
            "{:<22}{:>14}{:>12}{:>12}",
            name,
            peak,
            out.stream("tcpdest").len(),
            out.stats.heartbeats
        );
    }
    println!(
        "\nWithout ordering-update tokens the silent link holds every tuple of the \
         busy link in the merge buffer (the paper's §3 overflow scenario); \
         heartbeats bound the buffer at roughly one second of traffic."
    );
}
